#!/usr/bin/env python3
"""Compare two BENCH_*.json files series-by-series and flag regressions.

    scripts/bench_diff.py BASELINE.json CURRENT.json
        [--threshold_pct=10] [--warn-only] [--quiet]

Both inputs are BENCH_METRICS_JSON documents as written by the benches'
--json_out flag:

    {"metrics": [{"name": ..., "type": ..., "help": ...,
                  "series": [{"labels": {...}, "value": N}, ...]}, ...]}

Series are keyed by (metric name, sorted label set); only keys present in
BOTH files are compared — added or removed series are reported as
informational lines, never as failures, so a bench gaining a new leg does
not break history comparison.

Direction is inferred from the metric name: names containing one of
"overhead", "_pct", "us_per_tick", "latency", "delay" measure cost (lower
is better); everything else measures capacity (higher is better). A
change past --threshold_pct in the bad direction is a regression.
Series carrying an `unreliable` label on either side (e.g. differential
overheads measured on one hardware thread) are compared and printed but
never counted as regressions — the producing bench already decided the
number is noise.

Exit status: 0 when no regression (or --warn-only), 1 on regressions,
2 on usage/parse errors. Intended use in scripts/check.sh is warn-only —
the committed BENCH_*.json baselines come from whatever machine last
refreshed them, so a hard gate would fail on every hardware change.
"""

import json
import sys

COST_MARKERS = ("overhead", "_pct", "us_per_tick", "latency", "delay")


def series_map(doc, path):
    """Flatten a BENCH metrics doc to {(name, labels-tuple): value}."""
    out = {}
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        raise ValueError(f"{path}: no 'metrics' array")
    for metric in metrics:
        name = metric.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{path}: metric without a name")
        for series in metric.get("series", []):
            labels = series.get("labels", {})
            if not isinstance(labels, dict):
                raise ValueError(f"{path}: {name}: labels is not an object")
            value = series.get("value")
            if not isinstance(value, (int, float)):
                raise ValueError(f"{path}: {name}: non-numeric value")
            key = (name, tuple(sorted(labels.items())))
            out[key] = float(value)
    return out


def label_str(labels):
    inner = ",".join(f"{k}={v}" for k, v in labels if k != "bench")
    return "{" + inner + "}" if inner else ""


def lower_is_better(name):
    return any(marker in name for marker in COST_MARKERS)


def main(argv):
    threshold_pct = 10.0
    warn_only = False
    quiet = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold_pct="):
            threshold_pct = float(arg.split("=", 1)[1])
        elif arg == "--warn-only":
            warn_only = True
        elif arg == "--quiet":
            quiet = True
        elif arg.startswith("--"):
            print(f"unknown flag: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.split("\n\n")[0], file=sys.stderr)
        print(f"expected 2 files, got {len(paths)}", file=sys.stderr)
        return 2

    try:
        docs = []
        for path in paths:
            with open(path, encoding="utf-8") as f:
                docs.append(series_map(json.load(f), path))
    except (OSError, ValueError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2
    baseline, current = docs

    regressions = 0
    for key in sorted(set(baseline) | set(current)):
        name, labels = key
        tag = f"{name}{label_str(labels)}"
        if key not in baseline:
            if not quiet:
                print(f"  NEW      {tag} = {current[key]:.6g}")
            continue
        if key not in current:
            if not quiet:
                print(f"  REMOVED  {tag} (was {baseline[key]:.6g})")
            continue
        base, cur = baseline[key], current[key]
        if base == 0.0:
            delta_pct = 0.0 if cur == 0.0 else float("inf")
        else:
            delta_pct = (cur - base) / abs(base) * 100.0
        bad = -delta_pct if lower_is_better(name) else delta_pct
        unreliable = any(k == "unreliable" for k, _ in labels)
        regressed = bad < -threshold_pct and not unreliable
        if regressed:
            regressions += 1
        if regressed or not quiet:
            marker = "REGRESS " if regressed else ("noisy   " if unreliable
                                                   else "ok      ")
            print(f"  {marker} {tag}: {base:.6g} -> {cur:.6g} "
                  f"({delta_pct:+.2f}%)")

    if regressions:
        print(f"bench_diff: {regressions} regression(s) past "
              f"{threshold_pct:g}% threshold")
        return 0 if warn_only else 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
