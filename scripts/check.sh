#!/usr/bin/env bash
# Correctness matrix for springdtw (docs/CORRECTNESS.md):
#
#   default     Release build + full ctest suite (includes the fuzz corpus
#               smokes and the lint ctest entry)
#   asan-ubsan  AddressSanitizer + UBSan preset, invariant checks forced on
#   tsan        ThreadSanitizer preset (concurrency tests), invariant
#               checks forced on
#   lint        tools/springdtw_lint over src/ (also runs inside ctest;
#               this leg gives it a named line in the summary)
#   fuzz-smoke  Replays the seed corpora through the fuzz harnesses
#   bench-smoke Runs bench_scaleout on a small workload; fails if the
#               batched single-thread path loses to the scalar path
#
# Usage: scripts/check.sh [leg ...]   (no args = all legs)
# Exits non-zero if any leg fails; prints a per-leg summary either way.
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(default asan-ubsan tsan lint fuzz-smoke bench-smoke)
fi

NAMES=()
RESULTS=()

build_and_test_preset() {
  local preset="$1"
  cmake --preset "$preset" &&
    cmake --build --preset "$preset" -j"$JOBS" &&
    ctest --preset "$preset" -j"$JOBS"
}

leg_default() { build_and_test_preset default; }
leg_asan_ubsan() { build_and_test_preset asan-ubsan; }
leg_tsan() { build_and_test_preset tsan; }

leg_lint() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" --target springdtw_lint &&
    ./build/tools/springdtw_lint src
}

leg_fuzz_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target fuzz_csv fuzz_codec fuzz_checkpoint fuzz_gen_seed_corpus &&
    ctest --test-dir build -R '^fuzz_' --output-on-failure
}

leg_bench_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" --target bench_scaleout &&
    ./build/bench/bench_scaleout --smoke
}

run_leg() {
  local leg="$1"
  echo
  echo "=== check.sh leg: ${leg} ==="
  local status=PASS
  case "$leg" in
    default) leg_default || status=FAIL ;;
    asan-ubsan) leg_asan_ubsan || status=FAIL ;;
    tsan) leg_tsan || status=FAIL ;;
    lint) leg_lint || status=FAIL ;;
    fuzz-smoke) leg_fuzz_smoke || status=FAIL ;;
    bench-smoke) leg_bench_smoke || status=FAIL ;;
    *)
      echo "unknown leg: ${leg} (known: default asan-ubsan tsan lint" \
        "fuzz-smoke bench-smoke)"
      status=FAIL
      ;;
  esac
  NAMES+=("$leg")
  RESULTS+=("$status")
}

for leg in "${LEGS[@]}"; do
  run_leg "$leg"
done

echo
echo "=== check.sh summary ==="
exit_code=0
for i in "${!NAMES[@]}"; do
  printf '  %-12s %s\n' "${NAMES[$i]}" "${RESULTS[$i]}"
  if [ "${RESULTS[$i]}" != PASS ]; then
    exit_code=1
  fi
done
exit "$exit_code"
