#!/usr/bin/env bash
# Correctness matrix for springdtw (docs/CORRECTNESS.md):
#
#   default     Release build + full ctest suite (includes the fuzz corpus
#               smokes and the lint ctest entry)
#   asan-ubsan  AddressSanitizer + UBSan preset, invariant checks forced on
#   tsan        ThreadSanitizer preset (concurrency tests), invariant
#               checks forced on
#   lint        tools/springdtw_lint over src/ (also runs inside ctest;
#               this leg gives it a named line in the summary)
#   analyze     Compile-time concurrency verification: the lint rules, then
#               (when clang is installed) the `analyze` preset with
#               -Wthread-safety promoted to an error, clang-tidy
#               (bugprone/concurrency/performance/clang-analyzer) and
#               `clang --analyze` over the tree, diffed against
#               scripts/analyze_baseline.txt. Without clang the clang-only
#               steps are skipped — the annotations are no-ops under gcc —
#               and CI runs them on a clang-equipped runner.
#   fuzz-smoke  Replays the seed corpora through the fuzz harnesses
#   bench-smoke Runs bench_scaleout on a small workload (fails if the
#               batched single-thread path loses to the scalar path) and a
#               reduced bench_fig7_walltime; drops BENCH_scaleout.json and
#               BENCH_fig7.json at the repo root, validated with
#               springdtw_metrics_check, then compares each fresh blob
#               against the committed baseline with scripts/bench_diff.py
#               (warn-only: baselines come from other hardware)
#   introspect-smoke
#               Starts a 4-worker springdtw_match with --introspect_port=0,
#               polls /healthz to 200, scrapes /metrics for the
#               pipeline-stage and end-to-end span histogram families,
#               asserts /queryz and /spanz serve non-empty JSON, then
#               validates the spring_e2e_latency_nanos histograms with
#               springdtw_metrics_check on a merged-snapshot dump
#   serve-smoke Boots springdtw_serve on an ephemeral port, replays a
#               planted pattern through springdtw_feed and asserts the
#               exact match arrives over the subscription, checks
#               /healthz and the spring_net_* metric splice, SIGTERMs the
#               daemon (must exit 0 and leave a checkpoint), then restarts
#               from the checkpoint and asserts the restored query keeps
#               matching (docs/SERVING.md)
#   alert-smoke Boots springdtw_serve with --timeline and a page-severity
#               rate rule, drives a paced feed hot enough to trip it, and
#               walks the rule through its full lifecycle over /alertz:
#               firing while the feed runs (and /healthz 503, because the
#               rule pages), resolved after the feed stops (and /healthz
#               back to 200) — then validates the scraped /timez //alertz
#               documents with springdtw_metrics_check and renders one
#               plain springdtw_top frame (docs/OBSERVABILITY.md)
#   crash-smoke Boots springdtw_serve with --wal_dir, streams a planted
#               pattern, SIGKILLs the daemon mid-flight (no checkpoint,
#               no drain), restarts against the same WAL directory, and
#               asserts the daemon logs a WAL_RECOVERY line, the query
#               and every accepted tick survived, and the planted match
#               is reported exactly once across both incarnations —
#               deduplicated by its stable seq= tag (docs/DURABILITY.md)
#
# Usage: scripts/check.sh [leg ...]   (no args = all legs)
# Exits non-zero if any leg fails; prints a per-leg summary either way.
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(default asan-ubsan tsan lint analyze fuzz-smoke bench-smoke
    introspect-smoke serve-smoke alert-smoke crash-smoke)
fi

NAMES=()
RESULTS=()

build_and_test_preset() {
  local preset="$1"
  cmake --preset "$preset" &&
    cmake --build --preset "$preset" -j"$JOBS" &&
    ctest --preset "$preset" -j"$JOBS"
}

leg_default() { build_and_test_preset default; }
leg_asan_ubsan() { build_and_test_preset asan-ubsan; }
leg_tsan() { build_and_test_preset tsan; }

leg_lint() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" --target springdtw_lint &&
    ./build/tools/springdtw_lint src
}

# Diffs the normalized analyzer report against scripts/analyze_baseline.txt.
# Findings are normalized to `<path>: <text>` with line:column stripped so
# the baseline survives unrelated edits. `MODE: bootstrap` in the baseline
# downgrades new findings to advisory (printed + left in the report file for
# the CI artifact) instead of failing the leg.
analyze_diff_baseline() {
  local report="$1"
  local baseline=scripts/analyze_baseline.txt
  local norm=build-analyze/analyze_findings.txt
  grep -E '(warning|error):' "$report" 2>/dev/null |
    sed -e "s|$(pwd)/||g" -e 's/:[0-9][0-9]*:[0-9][0-9]*:/:/' |
    sort -u >"$norm"
  local new_findings
  new_findings="$(grep -vxFf <(grep -v '^#' "$baseline" |
    grep -v '^MODE:') "$norm")"
  if [ -z "$new_findings" ]; then
    echo "analyze: no findings beyond baseline"
    return 0
  fi
  echo "analyze: findings not in ${baseline}:"
  echo "$new_findings"
  if grep -q '^MODE: bootstrap' "$baseline"; then
    echo "analyze: baseline is in bootstrap mode; recording, not failing"
    return 0
  fi
  echo "analyze: fix the code or baseline the finding (with a why comment)"
  return 1
}

leg_analyze() {
  # The mechanical rules (memory-order, raw-mutex, thread-annotation, ...)
  # are dependency-free and run under any toolchain.
  leg_lint || return 1

  # Everything past this point needs the clang frontend. The thread-safety
  # annotations compile as no-ops under gcc, so there is nothing more to
  # verify locally; CI installs clang + clang-tidy and runs the full leg.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "analyze: clang++ not found; skipping -Wthread-safety and" \
      "clang-tidy (full run happens on a clang-equipped machine / CI)"
    return 0
  fi

  # Thread Safety Analysis: the whole tree must compile clean with
  # -Wthread-safety promoted to an error (SPRINGDTW_ANALYZE=ON).
  cmake --preset analyze &&
    cmake --build --preset analyze -j"$JOBS" || return 1

  local report=build-analyze/analyze_report.txt
  : >"$report"

  # clang-tidy (bugprone-*, concurrency-*, performance-*, clang-analyzer-*)
  # over the exported compilation database, first-party TUs only.
  if command -v clang-tidy >/dev/null 2>&1; then
    local files
    files="$(sed -n 's/^ *"file": *"\(.*\)",*$/\1/p' \
      build-analyze/compile_commands.json |
      grep -E "^$(pwd)/(src|tools|bench|examples)/" | sort -u)"
    if [ -z "$files" ]; then
      echo "analyze: no first-party TUs in compile_commands.json"
      return 1
    fi
    rm -f build-analyze/tidy.*.out
    echo "$files" | xargs -P "$JOBS" -n 1 -I{} sh -c \
      'clang-tidy -p build-analyze --quiet "$1" \
         >"build-analyze/tidy.$$.out" 2>/dev/null; true' _ {}
    cat build-analyze/tidy.*.out >>"$report" 2>/dev/null
    rm -f build-analyze/tidy.*.out
  else
    echo "analyze: clang-tidy not found; skipping the tidy pass"
  fi

  # Core static analyzer (clang --analyze) over the library and tool TUs;
  # these build with just -Isrc, so no database replay is needed.
  local f
  for f in src/*/*.cc tools/*.cc; do
    clang++ --analyze --analyzer-output text -std=c++20 -Isrc \
      "$f" >>"$report" 2>&1 || {
      echo "analyze: clang --analyze failed on $f"
      tail -40 "$report"
      return 1
    }
  done

  analyze_diff_baseline "$report"
}

leg_fuzz_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target fuzz_csv fuzz_codec fuzz_checkpoint fuzz_net_frame fuzz_wal \
      fuzz_gen_seed_corpus &&
    ctest --test-dir build -R '^fuzz_' --output-on-failure
}

leg_bench_smoke() {
  # Snapshot the committed baselines before the benches overwrite them;
  # bench_diff compares fresh numbers against them warn-only (hardware
  # varies between the machine that committed a baseline and this one, so
  # regressions print but never fail the leg).
  local diff_dir
  diff_dir="$(mktemp -d)" || return 1
  cp BENCH_scaleout.json BENCH_fig7.json BENCH_net.json "$diff_dir/" \
    2>/dev/null
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target bench_scaleout bench_fig7_walltime springdtw_metrics_check &&
    ./build/bench/bench_scaleout --smoke --json_out=BENCH_scaleout.json &&
    ./build/bench/bench_fig7_walltime --max_n=100000 --overhead_n=50000 \
      --json_out=BENCH_fig7.json &&
    ./build/tools/springdtw_metrics_check --in=BENCH_scaleout.json \
      --require=bench_scaleout_ticks_per_sec,bench_scaleout_batch_speedup &&
    ./build/tools/springdtw_metrics_check --in=BENCH_fig7.json \
      --require=bench_spring_us_per_tick,bench_engine_metrics_overhead_pct &&
    cmake --build --preset default -j"$JOBS" --target bench_net_ingest &&
    ./build/bench/bench_net_ingest --smoke --json_out=BENCH_net.json &&
    ./build/tools/springdtw_metrics_check --in=BENCH_net.json \
      --require=bench_net_ingest_ticks_per_sec,bench_net_ingest_wire_overhead,bench_net_ingest_tracing_overhead_pct,bench_net_ingest_wal_overhead_pct,bench_net_ingest_timeline_overhead_pct ||
    { rm -rf "$diff_dir"; return 1; }
  local bench
  for bench in BENCH_scaleout.json BENCH_fig7.json BENCH_net.json; do
    if [ -f "$diff_dir/$bench" ]; then
      echo "--- bench_diff $bench (vs committed baseline, warn-only) ---"
      python3 scripts/bench_diff.py --warn-only --quiet \
        "$diff_dir/$bench" "$bench"
    fi
  done
  rm -rf "$diff_dir"
}

# One HTTP GET over bash's /dev/tcp (no curl dependency in the container);
# prints status line + headers + body.
introspect_get() {
  local port="$1" path="$2"
  exec 3<>"/dev/tcp/127.0.0.1/${port}" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' \
    "$path" >&3
  cat <&3
  exec 3<&- 3>&-
}

leg_introspect_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target springdtw_datagen springdtw_match || return 1

  local tmp
  tmp="$(mktemp -d)" || return 1
  (cd "$tmp" && "$OLDPWD/build/tools/springdtw_datagen" --dataset=chirp \
    --length=20000 --out=smoke) || { rm -rf "$tmp"; return 1; }

  # Staleness budget must exceed the linger window: during the linger no
  # ticks flow, and a budget shorter than the linger would flip /healthz to
  # 503 before we finish scraping.
  ./build/tools/springdtw_match \
    --stream="$tmp/smoke_stream.csv" --query="$tmp/smoke_query.csv" \
    --epsilon=500 --threads=4 --introspect_port=0 \
    --introspect_linger_ms=20000 --introspect_staleness_ms=60000 \
    >"$tmp/match.out" 2>&1 &
  local match_pid=$!

  local port="" i
  for i in $(seq 1 100); do
    port="$(sed -n 's/^INTROSPECT_PORT=//p' "$tmp/match.out" | head -1)"
    [ -n "$port" ] && break
    kill -0 "$match_pid" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "introspect-smoke: no INTROSPECT_PORT line from springdtw_match"
    cat "$tmp/match.out"
    kill "$match_pid" 2>/dev/null
    wait "$match_pid" 2>/dev/null
    rm -rf "$tmp"
    return 1
  fi

  local ok=1
  for i in $(seq 1 100); do
    if introspect_get "$port" /healthz 2>/dev/null |
      head -1 | grep -q '200'; then
      ok=0
      break
    fi
    sleep 0.1
  done
  if [ "$ok" -ne 0 ]; then
    echo "introspect-smoke: /healthz never returned 200 on port $port"
  else
    # The cost and span snapshots publish at the FlushAll barrier; wait for
    # the match count line (printed right after FlushAll, before the linger)
    # so the scrapes below see the completed run rather than racing it.
    for i in $(seq 1 200); do
      grep -q '^# ' "$tmp/match.out" && break
      kill -0 "$match_pid" 2>/dev/null || break
      sleep 0.1
    done
    if ! grep -q '^# ' "$tmp/match.out"; then
      echo "introspect-smoke: match run never reached its FlushAll barrier"
      ok=1
    fi
    introspect_get "$port" /metrics >"$tmp/metrics.out" 2>/dev/null
    grep -q 'spring_stage_latency_nanos' "$tmp/metrics.out" &&
      grep -q 'spring_ticks_total' "$tmp/metrics.out" &&
      grep -q 'spring_ring_occupancy' "$tmp/metrics.out" &&
      grep -q 'spring_e2e_latency_nanos' "$tmp/metrics.out" &&
      grep -q 'spring_trace_dropped_total' "$tmp/metrics.out" || {
      echo "introspect-smoke: /metrics is missing expected families:"
      head -40 "$tmp/metrics.out"
      ok=1
    }
    # The cost-accounting and span endpoints serve non-empty JSON docs.
    introspect_get "$port" /queryz >"$tmp/queryz.out" 2>/dev/null
    head -1 "$tmp/queryz.out" | grep -q '200' &&
      grep -q '"queries":\[{' "$tmp/queryz.out" || {
      echo "introspect-smoke: /queryz did not serve per-query rows:"
      cat "$tmp/queryz.out"
      ok=1
    }
    introspect_get "$port" /spanz >"$tmp/spanz.out" 2>/dev/null
    head -1 "$tmp/spanz.out" | grep -q '200' &&
      grep -q '"spans":\[{' "$tmp/spanz.out" || {
      echo "introspect-smoke: /spanz did not serve completed spans:"
      cat "$tmp/spanz.out"
      ok=1
    }
  fi

  kill "$match_pid" 2>/dev/null
  wait "$match_pid" 2>/dev/null

  # A natural-exit sharded run dumps the merged snapshot; the end-to-end
  # stage histograms and trace drop counter must validate as families.
  if [ "$ok" -eq 0 ]; then
    cmake --build --preset default -j"$JOBS" \
      --target springdtw_metrics_check >/dev/null &&
      ./build/tools/springdtw_match \
        --stream="$tmp/smoke_stream.csv" --query="$tmp/smoke_query.csv" \
        --epsilon=500 --threads=4 --introspect_port=0 \
        --introspect_linger_ms=0 --metrics=json \
        --metrics_out="$tmp/e2e_metrics.json" >/dev/null 2>&1 &&
      ./build/tools/springdtw_metrics_check --in="$tmp/e2e_metrics.json" \
        --require=spring_trace_dropped_total \
        --require_histogram=spring_e2e_latency_nanos || {
      echo "introspect-smoke: e2e span families failed metrics_check"
      ok=1
    }
  fi
  rm -rf "$tmp"
  return "$ok"
}

# Waits for a `KEY=value` line to appear in a daemon's stdout capture;
# prints the value. Fails when the process dies first.
wait_for_port_line() {
  local key="$1" file="$2" pid="$3" port="" i
  for i in $(seq 1 100); do
    port="$(sed -n "s/^${key}=//p" "$file" | head -1)"
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  [ -n "$port" ] || return 1
  echo "$port"
}

leg_serve_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target springdtw_serve springdtw_feed || return 1

  local tmp
  tmp="$(mktemp -d)" || return 1
  # Planted pattern: the query {1,2,3,2,1} occurs exactly at indices 3..7
  # (and the trailing 9s force the commit), so the subscribed feeder must
  # print MATCH ... start=3 end=7 dist=0 report=8 — a deterministic,
  # byte-checkable report (docs/SERVING.md "Example session").
  printf '0\n0\n0\n1\n2\n3\n2\n1\n0\n0\n9\n9\n9\n9\n9\n9\n' \
    >"$tmp/stream.csv"
  printf '1\n2\n3\n2\n1\n' >"$tmp/query.csv"

  local serve_pid port iport
  ./build/tools/springdtw_serve --port=0 --workers=2 \
    --checkpoint="$tmp/state.ckpt" --introspect_port=0 \
    --staleness_ms=60000 >"$tmp/serve.out" 2>&1 &
  serve_pid=$!
  port="$(wait_for_port_line SERVE_PORT "$tmp/serve.out" "$serve_pid")" || {
    echo "serve-smoke: no SERVE_PORT line from springdtw_serve"
    cat "$tmp/serve.out"
    kill "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
    rm -rf "$tmp"
    return 1
  }

  local ok=0
  ./build/tools/springdtw_feed --port="$port" --stream="$tmp/stream.csv" \
    --query="$tmp/query.csv" --epsilon=0.25 --subscribe --list \
    >"$tmp/feed.out" 2>&1 || ok=1
  grep -q 'MATCH stream=stream query=query start=3 end=7 dist=0 report=8' \
    "$tmp/feed.out" || {
    echo "serve-smoke: expected planted match missing from feed output:"
    cat "$tmp/feed.out"
    ok=1
  }
  grep -q 'QUERY .*name=query ticks=16' "$tmp/feed.out" || {
    echo "serve-smoke: LIST_QUERIES row missing:"
    cat "$tmp/feed.out"
    ok=1
  }

  # The daemon splices its spring_net_* families into /metrics and serves
  # /healthz through the monitor's introspection server.
  iport="$(wait_for_port_line INTROSPECT_PORT "$tmp/serve.out" \
    "$serve_pid")" || ok=1
  if [ "$ok" -eq 0 ]; then
    introspect_get "$iport" /healthz 2>/dev/null | head -1 | grep -q 200 || {
      echo "serve-smoke: /healthz not 200"
      ok=1
    }
    introspect_get "$iport" /metrics >"$tmp/metrics.out" 2>/dev/null
    grep -q 'spring_net_frames_total' "$tmp/metrics.out" &&
      grep -q 'spring_net_connections' "$tmp/metrics.out" || {
      echo "serve-smoke: spring_net_* families missing from /metrics:"
      head -40 "$tmp/metrics.out"
      ok=1
    }
  fi

  # SIGTERM: drain, checkpoint, exit 0.
  kill -TERM "$serve_pid" 2>/dev/null
  wait "$serve_pid"
  local rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: springdtw_serve exited $rc on SIGTERM"
    cat "$tmp/serve.out"
    ok=1
  fi
  [ -f "$tmp/state.ckpt" ] || {
    echo "serve-smoke: no checkpoint written on shutdown"
    ok=1
  }

  # Restart from the checkpoint: the stream and query are restored, so a
  # replay of the same pattern (ticks 16..31) must match at 19..23 without
  # re-registering anything.
  if [ "$ok" -eq 0 ]; then
    ./build/tools/springdtw_serve --port=0 --workers=2 \
      --checkpoint="$tmp/state.ckpt" >"$tmp/serve2.out" 2>&1 &
    serve_pid=$!
    port="$(wait_for_port_line SERVE_PORT "$tmp/serve2.out" \
      "$serve_pid")" || ok=1
    if [ "$ok" -eq 0 ]; then
      ./build/tools/springdtw_feed --port="$port" \
        --stream="$tmp/stream.csv" --subscribe >"$tmp/feed2.out" 2>&1 || ok=1
      grep -q \
        'MATCH stream=stream query=query start=19 end=23 dist=0 report=24' \
        "$tmp/feed2.out" || {
        echo "serve-smoke: restored daemon did not keep matching:"
        cat "$tmp/feed2.out"
        ok=1
      }
    fi
    kill -TERM "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
  fi

  rm -rf "$tmp"
  return "$ok"
}

# Strips the HTTP status line and headers off an introspect_get capture,
# leaving the JSON body for springdtw_metrics_check.
http_body() {
  sed '1,/^\r\{0,1\}$/d' "$1"
}

# SLO alerting smoke (docs/OBSERVABILITY.md): drives a rate rule through
# its complete lifecycle against a live daemon. Severity is `page` so the
# firing state must also gate /healthz — the staleness budget is set far
# above the leg's runtime so a 503 can only mean the alert.
leg_alert_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target springdtw_serve springdtw_feed springdtw_top \
      springdtw_metrics_check || return 1

  local tmp
  tmp="$(mktemp -d)" || return 1
  # 2000 ticks at --rate=400 is five seconds of sustained ingest: well
  # past the rule's 2s hold at ~8x its 50 ticks/s threshold. A query must
  # be registered — spring_ticks_total counts query-ticks, so with no
  # query the counter never exists and a rate rule can never trip.
  seq 1 2000 | awk '{print $1 % 17}' >"$tmp/stream.csv"
  printf '1\n2\n3\n2\n1\n' >"$tmp/query.csv"
  printf 'alert hot_ingest page rate(spring_ticks_total) > 50 for 2s\n' \
    >"$tmp/rules.txt"

  local serve_pid port iport
  ./build/tools/springdtw_serve --port=0 --workers=2 --introspect_port=0 \
    --staleness_ms=120000 --timeline --alert_rules="$tmp/rules.txt" \
    >"$tmp/serve.out" 2>&1 &
  serve_pid=$!
  port="$(wait_for_port_line SERVE_PORT "$tmp/serve.out" "$serve_pid")" &&
    iport="$(wait_for_port_line INTROSPECT_PORT "$tmp/serve.out" \
      "$serve_pid")" || {
    echo "alert-smoke: springdtw_serve did not print its ports"
    cat "$tmp/serve.out"
    kill "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
    rm -rf "$tmp"
    return 1
  }

  local ok=0
  ./build/tools/springdtw_feed --port="$port" --stream="$tmp/stream.csv" \
    --query="$tmp/query.csv" --epsilon=0.25 --rate=400 \
    >"$tmp/feed.out" 2>&1 &
  local feed_pid=$!

  # The rule holds 2s before firing; poll rather than sleep.
  local fired=1 i
  for i in $(seq 1 120); do
    introspect_get "$iport" /alertz >"$tmp/alertz.out" 2>/dev/null
    if grep -q '"state":"firing"' "$tmp/alertz.out"; then
      fired=0
      break
    fi
    sleep 0.1
  done
  if [ "$fired" -ne 0 ]; then
    echo "alert-smoke: rule never reached firing while feeding:"
    cat "$tmp/alertz.out"
    ok=1
  else
    introspect_get "$iport" /healthz 2>/dev/null | head -1 | grep -q 503 || {
      echo "alert-smoke: /healthz not 503 while a page rule fires"
      ok=1
    }
  fi

  wait "$feed_pid" 2>/dev/null

  # With the feed gone the 2s rate window drains and the rule must resolve
  # (and liveness recover) on its own — no restart, no manual reset.
  if [ "$ok" -eq 0 ]; then
    local resolved=1
    for i in $(seq 1 150); do
      introspect_get "$iport" /alertz >"$tmp/alertz.out" 2>/dev/null
      if grep -q '"state":"resolved"' "$tmp/alertz.out"; then
        resolved=0
        break
      fi
      sleep 0.1
    done
    if [ "$resolved" -ne 0 ]; then
      echo "alert-smoke: rule never resolved after the feed stopped:"
      cat "$tmp/alertz.out"
      ok=1
    else
      introspect_get "$iport" /healthz 2>/dev/null | head -1 |
        grep -q 200 || {
        echo "alert-smoke: /healthz did not recover after resolve"
        ok=1
      }
      # One full pending -> firing -> resolved walk leaves the
      # ever-increasing lifecycle counters non-zero.
      if grep -q '"firing_count":0' "$tmp/alertz.out"; then
        echo "alert-smoke: firing_count still 0 after a full lifecycle:"
        cat "$tmp/alertz.out"
        ok=1
      fi
    fi
  fi

  # The scraped documents validate structurally, and the dashboard can
  # render one plain frame from the same endpoints.
  if [ "$ok" -eq 0 ]; then
    introspect_get "$iport" \
      "/timez?metric=spring_ticks_total&window=120" \
      >"$tmp/timez.raw" 2>/dev/null
    http_body "$tmp/timez.raw" >"$tmp/timez.json"
    http_body "$tmp/alertz.out" >"$tmp/alertz.json"
    ./build/tools/springdtw_metrics_check --timez="$tmp/timez.json" \
      --alertz="$tmp/alertz.json" || {
      echo "alert-smoke: scraped /timez //alertz failed metrics_check"
      ok=1
    }
    ./build/tools/springdtw_top --port="$iport" --frames=1 --plain \
      >"$tmp/top.out" 2>&1 || {
      echo "alert-smoke: springdtw_top exited non-zero"
      cat "$tmp/top.out"
      ok=1
    }
    grep -q 'hot_ingest' "$tmp/top.out" || {
      echo "alert-smoke: dashboard frame does not list the rule:"
      cat "$tmp/top.out"
      ok=1
    }
  fi

  kill -TERM "$serve_pid" 2>/dev/null
  wait "$serve_pid" 2>/dev/null
  rm -rf "$tmp"
  return "$ok"
}

# Crash-injection smoke (docs/DURABILITY.md): SIGKILL — not SIGTERM — so
# nothing shuts down cleanly; durability must come from the WAL alone.
# fsync=os survives kill -9 because the page cache belongs to the kernel,
# which keeps running; only the machine dying loses it.
leg_crash_smoke() {
  cmake --preset default &&
    cmake --build --preset default -j"$JOBS" \
      --target springdtw_serve springdtw_feed || return 1

  local tmp
  tmp="$(mktemp -d)" || return 1
  # Same planted pattern as serve-smoke: query {1,2,3,2,1} matches exactly
  # at 3..7 (report=8), and again at 19..23 when the stream is replayed.
  printf '0\n0\n0\n1\n2\n3\n2\n1\n0\n0\n9\n9\n9\n9\n9\n9\n' \
    >"$tmp/stream.csv"
  printf '1\n2\n3\n2\n1\n' >"$tmp/query.csv"

  local serve_pid port
  ./build/tools/springdtw_serve --port=0 --workers=2 \
    --wal_dir="$tmp/wal" --fsync=os >"$tmp/serve.out" 2>&1 &
  serve_pid=$!
  port="$(wait_for_port_line SERVE_PORT "$tmp/serve.out" "$serve_pid")" || {
    echo "crash-smoke: no SERVE_PORT line from springdtw_serve"
    cat "$tmp/serve.out"
    kill -9 "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
    rm -rf "$tmp"
    return 1
  }

  local ok=0
  ./build/tools/springdtw_feed --port="$port" --stream="$tmp/stream.csv" \
    --query="$tmp/query.csv" --epsilon=0.25 --subscribe \
    >"$tmp/feed.out" 2>&1 || ok=1
  local seq1
  seq1="$(sed -n \
    's/^MATCH stream=stream query=query start=3 end=7 .* seq=\([0-9]*\)$/\1/p' \
    "$tmp/feed.out")"
  [ "$(echo "$seq1" | grep -c .)" -eq 1 ] || {
    echo "crash-smoke: planted match not delivered exactly once pre-crash:"
    cat "$tmp/feed.out"
    ok=1
  }

  # Give the event loop a beat to log the delivery mark, then crash hard.
  sleep 0.3
  kill -9 "$serve_pid" 2>/dev/null
  wait "$serve_pid" 2>/dev/null

  if [ "$ok" -eq 0 ]; then
    ./build/tools/springdtw_serve --port=0 --workers=2 \
      --wal_dir="$tmp/wal" --fsync=os >"$tmp/serve2.out" 2>&1 &
    serve_pid=$!
    port="$(wait_for_port_line SERVE_PORT "$tmp/serve2.out" \
      "$serve_pid")" || {
      echo "crash-smoke: restarted daemon printed no SERVE_PORT"
      cat "$tmp/serve2.out"
      ok=1
    }
  fi
  if [ "$ok" -eq 0 ]; then
    # Unclean shutdown must be detected and reported with the replay size.
    grep -q 'WAL_RECOVERY .*replayed_values=16' "$tmp/serve2.out" || {
      echo "crash-smoke: no WAL_RECOVERY line after kill -9:"
      cat "$tmp/serve2.out"
      ok=1
    }
    # Query and held ticks survived; replaying the stream appends 16..31,
    # so the restored matcher must fire at 19..23 — exactly once.
    ./build/tools/springdtw_feed --port="$port" --stream="$tmp/stream.csv" \
      --subscribe --list >"$tmp/feed2.out" 2>&1 || ok=1
    grep -q 'QUERY .*name=query ticks=32' "$tmp/feed2.out" || {
      echo "crash-smoke: recovered query missing or ticks lost:"
      cat "$tmp/feed2.out"
      ok=1
    }
    [ "$(grep -c \
      'MATCH stream=stream query=query start=19 end=23 dist=0 report=24' \
      "$tmp/feed2.out")" -eq 1 ] || {
      echo "crash-smoke: post-restart planted match not exactly once:"
      cat "$tmp/feed2.out"
      ok=1
    }
    # The pre-crash match may be re-delivered only as crash-window replay,
    # i.e. carrying the same seq as the original delivery — the dedup key
    # clients use. A different seq (double count) or a missing seq tag
    # would break exactly-once.
    local redelivered
    redelivered="$(sed -n \
      's/^MATCH stream=stream query=query start=3 end=7 .* seq=\([0-9]*\)$/\1/p' \
      "$tmp/feed2.out")"
    if [ -n "$redelivered" ] && [ "$redelivered" != "$seq1" ]; then
      echo "crash-smoke: re-delivered match seq $redelivered != $seq1:"
      cat "$tmp/feed2.out"
      ok=1
    fi
    kill -9 "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
  fi

  rm -rf "$tmp"
  return "$ok"
}

run_leg() {
  local leg="$1"
  echo
  echo "=== check.sh leg: ${leg} ==="
  local status=PASS
  case "$leg" in
    default) leg_default || status=FAIL ;;
    asan-ubsan) leg_asan_ubsan || status=FAIL ;;
    tsan) leg_tsan || status=FAIL ;;
    lint) leg_lint || status=FAIL ;;
    analyze) leg_analyze || status=FAIL ;;
    fuzz-smoke) leg_fuzz_smoke || status=FAIL ;;
    bench-smoke) leg_bench_smoke || status=FAIL ;;
    introspect-smoke) leg_introspect_smoke || status=FAIL ;;
    serve-smoke) leg_serve_smoke || status=FAIL ;;
    alert-smoke) leg_alert_smoke || status=FAIL ;;
    crash-smoke) leg_crash_smoke || status=FAIL ;;
    *)
      echo "unknown leg: ${leg} (known: default asan-ubsan tsan lint" \
        "analyze fuzz-smoke bench-smoke introspect-smoke serve-smoke" \
        "alert-smoke crash-smoke)"
      status=FAIL
      ;;
  esac
  NAMES+=("$leg")
  RESULTS+=("$status")
}

for leg in "${LEGS[@]}"; do
  run_leg "$leg"
done

echo
echo "=== check.sh summary ==="
exit_code=0
for i in "${!NAMES[@]}"; do
  printf '  %-12s %s\n' "${NAMES[$i]}" "${RESULTS[$i]}"
  if [ "${RESULTS[$i]}" != PASS ]; then
    exit_code=1
  fi
done
exit "$exit_code"
