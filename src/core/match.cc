#include "core/match.h"

#include "util/string_util.h"

namespace springdtw {
namespace core {

std::string Match::ToString() const {
  return util::StrFormat(
      "X[%lld:%lld] dist=%.6g len=%lld reported@%lld",
      static_cast<long long>(start), static_cast<long long>(end), distance,
      static_cast<long long>(length()), static_cast<long long>(report_time));
}

}  // namespace core
}  // namespace springdtw
