#ifndef SPRINGDTW_CORE_SPRING_BATCH_H_
#define SPRINGDTW_CORE_SPRING_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/invariants.h"
#include "core/match.h"
#include "core/spring.h"
#include "dtw/local_distance.h"
#include "util/memory.h"
#include "util/status.h"

namespace springdtw {
namespace core {

/// Structure-of-arrays SPRING matcher pool: advances *every* query attached
/// to one stream in a single cache-friendly pass per tick.
///
/// SpringMatcher is optimal for one query, but a monitoring engine feeding
/// the same stream value to dozens of matchers pays one object traversal —
/// options load, row-pointer chase, virtual-free but cold call — per query
/// per tick. The pool keeps all queries' DP rows in two contiguous arrays
/// (UCR-suite-style batching: Rakthanmanon et al., KDD 2012, applied to the
/// SPRING recurrence), shares the star-row handling (d(t, 0) = 0 and
/// s(t, 0) = t are constants, so row index 0 is never materialized), and
/// walks the whole pool segment by segment. PushBatch() additionally
/// processes a span of ticks query-major, so each query's two rows stay in
/// L1 for the entire batch.
///
/// Semantics are bit-for-bit identical to running one SpringMatcher per
/// query: the same DP expression order, the same Equation (8) tie-breaks,
/// the same report / kill / group logic, so distances compare bitwise equal
/// and the no-false-dismissal guarantee carries over unchanged (the
/// differential oracle test enforces this).
///
/// Queries may be added mid-stream (each keeps its own tick counter) and may
/// use different SpringOptions. The pool is single-threaded, like
/// SpringMatcher; shard pools across threads for parallelism
/// (docs/SCALEOUT.md).
class SpringBatchPool {
 public:
  /// One disjoint-query report produced by Update / PushBatch / Flush.
  struct Report {
    int64_t query_index = 0;
    Match match;
  };

  SpringBatchPool() = default;

  SpringBatchPool(const SpringBatchPool&) = default;
  SpringBatchPool& operator=(const SpringBatchPool&) = default;
  SpringBatchPool(SpringBatchPool&&) = default;
  SpringBatchPool& operator=(SpringBatchPool&&) = default;

  /// Adds a fresh query (tick 0); returns its pool index. `query` must be
  /// non-empty and NaN-free (CHECK-enforced, mirroring SpringMatcher).
  int64_t AddQuery(std::vector<double> query, const SpringOptions& options);

  /// Adds a query carrying `matcher`'s complete live state — rows, tick
  /// counter, pending candidate, best match. The pool continues the stream
  /// exactly where the matcher left off (checkpoint restore, engine-mode
  /// switches).
  int64_t AdoptMatcher(const SpringMatcher& matcher);

  /// Materializes query `index` as a standalone SpringMatcher with
  /// identical live state: feeding both the same suffix yields identical
  /// reports, and ToMatcher(i).SerializeState() is byte-identical to the
  /// snapshot an equivalent per-query matcher would produce.
  SpringMatcher ToMatcher(int64_t index) const;

  /// Advances every query by one stream value. Reports are appended to
  /// `*reports` (not cleared) in query-index order; returns the number
  /// appended. `reports` may be null for best-match-only use.
  int64_t Update(double x, std::vector<Report>* reports);

  /// Advances every query through `values`, query-major: each query
  /// consumes the whole span before the next query starts, so its DP rows
  /// stay hot. Reports are appended ordered by (report tick, query index) —
  /// the same order per-tick Update calls would produce. Returns the number
  /// appended.
  int64_t PushBatch(std::span<const double> values,
                    std::vector<Report>* reports);

  /// End-of-stream flush of every query's still-pending candidate
  /// (SpringMatcher::Flush semantics), appended in query-index order.
  int64_t Flush(std::vector<Report>* reports);

  /// Removes query `index` and compacts the pool: its segments are erased
  /// from the row and query-value arrays and every later query's offsets
  /// shift down, so surviving indices decrement by one past `index`.
  ///
  /// A pending candidate is emitted into `*match` (returns true) iff it is
  /// already report-eligible under the Problem-2 rule — no current-row cell
  /// has d(t, i) < d_min with s(t, i) <= t_e, i.e. nothing still evolving
  /// could beat it. A candidate that might still be improved by in-flight
  /// cells is dropped (returns false): reporting it could emit an overlap
  /// of a better match the stream was about to produce.
  bool RemoveQuery(int64_t index, Match* match);

  int64_t num_queries() const {
    return static_cast<int64_t>(queries_.size());
  }

  /// Per-query accessors mirroring SpringMatcher's observability surface.
  int64_t ticks_processed(int64_t index) const {
    return at(index).t;
  }
  int64_t query_length(int64_t index) const { return at(index).m; }
  bool has_pending_candidate(int64_t index) const {
    return at(index).has_candidate;
  }
  double candidate_distance(int64_t index) const { return at(index).dmin; }
  int64_t candidate_start(int64_t index) const { return at(index).ts; }
  int64_t candidate_end(int64_t index) const { return at(index).te; }
  bool has_best(int64_t index) const { return at(index).has_best; }
  Match best(int64_t index) const { return at(index).best; }
  double best_distance(int64_t index) const {
    return at(index).best.distance;
  }
  int64_t cells_pruned_total(int64_t index) const {
    return at(index).cells_pruned;
  }
  int64_t cells_computed_total(int64_t index) const {
    return at(index).cells_computed;
  }
  const SpringOptions& options(int64_t index) const {
    return at(index).options;
  }

  /// Aggregate working-set bytes (rows + query values + per-query state).
  util::MemoryFootprint Footprint() const;

 private:
  /// Per-query scalar state. Row data lives in the pool-wide arrays below;
  /// each query owns the half-open segment [row_offset, row_offset + m) of
  /// both, holding STWM rows i = 1..m (the star row i = 0 is implicit).
  struct QueryState {
    int64_t query_offset = 0;  // Into query_values_.
    int64_t row_offset = 0;    // Into the d/s row arrays.
    int64_t m = 0;
    SpringOptions options;
    int64_t t = 0;
    bool has_candidate = false;
    double dmin = 0.0;
    int64_t ts = 0;
    int64_t te = 0;
    int64_t group_start = 0;
    int64_t group_end = 0;
    bool has_best = false;
    Match best;
    int64_t cells_pruned = 0;
    int64_t cells_computed = 0;
    int64_t last_report_end = -1;  // Debug-gated disjointness baseline.
  };

  const QueryState& at(int64_t index) const;

  /// Appends a query slot (rows initialized to the fresh-matcher state) and
  /// returns its index.
  int64_t AppendSlot(std::vector<double> query, const SpringOptions& options);

  /// Advances query `q` by one value. `d_prev`/`s_prev` hold the previous
  /// tick's rows for this query's segment, `d_cur`/`s_cur` receive the new
  /// ones (caller manages the double-buffer parity). Returns true when a
  /// disjoint-query match was reported into `*match`.
  template <typename Dist>
  bool UpdateOne(QueryState& q, double x, Dist dist, const double* y,
                 double* d_cur, int64_t* s_cur, const double* d_prev,
                 const int64_t* s_prev, Match* match);

  /// Dispatches on the query's local-distance functor.
  bool UpdateOneDispatch(QueryState& q, double x, double* d_cur,
                         int64_t* s_cur, const double* d_prev,
                         const int64_t* s_prev, Match* match);

  std::vector<QueryState> queries_;
  std::vector<double> query_values_;  // Concatenated query vectors.

  // Double-buffered SoA rows for all queries. rows_[parity_] holds the
  // previous tick's rows ("prev"), rows_[1 - parity_] is scratch for the
  // tick being computed; parity flips once per consumed tick.
  std::vector<double> d_rows_[2];
  std::vector<int64_t> s_rows_[2];
  int parity_ = 0;

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  // Scratch full columns (star row materialized) for the debug-gated
  // invariant checks; see docs/CORRECTNESS.md.
  std::vector<double> check_d_, check_d_prev_;
  std::vector<int64_t> check_s_, check_s_prev_;
#endif
};

/// Adapter exposing one pool slot through SpringMatcher's accessor names,
/// so code templated on a "matcher-like" object (e.g. the engine's
/// observability bookkeeping) works with either backing store.
class PoolQueryView {
 public:
  PoolQueryView(const SpringBatchPool& pool, int64_t index)
      : pool_(&pool), index_(index) {}

  int64_t ticks_processed() const { return pool_->ticks_processed(index_); }
  bool has_pending_candidate() const {
    return pool_->has_pending_candidate(index_);
  }
  double candidate_distance() const {
    return pool_->candidate_distance(index_);
  }
  int64_t candidate_start() const { return pool_->candidate_start(index_); }
  int64_t candidate_end() const { return pool_->candidate_end(index_); }
  bool has_best() const { return pool_->has_best(index_); }
  Match best() const { return pool_->best(index_); }
  double best_distance() const { return pool_->best_distance(index_); }
  int64_t cells_pruned_total() const {
    return pool_->cells_pruned_total(index_);
  }
  int64_t cells_computed_total() const {
    return pool_->cells_computed_total(index_);
  }

 private:
  const SpringBatchPool* pool_;
  int64_t index_;
};

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_SPRING_BATCH_H_
