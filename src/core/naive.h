#ifndef SPRINGDTW_CORE_NAIVE_H_
#define SPRINGDTW_CORE_NAIVE_H_

#include <cstdint>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "dtw/local_distance.h"
#include "ts/series.h"
#include "util/memory.h"

namespace springdtw {
namespace core {

/// The paper's "Naive" baseline (Section 3.1.3): one time-warping matrix per
/// starting position, each advanced by one column per tick — O(n*m) time and
/// O(n*m) space per tick, where n is the stream length so far. Functionally
/// equivalent to SpringMatcher (same matches, same report times), including
/// the max_match_length / min_match_length extensions; exists as the
/// comparison subject of Figures 7 and 8 and as an independent oracle in
/// tests (the differential oracle test compares the two on every workload).
/// Ties between equal-distance start positions may resolve differently than
/// SpringMatcher's Equation (8) tie-break — both choices are optimal.
class NaiveMatcher {
 public:
  /// Same contract as SpringMatcher.
  NaiveMatcher(std::vector<double> query, SpringOptions options);

  /// Processes one value; O(n*m). Returns true when a disjoint-query match
  /// is reported, mirroring SpringMatcher::Update exactly.
  bool Update(double x, Match* match);

  /// Reports a still-pending candidate at stream end (see SpringMatcher).
  bool Flush(Match* match);

  bool has_best() const { return has_best_; }
  Match best() const { return best_; }
  int64_t ticks_processed() const { return t_; }
  bool has_pending_candidate() const { return has_candidate_; }

  /// Working-set bytes: grows linearly with the stream (Figure 8's top
  /// curve).
  util::MemoryFootprint Footprint() const;

  /// The exact byte count the live data structures would occupy after `n`
  /// ticks with query length `m` — used by the Figure 8 bench to plot the
  /// naive curve past the sizes that fit in RAM (the paper's testbed could
  /// not hold them either; the curve is the same straight line).
  static int64_t ModelBytes(int64_t n, int64_t m);

  /// Benchmark-only: installs `ticks` synthetic matrices (columns filled
  /// with `fill`) as if that many values had been consumed, without paying
  /// the O(n^2 * m) replay cost. The next Update() then performs exactly
  /// the per-tick work of a stream of that length, which is what Figures 7
  /// and 8 measure. Do not mix with correctness-sensitive use: the
  /// fabricated history matches no real stream.
  void PrewarmForBenchmark(int64_t ticks, double fill);

 private:
  std::vector<double> query_;
  SpringOptions options_;

  // One rolling column per start position; column index i in [0, m] where
  // row 0 is the f(k, 0) boundary (0 before the first update, inf after).
  std::vector<std::vector<double>> columns_;

  // Per-tick reconstruction of the STWM row: row_min_[i] = d(t, i) =
  // min over start positions p of f_p(., i); row_argmin_[i] = s(t, i).
  std::vector<double> row_min_;
  std::vector<int64_t> row_argmin_;

  // Scratch: per-matrix f(k-1, i-1) values for the row-major update.
  std::vector<double> diag_;

  int64_t t_ = 0;
  bool has_candidate_ = false;
  double dmin_ = 0.0;
  int64_t ts_ = 0;
  int64_t te_ = 0;
  int64_t group_start_ = 0;
  int64_t group_end_ = 0;
  bool has_best_ = false;
  Match best_;
};

/// Brute-force oracle ("Super-Naive", Section 3.1.3): the DTW distance of
/// every subsequence X[a : b] to the query, computed independently with the
/// classic full DTW. O(n^3 * m) — tiny inputs only; used as ground truth in
/// tests. Entry [a][b - a] is D(X[a : b], Y).
std::vector<std::vector<double>> AllSubsequenceDistances(
    const ts::Series& stream, const ts::Series& query,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared);

/// Brute-force best match over all subsequences (ties broken by earlier end,
/// then earlier start, matching SPRING's reporting order).
Match SuperNaiveBestMatch(
    const ts::Series& stream, const ts::Series& query,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared);

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_NAIVE_H_
