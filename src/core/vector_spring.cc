#include "core/vector_spring.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/invariants.h"
#include "dtw/local_distance.h"
#include "util/codec.h"
#include "util/logging.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

VectorSpringMatcher::VectorSpringMatcher(ts::VectorSeries query,
                                         SpringOptions options)
    : query_(std::move(query)), options_(options) {
  SPRINGDTW_CHECK_GT(query_.size(), 0)
      << "vector SPRING needs a non-empty query";
  const size_t rows = static_cast<size_t>(query_.size()) + 1;
  d_.assign(rows, kInf);
  d_prev_.assign(rows, kInf);
  s_.assign(rows, 0);
  s_prev_.assign(rows, 0);
  Reset();
}

void VectorSpringMatcher::Reset() {
  std::fill(d_.begin(), d_.end(), kInf);
  std::fill(d_prev_.begin(), d_prev_.end(), kInf);
  std::fill(s_.begin(), s_.end(), int64_t{0});
  std::fill(s_prev_.begin(), s_prev_.end(), int64_t{0});
  d_prev_[0] = 0.0;
  t_ = 0;
  has_candidate_ = false;
  dmin_ = kInf;
  ts_ = te_ = 0;
  group_start_ = group_end_ = 0;
  has_best_ = false;
  best_ = Match{};
  cells_pruned_ = 0;
  last_report_end_ = -1;
}

bool VectorSpringMatcher::Update(std::span<const double> row, Match* match) {
  SPRINGDTW_DCHECK(static_cast<int64_t>(row.size()) == dims());
  const int64_t m = query_length();
  const int64_t t = t_;

  d_[0] = 0.0;
  s_[0] = t;
  for (int64_t i = 1; i <= m; ++i) {
    const double d_here = d_[static_cast<size_t>(i - 1)];
    const double d_up = d_prev_[static_cast<size_t>(i)];
    const double d_diag = d_prev_[static_cast<size_t>(i - 1)];
    double dbest = d_here;
    if (d_up < dbest) dbest = d_up;
    if (d_diag < dbest) dbest = d_diag;

    d_[static_cast<size_t>(i)] =
        dtw::VectorPointDistance(options_.local_distance, row,
                                 query_.Row(i - 1)) +
        dbest;
    if (d_here == dbest) {
      s_[static_cast<size_t>(i)] = s_[static_cast<size_t>(i - 1)];
    } else if (d_up == dbest) {
      s_[static_cast<size_t>(i)] = s_prev_[static_cast<size_t>(i)];
    } else {
      s_[static_cast<size_t>(i)] = s_prev_[static_cast<size_t>(i - 1)];
    }
    if (options_.max_match_length > 0 &&
        t - s_[static_cast<size_t>(i)] + 1 > options_.max_match_length) {
      d_[static_cast<size_t>(i)] = kInf;
      ++cells_pruned_;
    }
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  // Debug-gated STWM invariant checks (docs/CORRECTNESS.md); mirrors the
  // scalar matcher's wiring.
  const invariants::StwmColumn inv_column{
      std::span<const double>(d_.data(), d_.size()),
      std::span<const int64_t>(s_.data(), s_.size()),
      std::span<const double>(d_prev_.data(), d_prev_.size()),
      std::span<const int64_t>(s_prev_.data(), s_prev_.size()), t};
  {
    const std::string violation = invariants::CheckColumn(inv_column);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
  const double inv_prev_best = has_best_ ? best_.distance : kInf;
#endif

  const double dm = d_[static_cast<size_t>(m)];
  const int64_t sm = s_[static_cast<size_t>(m)];
  const bool long_enough =
      options_.min_match_length <= 0 ||
      t - sm + 1 >= options_.min_match_length;

  if (long_enough && (!has_best_ || dm < best_.distance)) {
    has_best_ = true;
    best_.start = sm;
    best_.end = t;
    best_.distance = dm;
    best_.report_time = t;
    best_.group_start = sm;
    best_.group_end = t;
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  if (has_best_) {
    const std::string violation =
        invariants::CheckBest(best_, inv_prev_best);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif

  bool reported = false;
  if (has_candidate_ && dmin_ <= options_.epsilon) {
    bool can_report = true;
    for (int64_t i = 1; i <= m; ++i) {
      if (d_[static_cast<size_t>(i)] < dmin_ &&
          s_[static_cast<size_t>(i)] <= te_) {
        can_report = false;
        break;
      }
    }
    if (can_report) {
      if (match != nullptr) {
        match->start = ts_;
        match->end = te_;
        match->distance = dmin_;
        match->report_time = t;
        match->group_start = group_start_;
        match->group_end = group_end_;
      }
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
      {
        Match inv_match;
        inv_match.start = ts_;
        inv_match.end = te_;
        inv_match.distance = dmin_;
        inv_match.report_time = t;
        const std::string violation = invariants::CheckReport(
            inv_column, inv_match, options_.epsilon, last_report_end_);
        SPRINGDTW_CHECK(violation.empty()) << violation;
        last_report_end_ = te_;
      }
#endif
      reported = true;
      dmin_ = kInf;
      has_candidate_ = false;
      for (int64_t i = 1; i <= m; ++i) {
        if (s_[static_cast<size_t>(i)] <= te_) {
          d_[static_cast<size_t>(i)] = kInf;
        }
      }
    }
  }

  const double dm_after = d_[static_cast<size_t>(m)];
  if (dm_after <= options_.epsilon && long_enough) {
    if (dm_after < dmin_) {
      dmin_ = dm_after;
      ts_ = sm;
      te_ = t;
      if (!has_candidate_) {
        group_start_ = sm;
        group_end_ = t;
      }
      has_candidate_ = true;
    }
    if (has_candidate_) {
      group_start_ = std::min(group_start_, sm);
      group_end_ = std::max(group_end_, t);
    }
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  if (has_candidate_) {
    const std::string violation =
        invariants::CheckCandidate(inv_column, dmin_, ts_, te_, group_start_,
                                   group_end_, options_.epsilon);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif

  std::swap(d_, d_prev_);
  std::swap(s_, s_prev_);
  ++t_;
  return reported;
}

bool VectorSpringMatcher::Flush(Match* match) {
  if (!has_candidate_ || dmin_ > options_.epsilon) return false;
  if (match != nullptr) {
    match->start = ts_;
    match->end = te_;
    match->distance = dmin_;
    match->report_time = t_;
    match->group_start = group_start_;
    match->group_end = group_end_;
  }
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  SPRINGDTW_CHECK(ts_ > last_report_end_)
      << "STWM invariant 'reports-disjoint' violated at flush: start "
      << ts_ << " overlaps previous report ending at " << last_report_end_;
  last_report_end_ = te_;
#endif
  has_candidate_ = false;
  dmin_ = kInf;
  for (size_t i = 1; i < d_prev_.size(); ++i) {
    if (s_prev_[i] <= te_) d_prev_[i] = kInf;
  }
  return true;
}

namespace {

constexpr uint32_t kVectorSnapshotMagic = 0x53505632;  // "SPV2"
constexpr uint32_t kVectorSnapshotVersion = 1;

}  // namespace

std::vector<uint8_t> VectorSpringMatcher::SerializeState() const {
  util::ByteWriter writer;
  writer.WriteU32(kVectorSnapshotMagic);
  writer.WriteU32(kVectorSnapshotVersion);
  writer.WriteDouble(options_.epsilon);
  writer.WriteU8(static_cast<uint8_t>(options_.local_distance));
  writer.WriteI64(options_.max_match_length);
  writer.WriteI64(options_.min_match_length);
  writer.WriteI64(query_.dims());
  writer.WriteString(query_.name());
  writer.WriteDoubleVector(query_.data());
  writer.WriteDoubleVector(d_prev_);
  writer.WriteInt64Vector(s_prev_);
  writer.WriteI64(t_);
  writer.WriteBool(has_candidate_);
  writer.WriteDouble(dmin_);
  writer.WriteI64(ts_);
  writer.WriteI64(te_);
  writer.WriteI64(group_start_);
  writer.WriteI64(group_end_);
  writer.WriteBool(has_best_);
  writer.WriteI64(best_.start);
  writer.WriteI64(best_.end);
  writer.WriteDouble(best_.distance);
  writer.WriteI64(best_.report_time);
  writer.WriteI64(best_.group_start);
  writer.WriteI64(best_.group_end);
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  {
    const std::string violation = invariants::CheckSnapshotRoundTrip(*this);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif
  return writer.Take();
}

util::StatusOr<VectorSpringMatcher> VectorSpringMatcher::DeserializeState(
    std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kVectorSnapshotMagic) {
    return util::InvalidArgumentError("not a VectorSpringMatcher snapshot");
  }
  if (version != kVectorSnapshotVersion) {
    return util::InvalidArgumentError("unsupported snapshot version");
  }

  SpringOptions options;
  uint8_t distance = 0;
  reader.ReadDouble(&options.epsilon);
  reader.ReadU8(&distance);
  reader.ReadI64(&options.max_match_length);
  reader.ReadI64(&options.min_match_length);
  if (distance > static_cast<uint8_t>(dtw::LocalDistance::kAbsolute)) {
    return util::InvalidArgumentError("snapshot has unknown local distance");
  }
  options.local_distance = static_cast<dtw::LocalDistance>(distance);

  int64_t dims = 0;
  std::string name;
  std::vector<double> data;
  reader.ReadI64(&dims);
  reader.ReadString(&name);
  if (!reader.ReadDoubleVector(&data) || !reader.ok() || dims < 1 ||
      data.empty() || static_cast<int64_t>(data.size()) % dims != 0) {
    return util::InvalidArgumentError("snapshot query corrupt");
  }
  for (const double v : data) {
    if (std::isnan(v)) {
      return util::InvalidArgumentError("snapshot query contains NaN");
    }
  }
  ts::VectorSeries query(dims, std::move(name));
  for (size_t offset = 0; offset < data.size();
       offset += static_cast<size_t>(dims)) {
    query.AppendRow(std::span<const double>(data.data() + offset,
                                            static_cast<size_t>(dims)));
  }

  VectorSpringMatcher matcher(std::move(query), options);
  if (!reader.ReadDoubleVector(&matcher.d_prev_) ||
      !reader.ReadInt64Vector(&matcher.s_prev_) ||
      matcher.d_prev_.size() !=
          static_cast<size_t>(matcher.query_length()) + 1 ||
      matcher.s_prev_.size() !=
          static_cast<size_t>(matcher.query_length()) + 1) {
    return util::InvalidArgumentError("snapshot rows corrupt");
  }
  reader.ReadI64(&matcher.t_);
  reader.ReadBool(&matcher.has_candidate_);
  reader.ReadDouble(&matcher.dmin_);
  reader.ReadI64(&matcher.ts_);
  reader.ReadI64(&matcher.te_);
  reader.ReadI64(&matcher.group_start_);
  reader.ReadI64(&matcher.group_end_);
  reader.ReadBool(&matcher.has_best_);
  reader.ReadI64(&matcher.best_.start);
  reader.ReadI64(&matcher.best_.end);
  reader.ReadDouble(&matcher.best_.distance);
  reader.ReadI64(&matcher.best_.report_time);
  reader.ReadI64(&matcher.best_.group_start);
  reader.ReadI64(&matcher.best_.group_end);
  if (!reader.ok() || !reader.AtEnd() || matcher.t_ < 0) {
    return util::InvalidArgumentError("snapshot truncated or corrupt");
  }

  // Semantic validation, mirroring SpringMatcher::DeserializeState: reject
  // snapshots that parse but encode state no real matcher could have been
  // in, so resuming the stream cannot violate the STWM invariants.
  const int64_t last_tick = matcher.t_ > 0 ? matcher.t_ - 1 : 0;
  if (matcher.d_prev_[0] != 0.0 || matcher.s_prev_[0] != last_tick) {
    return util::InvalidArgumentError("snapshot star row corrupt");
  }
  for (size_t i = 1; i < matcher.d_prev_.size(); ++i) {
    const double d = matcher.d_prev_[i];
    const int64_t s = matcher.s_prev_[i];
    if (std::isnan(d) || d < 0.0 || s < 0 || s > last_tick) {
      return util::InvalidArgumentError("snapshot STWM row corrupt");
    }
  }
  if (matcher.has_candidate_) {
    if (matcher.t_ == 0 || std::isnan(matcher.dmin_) || matcher.dmin_ < 0.0 ||
        matcher.dmin_ > matcher.options_.epsilon || matcher.ts_ < 0 ||
        matcher.ts_ > matcher.te_ || matcher.te_ > last_tick ||
        matcher.group_start_ < 0 || matcher.group_start_ > matcher.ts_ ||
        matcher.group_end_ < matcher.te_ || matcher.group_end_ > last_tick) {
      return util::InvalidArgumentError("snapshot candidate corrupt");
    }
  }
  if (matcher.has_best_) {
    if (matcher.t_ == 0 || std::isnan(matcher.best_.distance) ||
        matcher.best_.distance < 0.0 || matcher.best_.start < 0 ||
        matcher.best_.start > matcher.best_.end ||
        matcher.best_.end > last_tick ||
        matcher.best_.report_time < matcher.best_.end ||
        matcher.best_.report_time > last_tick) {
      return util::InvalidArgumentError("snapshot best-match corrupt");
    }
  }
  return matcher;
}

util::MemoryFootprint VectorSpringMatcher::Footprint() const {
  util::MemoryFootprint fp;
  fp.Add("query", util::VectorBytes(query_.data()));
  fp.Add("stwm_distances",
         util::VectorBytes(d_) + util::VectorBytes(d_prev_));
  fp.Add("stwm_starts", util::VectorBytes(s_) + util::VectorBytes(s_prev_));
  return fp;
}

}  // namespace core
}  // namespace springdtw
