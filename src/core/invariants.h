#ifndef SPRINGDTW_CORE_INVARIANTS_H_
#define SPRINGDTW_CORE_INVARIANTS_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/match.h"

/// Compile-time gate for the STWM invariant checks wired into the SPRING
/// matchers and the monitor engine. On by default in debug builds, compiled
/// out entirely (zero cost, no branches) in NDEBUG builds. Sanitizer
/// presets force it on via SPRINGDTW_FORCE_INVARIANT_CHECKS so the asan /
/// ubsan / tsan legs also verify the algorithmic invariants.
#ifndef SPRINGDTW_ENABLE_INVARIANT_CHECKS
#if defined(SPRINGDTW_FORCE_INVARIANT_CHECKS) || !defined(NDEBUG)
#define SPRINGDTW_ENABLE_INVARIANT_CHECKS 1
#else
#define SPRINGDTW_ENABLE_INVARIANT_CHECKS 0
#endif
#endif

namespace springdtw {
namespace core {

class SpringMatcher;
class VectorSpringMatcher;

namespace invariants {

/// One STWM column (the paper's d(t, i) / s(t, i) for a fixed t) plus the
/// previous column, as the matcher holds them right after the DP update of
/// tick `t` and before the end-of-tick row swap. Index 0 is the
/// star-padding row.
struct StwmColumn {
  std::span<const double> d;
  std::span<const int64_t> s;
  std::span<const double> d_prev;
  std::span<const int64_t> s_prev;
  int64_t t = 0;
};

/// Every checker returns an empty string when the invariant holds and a
/// human-readable description of the first violation otherwise. They are
/// always compiled (so tests can exercise them in any build mode); only the
/// call sites inside the matchers are gated on
/// SPRINGDTW_ENABLE_INVARIANT_CHECKS.

/// Per-tick structural properties of the freshly computed column:
///  * star-padding row is identically zero: d(t, 0) = 0, s(t, 0) = t;
///  * every cell distance is non-negative (+inf for killed/pruned cells,
///    never NaN);
///  * every finite cell's starting position lies in [0, t];
///  * every finite cell inherited its starting position from one of its
///    three STWM predecessors (Equation 8): s(t, i) is one of
///    s(t, i-1), s(t-1, i), s(t-1, i-1).
std::string CheckColumn(const StwmColumn& col);

/// Properties of a captured-but-unreported candidate (the paper's d_min,
/// t_s, t_e): 0 <= d_min <= epsilon, 0 <= t_s <= t_e <= t, and the
/// candidate lies inside its group's extent.
std::string CheckCandidate(const StwmColumn& col, double dmin, int64_t ts,
                           int64_t te, int64_t group_start, int64_t group_end,
                           double epsilon);

/// Properties that must hold at the moment a disjoint-query match is
/// reported (checked against the column *before* the post-report kill):
///  * the match qualifies: 0 <= distance <= epsilon, start <= end,
///    end < report tick;
///  * report-as-early-as-possible: for every cell i,
///    d(t, i) >= d_min OR s(t, i) > t_e — no in-flight warping path could
///    still undercut the candidate within its group;
///  * disjointness: the match starts strictly after the previously
///    reported match ended (`last_report_end`, -1 when none).
std::string CheckReport(const StwmColumn& col, const Match& match,
                        double epsilon, int64_t last_report_end);

/// Best-match (Problem 1) sanity: distance >= 0 and never increasing
/// relative to `prev_distance` (+inf when there was no previous best),
/// 0 <= start <= end <= report_time.
std::string CheckBest(const Match& best, double prev_distance);

/// Checkpoint round-trip equivalence: SerializeState -> DeserializeState ->
/// SerializeState must reproduce the exact same bytes. Re-entrant calls
/// (from the serialize path under the debug gate) short-circuit to OK.
std::string CheckSnapshotRoundTrip(const SpringMatcher& matcher);
std::string CheckSnapshotRoundTrip(const VectorSpringMatcher& matcher);

}  // namespace invariants
}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_INVARIANTS_H_
