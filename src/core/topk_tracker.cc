#include "core/topk_tracker.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace springdtw {
namespace core {
namespace {

// Max-heap comparator on distance (worst match at the front).
bool HeapLess(const Match& a, const Match& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.end > b.end;  // Among equals, the later end is "worse".
}

}  // namespace

TopKTracker::TopKTracker(int64_t k) : k_(k) {
  SPRINGDTW_CHECK_GE(k, 1);
  heap_.reserve(static_cast<size_t>(k));
}

double TopKTracker::admission_threshold() const {
  return size() < k_ ? std::numeric_limits<double>::infinity()
                     : heap_.front().distance;
}

bool TopKTracker::Offer(const Match& match) {
  ++offered_;
  if (size() < k_) {
    heap_.push_back(match);
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return true;
  }
  if (!HeapLess(match, heap_.front())) return false;
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = match;
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
  return true;
}

std::vector<Match> TopKTracker::Snapshot() const {
  std::vector<Match> out = heap_;
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.end < b.end;
  });
  return out;
}

void TopKTracker::Clear() {
  heap_.clear();
  offered_ = 0;
}

}  // namespace core
}  // namespace springdtw
