#ifndef SPRINGDTW_CORE_TOPK_TRACKER_H_
#define SPRINGDTW_CORE_TOPK_TRACKER_H_

#include <cstdint>
#include <vector>

#include "core/match.h"

namespace springdtw {
namespace core {

/// Maintains the k best (smallest-distance) disjoint matches of a stream
/// *online*: feed it every match a SpringMatcher reports (reports are
/// already pairwise disjoint, so no overlap resolution is needed) and ask
/// for the current top k at any tick. O(log k) per offer via a max-heap on
/// distance; O(k log k) per snapshot.
///
/// This is the streaming counterpart of core::TopKDisjointMatches: run the
/// matcher with epsilon = +infinity (every group reports its optimum) and
/// offer every report.
class TopKTracker {
 public:
  /// Tracks the `k` smallest-distance matches; k >= 1.
  explicit TopKTracker(int64_t k);

  /// Accounts one reported match. Returns true if it entered the top k
  /// (possibly evicting the current worst).
  bool Offer(const Match& match);

  /// Current number of tracked matches (<= k).
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }

  /// Largest tracked distance; +infinity while fewer than k are tracked
  /// (anything would still be accepted).
  double admission_threshold() const;

  /// The tracked matches, sorted by ascending distance (ties by earlier
  /// end). O(k log k).
  std::vector<Match> Snapshot() const;

  /// Total matches offered so far (accepted or not).
  int64_t offered() const { return offered_; }

  void Clear();

 private:
  int64_t k_;
  int64_t offered_ = 0;
  // Max-heap on distance: heap_.front() is the current worst.
  std::vector<Match> heap_;
};

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_TOPK_TRACKER_H_
