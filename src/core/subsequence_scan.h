#ifndef SPRINGDTW_CORE_SUBSEQUENCE_SCAN_H_
#define SPRINGDTW_CORE_SUBSEQUENCE_SCAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "core/spring_path.h"
#include "ts/series.h"
#include "ts/vector_series.h"

namespace springdtw {
namespace core {

/// Stored-sequence conveniences built on the streaming matchers. The paper
/// notes (Section 6) that SPRING "can obviously be applied to stored
/// sequence sets, too" — these wrappers are that workflow.

/// The minimum-DTW-distance subsequence of `series` w.r.t. `query`
/// (Problem 1), found in one O(n*m) SPRING pass.
Match BestSubsequence(
    const ts::Series& series, const ts::Series& query,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared);

/// All disjoint-query matches of `query` in `series` at threshold `epsilon`
/// (Problem 2), in report order. When `flush` is true (default for stored
/// sequences) a candidate still pending at the end of the series is emitted
/// too.
std::vector<Match> DisjointMatches(
    const ts::Series& series, const ts::Series& query, double epsilon,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared,
    bool flush = true);

/// Like DisjointMatches, but each match carries its optimal warping path.
std::vector<PathMatch> DisjointPathMatches(
    const ts::Series& series, const ts::Series& query, double epsilon,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared,
    bool flush = true);

/// All disjoint-query matches of a k-dimensional query in a k-dimensional
/// series (Section 5.3 workflow).
std::vector<Match> DisjointVectorMatches(
    const ts::VectorSeries& series, const ts::VectorSeries& query,
    double epsilon,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared,
    bool flush = true);

/// The k best *disjoint* subsequence matches of `query` in `series`,
/// sorted by ascending distance. Computed as one SPRING pass with an
/// unbounded threshold (every overlap group yields its local optimum),
/// then keeping the k smallest — the natural streaming generalization of
/// best-match to "top k non-overlapping". Fewer than k are returned when
/// the stream has fewer disjoint groups. Requires k >= 1.
std::vector<Match> TopKDisjointMatches(
    const ts::Series& series, const ts::Series& query, int64_t k,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared);

/// The DTW distance of the specific subsequence series[start : end] (both
/// inclusive) to `query`, computed with the classic full DTW — an
/// independent oracle for tests and epsilon calibration.
double SubsequenceDtwDistance(
    const ts::Series& series, int64_t start, int64_t end,
    const ts::Series& query,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared);

/// Chooses a disjoint-query threshold that admits every region in `regions`
/// (pairs of first/last tick of a known episode): for each region the best
/// subsequence distance within it is measured with a SPRING pass, and the
/// maximum is scaled by `slack` (> 1 leaves noise headroom). This mirrors
/// how thresholds are picked empirically per dataset in the paper's Table 2.
double CalibrateEpsilon(
    const ts::Series& series, const ts::Series& query,
    const std::vector<std::pair<int64_t, int64_t>>& regions,
    double slack = 1.1,
    dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared);

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_SUBSEQUENCE_SCAN_H_
