#include "core/subsequence_scan.h"

#include <algorithm>
#include <limits>

#include "core/vector_spring.h"
#include "dtw/dtw.h"
#include "util/logging.h"

namespace springdtw {
namespace core {

Match BestSubsequence(const ts::Series& series, const ts::Series& query,
                      dtw::LocalDistance local_distance) {
  SpringOptions options;
  // Distances are non-negative, so a negative threshold disables the
  // disjoint-query machinery entirely; only best-match tracking runs.
  options.epsilon = -1.0;
  options.local_distance = local_distance;
  SpringMatcher matcher(query.values(), options);
  for (int64_t t = 0; t < series.size(); ++t) {
    matcher.Update(series[t], nullptr);
  }
  SPRINGDTW_CHECK(matcher.has_best());
  return matcher.best();
}

std::vector<Match> DisjointMatches(const ts::Series& series,
                                   const ts::Series& query, double epsilon,
                                   dtw::LocalDistance local_distance,
                                   bool flush) {
  SpringOptions options;
  options.epsilon = epsilon;
  options.local_distance = local_distance;
  SpringMatcher matcher(query.values(), options);
  std::vector<Match> matches;
  Match match;
  for (int64_t t = 0; t < series.size(); ++t) {
    if (matcher.Update(series[t], &match)) matches.push_back(match);
  }
  if (flush && matcher.Flush(&match)) matches.push_back(match);
  return matches;
}

std::vector<PathMatch> DisjointPathMatches(const ts::Series& series,
                                           const ts::Series& query,
                                           double epsilon,
                                           dtw::LocalDistance local_distance,
                                           bool flush) {
  SpringOptions options;
  options.epsilon = epsilon;
  options.local_distance = local_distance;
  SpringPathMatcher matcher(query.values(), options);
  std::vector<PathMatch> matches;
  PathMatch match;
  for (int64_t t = 0; t < series.size(); ++t) {
    if (matcher.Update(series[t], &match)) matches.push_back(match);
  }
  if (flush && matcher.Flush(&match)) matches.push_back(match);
  return matches;
}

std::vector<Match> DisjointVectorMatches(const ts::VectorSeries& series,
                                         const ts::VectorSeries& query,
                                         double epsilon,
                                         dtw::LocalDistance local_distance,
                                         bool flush) {
  SpringOptions options;
  options.epsilon = epsilon;
  options.local_distance = local_distance;
  VectorSpringMatcher matcher(query, options);
  std::vector<Match> matches;
  Match match;
  for (int64_t t = 0; t < series.size(); ++t) {
    if (matcher.Update(series.Row(t), &match)) matches.push_back(match);
  }
  if (flush && matcher.Flush(&match)) matches.push_back(match);
  return matches;
}

std::vector<Match> TopKDisjointMatches(const ts::Series& series,
                                       const ts::Series& query, int64_t k,
                                       dtw::LocalDistance local_distance) {
  SPRINGDTW_CHECK_GE(k, 1);
  std::vector<Match> matches =
      DisjointMatches(series, query,
                      std::numeric_limits<double>::infinity(),
                      local_distance, /*flush=*/true);
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.end < b.end;
            });
  if (static_cast<int64_t>(matches.size()) > k) {
    matches.resize(static_cast<size_t>(k));
  }
  return matches;
}

double SubsequenceDtwDistance(const ts::Series& series, int64_t start,
                              int64_t end, const ts::Series& query,
                              dtw::LocalDistance local_distance) {
  SPRINGDTW_CHECK(start >= 0 && end >= start && end < series.size());
  const ts::Series sub = series.Slice(start, end - start + 1);
  dtw::DtwOptions options;
  options.local_distance = local_distance;
  return dtw::DtwDistance(sub.values(), query.values(), options);
}

double CalibrateEpsilon(
    const ts::Series& series, const ts::Series& query,
    const std::vector<std::pair<int64_t, int64_t>>& regions, double slack,
    dtw::LocalDistance local_distance) {
  SPRINGDTW_CHECK(!regions.empty());
  double worst = 0.0;
  for (const auto& [first, last] : regions) {
    const ts::Series region = series.Slice(first, last - first + 1);
    const Match best = BestSubsequence(region, query, local_distance);
    worst = std::max(worst, best.distance);
  }
  return worst * slack;
}

}  // namespace core
}  // namespace springdtw
