#include "core/spring_batch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/invariants.h"
#include "util/logging.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const SpringBatchPool::QueryState& SpringBatchPool::at(int64_t index) const {
  SPRINGDTW_CHECK(index >= 0 && index < num_queries());
  return queries_[static_cast<size_t>(index)];
}

int64_t SpringBatchPool::AppendSlot(std::vector<double> query,
                                    const SpringOptions& options) {
  SPRINGDTW_CHECK(!query.empty()) << "SPRING needs a non-empty query";
  for (const double y : query) {
    SPRINGDTW_CHECK(!std::isnan(y)) << "query contains NaN";
  }
  QueryState state;
  state.query_offset = static_cast<int64_t>(query_values_.size());
  state.row_offset = static_cast<int64_t>(d_rows_[0].size());
  state.m = static_cast<int64_t>(query.size());
  state.options = options;
  state.dmin = kInf;
  query_values_.insert(query_values_.end(), query.begin(), query.end());
  for (int buf = 0; buf < 2; ++buf) {
    d_rows_[buf].insert(d_rows_[buf].end(), query.size(), kInf);
    s_rows_[buf].insert(s_rows_[buf].end(), query.size(), int64_t{0});
  }
  queries_.push_back(state);
  return num_queries() - 1;
}

int64_t SpringBatchPool::AddQuery(std::vector<double> query,
                                  const SpringOptions& options) {
  return AppendSlot(std::move(query), options);
}

int64_t SpringBatchPool::AdoptMatcher(const SpringMatcher& matcher) {
  const int64_t index = AppendSlot(matcher.query_, matcher.options_);
  QueryState& q = queries_[static_cast<size_t>(index)];
  // SpringMatcher keeps its live row in the "prev" buffers between ticks;
  // copy rows 1..m (the pool never materializes the star row 0).
  double* d_prev = d_rows_[parity_].data() + q.row_offset;
  int64_t* s_prev = s_rows_[parity_].data() + q.row_offset;
  for (int64_t i = 0; i < q.m; ++i) {
    d_prev[i] = matcher.d_prev_[static_cast<size_t>(i + 1)];
    s_prev[i] = matcher.s_prev_[static_cast<size_t>(i + 1)];
  }
  q.t = matcher.t_;
  q.has_candidate = matcher.has_candidate_;
  q.dmin = matcher.dmin_;
  q.ts = matcher.ts_;
  q.te = matcher.te_;
  q.group_start = matcher.group_start_;
  q.group_end = matcher.group_end_;
  q.has_best = matcher.has_best_;
  q.best = matcher.best_;
  q.cells_pruned = matcher.cells_pruned_;
  q.cells_computed = matcher.cells_computed_;
  q.last_report_end = matcher.last_report_end_;
  return index;
}

SpringMatcher SpringBatchPool::ToMatcher(int64_t index) const {
  const QueryState& q = at(index);
  std::vector<double> query(
      query_values_.begin() + q.query_offset,
      query_values_.begin() + q.query_offset + q.m);
  SpringMatcher matcher(std::move(query), q.options);
  const double* d_prev = d_rows_[parity_].data() + q.row_offset;
  const int64_t* s_prev = s_rows_[parity_].data() + q.row_offset;
  matcher.d_prev_[0] = 0.0;
  matcher.s_prev_[0] = q.t > 0 ? q.t - 1 : 0;
  for (int64_t i = 0; i < q.m; ++i) {
    matcher.d_prev_[static_cast<size_t>(i + 1)] = d_prev[i];
    matcher.s_prev_[static_cast<size_t>(i + 1)] = s_prev[i];
  }
  matcher.t_ = q.t;
  matcher.has_candidate_ = q.has_candidate;
  matcher.dmin_ = q.dmin;
  matcher.ts_ = q.ts;
  matcher.te_ = q.te;
  matcher.group_start_ = q.group_start;
  matcher.group_end_ = q.group_end;
  matcher.has_best_ = q.has_best;
  matcher.best_ = q.best;
  matcher.cells_pruned_ = q.cells_pruned;
  matcher.cells_computed_ = q.cells_computed;
  matcher.last_report_end_ = q.last_report_end;
  return matcher;
}

template <typename Dist>
bool SpringBatchPool::UpdateOne(QueryState& q, double x, Dist dist,
                                const double* y, double* d_cur,
                                int64_t* s_cur, const double* d_prev,
                                const int64_t* s_prev, Match* match) {
  const int64_t m = q.m;
  const int64_t t = q.t;
  q.cells_computed += m;

  // --- STWM column update, Equations (7)/(8), star row implicit:
  // d(t, 0) = 0, s(t, 0) = t; d(t-1, 0) = 0, s(t-1, 0) = t - 1. The
  // expression order mirrors SpringMatcher::UpdateImpl exactly so results
  // compare bitwise equal.
  double d_here = 0.0;   // d(t, i-1), starts at the star row.
  int64_t s_here = t;    // s(t, i-1)
  double d_diag = 0.0;   // d(t-1, i-1)
  int64_t s_diag = t - 1;
  for (int64_t i = 0; i < m; ++i) {
    const double d_up = d_prev[i];  // d(t-1, i)
    const int64_t s_up = s_prev[i];
    double dbest = d_here;
    if (d_up < dbest) dbest = d_up;
    if (d_diag < dbest) dbest = d_diag;

    double d_new = dist(x, y[i]) + dbest;
    // Tie-break order follows Equation (8): (t, i-1), (t-1, i), (t-1, i-1).
    int64_t s_new;
    if (d_here == dbest) {
      s_new = s_here;
    } else if (d_up == dbest) {
      s_new = s_up;
    } else {
      s_new = s_diag;
    }
    if (q.options.max_match_length > 0 &&
        t - s_new + 1 > q.options.max_match_length) {
      d_new = kInf;
      ++q.cells_pruned;
    }
    d_cur[i] = d_new;
    s_cur[i] = s_new;
    d_here = d_new;
    s_here = s_new;
    d_diag = d_up;
    s_diag = s_up;
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  // Materialize full columns (star row at index 0) for the debug-gated
  // checks; copies are taken before the post-report kill below so the
  // report check sees the pre-kill column, as in SpringMatcher.
  const size_t rows = static_cast<size_t>(m) + 1;
  check_d_.assign(rows, 0.0);
  check_s_.assign(rows, 0);
  check_d_prev_.assign(rows, 0.0);
  check_s_prev_.assign(rows, 0);
  check_s_[0] = t;
  check_s_prev_[0] = t > 0 ? t - 1 : 0;
  for (int64_t i = 0; i < m; ++i) {
    check_d_[static_cast<size_t>(i) + 1] = d_cur[i];
    check_s_[static_cast<size_t>(i) + 1] = s_cur[i];
    check_d_prev_[static_cast<size_t>(i) + 1] = d_prev[i];
    check_s_prev_[static_cast<size_t>(i) + 1] = s_prev[i];
  }
  const invariants::StwmColumn inv_column{
      std::span<const double>(check_d_.data(), check_d_.size()),
      std::span<const int64_t>(check_s_.data(), check_s_.size()),
      std::span<const double>(check_d_prev_.data(), check_d_prev_.size()),
      std::span<const int64_t>(check_s_prev_.data(), check_s_prev_.size()),
      t};
  {
    const std::string violation = invariants::CheckColumn(inv_column);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
  const double inv_prev_best = q.has_best ? q.best.distance : kInf;
#endif

  const double dm = d_cur[m - 1];
  const int64_t sm = s_cur[m - 1];
  const bool long_enough = q.options.min_match_length <= 0 ||
                           t - sm + 1 >= q.options.min_match_length;

  // --- Best-match tracking (Problem 1 / Theorem 1). ---
  if (long_enough && (!q.has_best || dm < q.best.distance)) {
    q.has_best = true;
    q.best.start = sm;
    q.best.end = t;
    q.best.distance = dm;
    q.best.report_time = t;
    q.best.group_start = sm;
    q.best.group_end = t;
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  if (q.has_best) {
    const std::string violation = invariants::CheckBest(q.best, inv_prev_best);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif

  // --- Disjoint-query algorithm (the paper's Figure 4). ---
  bool reported = false;
  if (q.has_candidate && q.dmin <= q.options.epsilon) {
    bool can_report = true;
    for (int64_t i = 0; i < m; ++i) {
      if (d_cur[i] < q.dmin && s_cur[i] <= q.te) {
        can_report = false;
        break;
      }
    }
    if (can_report) {
      if (match != nullptr) {
        match->start = q.ts;
        match->end = q.te;
        match->distance = q.dmin;
        match->report_time = t;
        match->group_start = q.group_start;
        match->group_end = q.group_end;
      }
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
      {
        Match inv_match;
        inv_match.start = q.ts;
        inv_match.end = q.te;
        inv_match.distance = q.dmin;
        inv_match.report_time = t;
        const std::string violation = invariants::CheckReport(
            inv_column, inv_match, q.options.epsilon, q.last_report_end);
        SPRINGDTW_CHECK(violation.empty()) << violation;
      }
#endif
      q.last_report_end = q.te;
      reported = true;
      q.dmin = kInf;
      q.has_candidate = false;
      for (int64_t i = 0; i < m; ++i) {
        if (s_cur[i] <= q.te) d_cur[i] = kInf;
      }
    }
  }

  // Candidate capture / replacement. Note d_cur[m-1] may have just been
  // killed.
  const double dm_after = d_cur[m - 1];
  if (dm_after <= q.options.epsilon && long_enough) {
    if (dm_after < q.dmin) {
      q.dmin = dm_after;
      q.ts = sm;
      q.te = t;
      if (!q.has_candidate) {
        q.group_start = sm;
        q.group_end = t;
      }
      q.has_candidate = true;
    }
    if (q.has_candidate) {
      q.group_start = std::min(q.group_start, sm);
      q.group_end = std::max(q.group_end, t);
    }
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  if (q.has_candidate) {
    const std::string violation = invariants::CheckCandidate(
        inv_column, q.dmin, q.ts, q.te, q.group_start, q.group_end,
        q.options.epsilon);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif

  ++q.t;
  return reported;
}

bool SpringBatchPool::UpdateOneDispatch(QueryState& q, double x,
                                        double* d_cur, int64_t* s_cur,
                                        const double* d_prev,
                                        const int64_t* s_prev, Match* match) {
  const double* y = query_values_.data() + q.query_offset;
  switch (q.options.local_distance) {
    case dtw::LocalDistance::kSquared:
      return UpdateOne(q, x, dtw::SquaredDistance(), y, d_cur, s_cur, d_prev,
                       s_prev, match);
    case dtw::LocalDistance::kAbsolute:
      return UpdateOne(q, x, dtw::AbsoluteDistance(), y, d_cur, s_cur,
                       d_prev, s_prev, match);
  }
  return UpdateOne(q, x, dtw::SquaredDistance(), y, d_cur, s_cur, d_prev,
                   s_prev, match);
}

int64_t SpringBatchPool::PushBatch(std::span<const double> values,
                                   std::vector<Report>* reports) {
  if (values.empty() || queries_.empty()) {
    // Ticks must advance even with no queries so late-added queries see a
    // consistent pool; with no queries there is no per-query state to move.
    if (!queries_.empty()) return 0;
    parity_ = (parity_ + static_cast<int>(values.size() % 2)) & 1;
    return 0;
  }
  const size_t first_report =
      reports != nullptr ? reports->size() : size_t{0};
  int64_t appended = 0;
  Match match;
  // Query-major: each query consumes the whole span before the next starts,
  // so its two DP rows stay in L1 across the batch. Tick j reads buffer
  // (parity_ + j) & 1 as "previous" and writes (parity_ + j + 1) & 1.
  for (QueryState& q : queries_) {
    for (size_t j = 0; j < values.size(); ++j) {
      const int prev_buf = (parity_ + static_cast<int>(j)) & 1;
      const int cur_buf = prev_buf ^ 1;
      const bool reported = UpdateOneDispatch(
          q, values[j], d_rows_[cur_buf].data() + q.row_offset,
          s_rows_[cur_buf].data() + q.row_offset,
          d_rows_[prev_buf].data() + q.row_offset,
          s_rows_[prev_buf].data() + q.row_offset,
          reports != nullptr ? &match : nullptr);
      if (reported && reports != nullptr) {
        reports->push_back(
            Report{&q - queries_.data(), match});
        ++appended;
      }
    }
  }
  parity_ = (parity_ + static_cast<int>(values.size() % 2)) & 1;
  // Restore the order per-tick processing would produce: by report tick,
  // then by query index (stable for equal keys).
  if (reports != nullptr && appended > 1) {
    std::stable_sort(
        reports->begin() + static_cast<std::ptrdiff_t>(first_report),
        reports->end(), [](const Report& a, const Report& b) {
          if (a.match.report_time != b.match.report_time) {
            return a.match.report_time < b.match.report_time;
          }
          return a.query_index < b.query_index;
        });
  }
  return appended;
}

int64_t SpringBatchPool::Update(double x, std::vector<Report>* reports) {
  return PushBatch(std::span<const double>(&x, 1), reports);
}

int64_t SpringBatchPool::Flush(std::vector<Report>* reports) {
  int64_t appended = 0;
  double* d_prev = d_rows_[parity_].data();
  int64_t* s_prev = s_rows_[parity_].data();
  for (QueryState& q : queries_) {
    if (!q.has_candidate || q.dmin > q.options.epsilon) continue;
    if (reports != nullptr) {
      Report report;
      report.query_index = &q - queries_.data();
      report.match.start = q.ts;
      report.match.end = q.te;
      report.match.distance = q.dmin;
      report.match.report_time = q.t;
      report.match.group_start = q.group_start;
      report.match.group_end = q.group_end;
      reports->push_back(report);
    }
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
    SPRINGDTW_CHECK(q.ts > q.last_report_end)
        << "STWM invariant 'reports-disjoint' violated at flush: start "
        << q.ts << " overlaps previous report ending at "
        << q.last_report_end;
#endif
    q.last_report_end = q.te;
    q.has_candidate = false;
    q.dmin = kInf;
    // Kill cells belonging to the flushed group, mirroring
    // SpringMatcher::Flush, so resuming the stream cannot re-report
    // overlapping subsequences.
    for (int64_t i = 0; i < q.m; ++i) {
      if (s_prev[q.row_offset + i] <= q.te) {
        d_prev[q.row_offset + i] = kInf;
      }
    }
    ++appended;
  }
  return appended;
}

bool SpringBatchPool::RemoveQuery(int64_t index, Match* match) {
  const QueryState& q = at(index);
  // Report-eligibility at removal time mirrors the per-tick check in
  // UpdateOne (the paper's Figure 4): the candidate is committed iff no
  // current-row cell could still grow into a better overlapping match.
  bool flushed = false;
  if (q.has_candidate && q.dmin <= q.options.epsilon) {
    const double* d_prev = d_rows_[parity_].data() + q.row_offset;
    const int64_t* s_prev = s_rows_[parity_].data() + q.row_offset;
    bool can_report = true;
    for (int64_t i = 0; i < q.m; ++i) {
      if (d_prev[i] < q.dmin && s_prev[i] <= q.te) {
        can_report = false;
        break;
      }
    }
    if (can_report) {
      if (match != nullptr) {
        match->start = q.ts;
        match->end = q.te;
        match->distance = q.dmin;
        match->report_time = q.t;
        match->group_start = q.group_start;
        match->group_end = q.group_end;
      }
      flushed = true;
    }
  }

  // Compact: slots were appended in index order, so every query past
  // `index` sits `m` entries higher in each array.
  const int64_t m = q.m;
  const auto values_first = query_values_.begin() + q.query_offset;
  query_values_.erase(values_first, values_first + m);
  for (int buf = 0; buf < 2; ++buf) {
    const auto d_first = d_rows_[buf].begin() + q.row_offset;
    d_rows_[buf].erase(d_first, d_first + m);
    const auto s_first = s_rows_[buf].begin() + q.row_offset;
    s_rows_[buf].erase(s_first, s_first + m);
  }
  queries_.erase(queries_.begin() + index);
  for (size_t j = static_cast<size_t>(index); j < queries_.size(); ++j) {
    queries_[j].query_offset -= m;
    queries_[j].row_offset -= m;
  }
  return flushed;
}

util::MemoryFootprint SpringBatchPool::Footprint() const {
  util::MemoryFootprint fp;
  fp.Add("query", util::VectorBytes(query_values_));
  fp.Add("stwm_distances",
         util::VectorBytes(d_rows_[0]) + util::VectorBytes(d_rows_[1]));
  fp.Add("stwm_starts",
         util::VectorBytes(s_rows_[0]) + util::VectorBytes(s_rows_[1]));
  fp.Add("pool_state", static_cast<int64_t>(queries_.capacity() *
                                            sizeof(QueryState)));
  return fp;
}

}  // namespace core
}  // namespace springdtw
