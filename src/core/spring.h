#ifndef SPRINGDTW_CORE_SPRING_H_
#define SPRINGDTW_CORE_SPRING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/match.h"
#include "dtw/local_distance.h"
#include "util/memory.h"
#include "util/status.h"

namespace springdtw {
namespace core {

/// Options shared by the SPRING matchers.
struct SpringOptions {
  /// Disjoint-query threshold epsilon. Subsequences with DTW distance
  /// <= epsilon qualify. Irrelevant for pure best-match use (set anything);
  /// set to +infinity to make every subsequence qualify.
  double epsilon = 0.0;
  /// Tick-to-tick distance; the paper's default is the squared difference.
  dtw::LocalDistance local_distance = dtw::LocalDistance::kSquared;
  /// Extension (not in the paper): if > 0, warping paths spanning more than
  /// this many stream ticks are pruned, bounding how far a match may
  /// stretch relative to the query (akin to a global constraint for the
  /// subsequence case). 0 means unlimited, the paper's semantics. Matches
  /// and best-match results then never exceed this length.
  int64_t max_match_length = 0;
  /// Extension (not in the paper): matches whose *optimal* alignment spans
  /// fewer than this many stream ticks do not qualify for disjoint-query
  /// reporting (best-match tracking also skips them). This is a report
  /// filter, not a constrained search: if a shorter alignment dominates the
  /// STWM cell, a longer-but-worse alignment of the same region is not
  /// resurrected. 0 means no minimum. Useful to suppress degenerate
  /// few-tick matches under loose epsilons.
  int64_t min_match_length = 0;
};

/// SPRING: streaming subsequence matching under the DTW distance
/// (Sakurai, Faloutsos, Yamamuro, ICDE 2007).
///
/// Feed the stream one value per tick with Update(); the matcher maintains
/// the star-padded subsequence time warping matrix (STWM) in O(m) space and
/// O(m) time per tick (m = query length), and
///  * reports disjoint-query matches (Problem 2) exactly per the paper's
///    Figure 4 algorithm: every group of overlapping qualifying subsequences
///    yields its local-minimum subsequence, reported as early as the
///    optimality can be guaranteed, with no false dismissals;
///  * tracks the running best-match (Problem 1) at no extra cost.
///
/// A subtlety of the published algorithm that callers should know: after a
/// report, the STWM cells of the reported group are killed, so a *later*
/// match whose isolated-optimal alignment would have routed through the
/// killed group reports a distance that can slightly exceed the DTW distance
/// of its interval computed in isolation (never undercut it, and never
/// above epsilon). Positions and the no-false-dismissal guarantees are
/// unaffected.
///
/// The hot path performs no heap allocation and never throws.
///
/// Example:
///   SpringMatcher matcher(query, {.epsilon = 100.0});
///   Match match;
///   for (double x : stream) {
///     if (matcher.Update(x, &match)) Report(match);
///   }
///   if (matcher.Flush(&match)) Report(match);  // Finite streams only.
class SpringMatcher {
 public:
  /// `query` is Y = (y_1 .. y_m), m >= 1 (the star-padding y_0 is implicit).
  SpringMatcher(std::vector<double> query, SpringOptions options);

  SpringMatcher(const SpringMatcher&) = default;
  SpringMatcher& operator=(const SpringMatcher&) = default;
  SpringMatcher(SpringMatcher&&) = default;
  SpringMatcher& operator=(SpringMatcher&&) = default;

  /// Processes the next stream value. Returns true if a disjoint-query match
  /// is reported at this tick, filling `*match` (match may be null if the
  /// caller only wants best-match tracking). O(m), allocation-free.
  bool Update(double x, Match* match);

  /// If a qualifying candidate is still pending (its group never closed
  /// because the stream ended), reports it. Only meaningful for finite
  /// streams; a semi-infinite stream never calls this.
  bool Flush(Match* match);

  /// Number of ticks consumed so far.
  int64_t ticks_processed() const { return t_; }

  /// Best-match tracking (Problem 1): true once any subsequence exists.
  bool has_best() const { return has_best_; }
  /// The minimum-distance subsequence seen so far. Requires has_best().
  Match best() const { return best_; }

  /// True if a qualifying candidate is currently captured but not reported.
  bool has_pending_candidate() const { return has_candidate_; }

  /// Observability accessors: plain member reads so a monitoring layer can
  /// derive candidate-churn and best-improvement events around Update()
  /// without touching the hot path when unused.
  /// Current best distance; meaningless before has_best().
  double best_distance() const { return best_.distance; }
  /// Pending candidate's d_min / t_s / t_e; meaningless before
  /// has_pending_candidate().
  double candidate_distance() const { return dmin_; }
  int64_t candidate_start() const { return ts_; }
  int64_t candidate_end() const { return te_; }
  /// Pending candidate's warping-group extent (the span all overlapping
  /// qualifying subsequences cover); meaningless before
  /// has_pending_candidate().
  int64_t candidate_group_start() const { return group_start_; }
  int64_t candidate_group_end() const { return group_end_; }
  /// STWM cells pruned by the max_match_length constraint since
  /// construction or Reset(). Diagnostic only: not serialized, so a
  /// restored matcher restarts at 0.
  int64_t cells_pruned_total() const { return cells_pruned_; }
  /// STWM cells computed since construction or Reset() — exactly m per
  /// Update(), the paper's O(m)-per-tick cost made countable for per-query
  /// accounting. Diagnostic only: not serialized, so a restored matcher
  /// restarts at 0.
  int64_t cells_computed_total() const { return cells_computed_; }

  /// Query length m.
  int64_t query_length() const {
    return static_cast<int64_t>(query_.size());
  }
  const std::vector<double>& query() const { return query_; }
  const SpringOptions& options() const { return options_; }

  /// Discards all stream state (keeps the query); the next Update() is
  /// tick 0 again.
  void Reset();

  /// Working-set bytes (the quantity of the paper's Figure 8).
  util::MemoryFootprint Footprint() const;

  /// Serializes the matcher's complete state — query, options, DP rows,
  /// pending candidate, best-match — into a versioned byte snapshot, so a
  /// monitoring process can checkpoint and resume a stream after a restart
  /// without replaying history. O(m) bytes.
  std::vector<uint8_t> SerializeState() const;

  /// Reconstructs a matcher from SerializeState() output. Feeding the
  /// restored matcher the remainder of the stream yields byte-for-byte the
  /// same reports the original would have produced. Fails on truncated,
  /// corrupt, or version-mismatched input.
  static util::StatusOr<SpringMatcher> DeserializeState(
      std::span<const uint8_t> bytes);

  /// Diagnostics / testing: the STWM row produced by the last Update() —
  /// index i in [0, m] holds d(t, i) / s(t, i) of the star-padded matrix
  /// (i = 0 is the star row: d = 0, s = t). Valid until the next Update().
  std::span<const double> LastRowDistances() const;
  std::span<const int64_t> LastRowStarts() const;

 private:
  // The SoA batch pool (core/spring_batch.h) bridges matcher state in and
  // out of its packed layout (AdoptMatcher / ToMatcher) without widening
  // the public API.
  friend class SpringBatchPool;

  template <typename Dist>
  bool UpdateImpl(double x, Match* match, Dist dist);

  std::vector<double> query_;
  SpringOptions options_;

  // DP rows, index 0 is the star-padding row. After Update() returns, the
  // freshly computed row lives in prev_* (rows are swapped at the end of
  // each tick so the next tick reads them as "previous").
  std::vector<double> d_;
  std::vector<double> d_prev_;
  std::vector<int64_t> s_;
  std::vector<int64_t> s_prev_;

  int64_t t_ = 0;  // Next tick index == number of ticks consumed.

  // Captured disjoint-query candidate (the paper's d_min, t_s, t_e).
  bool has_candidate_ = false;
  double dmin_ = 0.0;
  int64_t ts_ = 0;
  int64_t te_ = 0;
  // Extent of the current group of overlapping qualifying subsequences.
  int64_t group_start_ = 0;
  int64_t group_end_ = 0;

  // Best-match tracking.
  bool has_best_ = false;
  Match best_;

  // Observability: cells discarded by the length-constraint pruning, and
  // cells computed (m per tick).
  int64_t cells_pruned_ = 0;
  int64_t cells_computed_ = 0;

  // End of the most recently reported match, used by the debug-gated
  // invariant checker to assert reports stay disjoint. -1 when nothing has
  // been reported. Not serialized: a restored matcher re-baselines (a
  // checkpoint can only hold state from after the previous report's group
  // was killed, so no false violation is possible).
  int64_t last_report_end_ = -1;
};

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_SPRING_H_
