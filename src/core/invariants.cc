#include "core/invariants.h"

#include <cmath>
#include <limits>
#include <vector>

#include "core/spring.h"
#include "core/vector_spring.h"
#include "util/string_util.h"

namespace springdtw {
namespace core {
namespace invariants {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Serialize-path checks re-enter SerializeState; this guard keeps the
/// nested call from recursing into another round-trip check.
thread_local bool g_in_round_trip = false;

class RoundTripGuard {
 public:
  RoundTripGuard() { g_in_round_trip = true; }
  ~RoundTripGuard() { g_in_round_trip = false; }
};

std::string Violation(const char* invariant, int64_t t, int64_t i,
                      const std::string& detail) {
  return util::StrFormat("STWM invariant '%s' violated at t=%lld i=%lld: %s",
                         invariant, static_cast<long long>(t),
                         static_cast<long long>(i), detail.c_str());
}

template <typename Matcher>
std::string RoundTripImpl(const Matcher& matcher, const char* type_name) {
  if (g_in_round_trip) return "";
  RoundTripGuard guard;
  const std::vector<uint8_t> bytes = matcher.SerializeState();
  auto restored = Matcher::DeserializeState(bytes);
  if (!restored.ok()) {
    return util::StrFormat(
        "%s snapshot does not restore: %s", type_name,
        restored.status().ToString().c_str());
  }
  const std::vector<uint8_t> bytes2 = restored->SerializeState();
  if (bytes != bytes2) {
    return util::StrFormat(
        "%s snapshot round-trip not byte-identical (%zu vs %zu bytes)",
        type_name, bytes.size(), bytes2.size());
  }
  return "";
}

}  // namespace

std::string CheckColumn(const StwmColumn& col) {
  const int64_t t = col.t;
  if (col.d.size() != col.s.size() || col.d.size() != col.d_prev.size() ||
      col.d.size() != col.s_prev.size() || col.d.size() < 2) {
    return Violation("row-shape", t, -1,
                     util::StrFormat("inconsistent row sizes %zu/%zu/%zu/%zu",
                                     col.d.size(), col.s.size(),
                                     col.d_prev.size(), col.s_prev.size()));
  }
  if (col.d[0] != 0.0 || col.s[0] != t) {
    return Violation(
        "star-row", t, 0,
        util::StrFormat("expected d=0 s=t, got d=%g s=%lld", col.d[0],
                        static_cast<long long>(col.s[0])));
  }
  for (size_t i = 1; i < col.d.size(); ++i) {
    const double d = col.d[i];
    const int64_t s = col.s[i];
    if (std::isnan(d) || d < 0.0) {
      return Violation("distance-non-negative", t,
                       static_cast<int64_t>(i), util::StrFormat("d=%g", d));
    }
    if (d == kInf) continue;  // Killed or pruned cell; s is stale.
    if (s < 0 || s > t) {
      return Violation(
          "start-in-range", t, static_cast<int64_t>(i),
          util::StrFormat("s=%lld not in [0, %lld]",
                          static_cast<long long>(s),
                          static_cast<long long>(t)));
    }
    if (s != col.s[i - 1] && s != col.s_prev[i] && s != col.s_prev[i - 1]) {
      return Violation(
          "start-inheritance", t, static_cast<int64_t>(i),
          util::StrFormat(
              "s=%lld matches none of its predecessors %lld/%lld/%lld",
              static_cast<long long>(s),
              static_cast<long long>(col.s[i - 1]),
              static_cast<long long>(col.s_prev[i]),
              static_cast<long long>(col.s_prev[i - 1])));
    }
  }
  return "";
}

std::string CheckCandidate(const StwmColumn& col, double dmin, int64_t ts,
                           int64_t te, int64_t group_start,
                           int64_t group_end, double epsilon) {
  const int64_t t = col.t;
  if (std::isnan(dmin) || dmin < 0.0 || dmin > epsilon) {
    return Violation(
        "candidate-qualifies", t, -1,
        util::StrFormat("d_min=%g not in [0, epsilon=%g]", dmin, epsilon));
  }
  if (ts < 0 || ts > te || te > t) {
    return Violation(
        "candidate-extent", t, -1,
        util::StrFormat("t_s=%lld t_e=%lld not ordered within [0, %lld]",
                        static_cast<long long>(ts),
                        static_cast<long long>(te),
                        static_cast<long long>(t)));
  }
  if (group_start > ts || group_end < te) {
    return Violation(
        "candidate-in-group", t, -1,
        util::StrFormat("candidate [%lld, %lld] outside group [%lld, %lld]",
                        static_cast<long long>(ts),
                        static_cast<long long>(te),
                        static_cast<long long>(group_start),
                        static_cast<long long>(group_end)));
  }
  return "";
}

std::string CheckReport(const StwmColumn& col, const Match& match,
                        double epsilon, int64_t last_report_end) {
  const int64_t t = col.t;
  if (std::isnan(match.distance) || match.distance < 0.0 ||
      match.distance > epsilon) {
    return Violation(
        "report-qualifies", t, -1,
        util::StrFormat("distance=%g not in [0, epsilon=%g]", match.distance,
                        epsilon));
  }
  if (match.start < 0 || match.start > match.end ||
      match.end >= match.report_time) {
    return Violation(
        "report-extent", t, -1,
        util::StrFormat("start=%lld end=%lld report_time=%lld",
                        static_cast<long long>(match.start),
                        static_cast<long long>(match.end),
                        static_cast<long long>(match.report_time)));
  }
  if (match.start <= last_report_end) {
    return Violation(
        "reports-disjoint", t, -1,
        util::StrFormat("start=%lld overlaps previous report ending at %lld",
                        static_cast<long long>(match.start),
                        static_cast<long long>(last_report_end)));
  }
  // Report-as-early-as-possible (Figure 4): no surviving warping path may
  // still undercut the candidate inside its group.
  for (size_t i = 1; i < col.d.size(); ++i) {
    if (col.d[i] < match.distance && col.s[i] <= match.end) {
      return Violation(
          "report-earliest", t, static_cast<int64_t>(i),
          util::StrFormat("cell d=%g s=%lld could still undercut d_min=%g",
                          col.d[i], static_cast<long long>(col.s[i]),
                          match.distance));
    }
  }
  return "";
}

std::string CheckBest(const Match& best, double prev_distance) {
  if (std::isnan(best.distance) || best.distance < 0.0) {
    return Violation("best-non-negative", best.report_time, -1,
                     util::StrFormat("distance=%g", best.distance));
  }
  if (best.distance > prev_distance) {
    return Violation(
        "best-monotone", best.report_time, -1,
        util::StrFormat("distance=%g exceeds previous best %g",
                        best.distance, prev_distance));
  }
  if (best.start < 0 || best.start > best.end ||
      best.end > best.report_time) {
    return Violation(
        "best-extent", best.report_time, -1,
        util::StrFormat("start=%lld end=%lld report_time=%lld",
                        static_cast<long long>(best.start),
                        static_cast<long long>(best.end),
                        static_cast<long long>(best.report_time)));
  }
  return "";
}

std::string CheckSnapshotRoundTrip(const SpringMatcher& matcher) {
  return RoundTripImpl(matcher, "SpringMatcher");
}

std::string CheckSnapshotRoundTrip(const VectorSpringMatcher& matcher) {
  return RoundTripImpl(matcher, "VectorSpringMatcher");
}

}  // namespace invariants
}  // namespace core
}  // namespace springdtw
