#ifndef SPRINGDTW_CORE_MATCH_H_
#define SPRINGDTW_CORE_MATCH_H_

#include <cstdint>
#include <string>

namespace springdtw {
namespace core {

/// A reported subsequence match: the stream subsequence X[start : end]
/// (0-based, both inclusive) whose DTW distance to the query is `distance`.
///
/// `report_time` is the tick at which the matcher *committed* to the match —
/// for disjoint queries that is the first tick at which no upcoming
/// overlapping subsequence can beat it (the paper's "output time", Table 2).
/// `group_start`/`group_end` bound the whole group of overlapping qualifying
/// subsequences the match was the optimum of (the paper's Section 5.3
/// modification); for a lone match they equal start/end.
struct Match {
  int64_t start = 0;
  int64_t end = 0;
  double distance = 0.0;
  int64_t report_time = 0;
  int64_t group_start = 0;
  int64_t group_end = 0;

  /// Number of ticks covered, end - start + 1.
  int64_t length() const { return end - start + 1; }

  /// True if [start, end] intersects [other.start, other.end].
  bool Overlaps(const Match& other) const {
    return start <= other.end && other.start <= end;
  }

  /// "X[start:end] dist=... len=... reported@..." for logs and tables.
  std::string ToString() const;
};

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_MATCH_H_
