#ifndef SPRINGDTW_CORE_SPRING_PATH_H_
#define SPRINGDTW_CORE_SPRING_PATH_H_

#include <cstdint>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "dtw/dtw.h"
#include "util/memory.h"

namespace springdtw {
namespace core {

/// A disjoint-query match together with the optimal warping path that
/// produced it: pairs of (stream tick, query index), both 0-based, in
/// increasing order from the match's start to its end.
struct PathMatch {
  Match match;
  std::vector<dtw::PathStep> path;
};

/// SPRING with warping-path tracking — the "SPRING(path)" variant of the
/// paper's Figure 8. Besides the O(m) STWM rows, every live cell keeps a
/// node in a reference-counted path arena; dead branches are reclaimed as
/// rows advance, so memory grows only with the warping paths that are still
/// reachable ("the space requirement ... depends on the captured data"),
/// far below the naive method's O(n*m).
///
/// The reported matches (positions, distances, report times) are identical
/// to SpringMatcher's; only the extra path output differs. Per-tick cost is
/// still O(m), allocation-free once the arena has warmed up (freed nodes are
/// recycled through a free list).
class SpringPathMatcher {
 public:
  SpringPathMatcher(std::vector<double> query, SpringOptions options);

  // The arena holds raw indices; moves are fine, copies are not meaningful.
  SpringPathMatcher(const SpringPathMatcher&) = delete;
  SpringPathMatcher& operator=(const SpringPathMatcher&) = delete;
  SpringPathMatcher(SpringPathMatcher&&) = default;
  SpringPathMatcher& operator=(SpringPathMatcher&&) = default;

  /// Processes one value; fills `*match` (with path) when a disjoint-query
  /// match is reported. `match` may be null.
  bool Update(double x, PathMatch* match);

  /// Reports a still-pending candidate at stream end.
  bool Flush(PathMatch* match);

  bool has_best() const { return has_best_; }
  Match best() const { return best_; }
  int64_t ticks_processed() const { return t_; }
  int64_t query_length() const {
    return static_cast<int64_t>(query_.size());
  }

  /// Number of path-arena nodes currently alive (reachable from live cells
  /// or the pending candidate).
  int64_t live_nodes() const { return live_nodes_; }

  /// Working-set bytes including the path arena (Figure 8's middle curve).
  util::MemoryFootprint Footprint() const;

 private:
  struct PathNode {
    int64_t t = 0;       // Stream tick of this cell.
    int32_t i = 0;       // Query row of this cell (1-based, as in the STWM).
    int32_t refcount = 0;
    int64_t parent = -1; // Predecessor node; reused as free-list link.
  };

  int64_t NewNode(int64_t parent, int64_t t, int32_t i);
  void Ref(int64_t node);
  void Unref(int64_t node);
  void ExtractPath(int64_t node, std::vector<dtw::PathStep>* path) const;
  void FillMatch(int64_t report_time, PathMatch* match) const;

  std::vector<double> query_;
  SpringOptions options_;

  std::vector<double> d_;
  std::vector<double> d_prev_;
  std::vector<int64_t> s_;
  std::vector<int64_t> s_prev_;
  std::vector<int64_t> node_;       // Arena index per cell; -1 for the star row.
  std::vector<int64_t> node_prev_;

  std::vector<PathNode> nodes_;
  int64_t free_head_ = -1;
  int64_t live_nodes_ = 0;

  int64_t t_ = 0;
  bool has_candidate_ = false;
  double dmin_ = 0.0;
  int64_t ts_ = 0;
  int64_t te_ = 0;
  int64_t candidate_node_ = -1;
  int64_t group_start_ = 0;
  int64_t group_end_ = 0;
  bool has_best_ = false;
  Match best_;
};

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_SPRING_PATH_H_
