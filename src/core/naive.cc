#include "core/naive.h"

#include <algorithm>
#include <limits>

#include "dtw/dtw.h"
#include "util/logging.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

NaiveMatcher::NaiveMatcher(std::vector<double> query, SpringOptions options)
    : query_(std::move(query)), options_(options) {
  SPRINGDTW_CHECK(!query_.empty()) << "naive matcher needs a non-empty query";
  dmin_ = kInf;
  const size_t rows = query_.size() + 1;
  row_min_.assign(rows, kInf);
  row_argmin_.assign(rows, -1);
}

bool NaiveMatcher::Update(double x, Match* match) {
  const int64_t m = static_cast<int64_t>(query_.size());
  const int64_t t = t_;

  // A new matrix starts at every tick (Figure 2 of the paper). Its rolling
  // column is in the "previous column of k = 0" state: f(0, 0) = 0,
  // f(0, i) = inf.
  columns_.emplace_back(static_cast<size_t>(m + 1), kInf);
  columns_.back()[0] = 0.0;

  // Advance every matrix by one column (k grows by one) and reduce, per
  // query row i, the minimum distance over all start positions together
  // with its arg-min — i.e., recompute the STWM cells d(t, i) / s(t, i)
  // the expensive way. The iteration is row-major across matrices (not
  // matrix-major) so the max_match_length prune below can be applied to
  // the *merged* STWM cell between rows, exactly as SpringMatcher applies
  // it: when row i's merged optimum starts too far back, the cell d(t, i)
  // dies for every path — including still-admissible start positions whose
  // dominated alignments routed through it.
  std::fill(row_min_.begin(), row_min_.end(), kInf);
  std::fill(row_argmin_.begin(), row_argmin_.end(), int64_t{-1});
  diag_.resize(columns_.size());
  for (size_t p = 0; p < columns_.size(); ++p) {
    diag_[p] = columns_[p][0];  // f(k-1, 0)
    columns_[p][0] = kInf;      // f(k, 0) = inf for k >= 1.
  }
  for (int64_t i = 1; i <= m; ++i) {
    const double local = dtw::PointDistance(
        options_.local_distance, x, query_[static_cast<size_t>(i - 1)]);
    for (size_t p = 0; p < columns_.size(); ++p) {
      std::vector<double>& col = columns_[p];
      const double up = col[static_cast<size_t>(i)];        // f(k-1, i)
      const double left = col[static_cast<size_t>(i - 1)];  // f(k, i-1)
      const double diag = diag_[p];                         // f(k-1, i-1)
      double best = left;
      if (up < best) best = up;
      if (diag < best) best = diag;
      col[static_cast<size_t>(i)] = best == kInf ? kInf : local + best;
      diag_[p] = up;
      if (col[static_cast<size_t>(i)] < row_min_[static_cast<size_t>(i)]) {
        row_min_[static_cast<size_t>(i)] = col[static_cast<size_t>(i)];
        row_argmin_[static_cast<size_t>(i)] = static_cast<int64_t>(p);
      }
    }
    // Length-constraint extension, applied at the merged-cell level like
    // SpringMatcher's per-cell prune (see SpringOptions::max_match_length):
    // s(t, i) is this row's arg-min start, and the prune kills the whole
    // STWM cell, so every matrix loses it.
    if (options_.max_match_length > 0 &&
        row_argmin_[static_cast<size_t>(i)] >= 0 &&
        t - row_argmin_[static_cast<size_t>(i)] + 1 >
            options_.max_match_length) {
      for (std::vector<double>& col : columns_) {
        col[static_cast<size_t>(i)] = kInf;
      }
      row_min_[static_cast<size_t>(i)] = kInf;
      row_argmin_[static_cast<size_t>(i)] = -1;
    }
  }

  const double dm = row_min_[static_cast<size_t>(m)];
  const int64_t sm = row_argmin_[static_cast<size_t>(m)];
  // min_match_length is a report filter (see SpringOptions); computed once
  // here, like SpringMatcher, because the post-report kill below never
  // changes sm — it can only invalidate row m outright.
  const bool long_enough = options_.min_match_length <= 0 ||
                           t - sm + 1 >= options_.min_match_length;

  // Best-match tracking.
  if (sm >= 0 && long_enough && (!has_best_ || dm < best_.distance)) {
    has_best_ = true;
    best_.start = sm;
    best_.end = t;
    best_.distance = dm;
    best_.report_time = t;
    best_.group_start = sm;
    best_.group_end = t;
  }

  // Disjoint-query logic on the reconstructed STWM row, mirroring the
  // paper's Figure 4 exactly (and therefore SpringMatcher tick for tick).
  bool reported = false;
  if (has_candidate_ && dmin_ <= options_.epsilon) {
    bool can_report = true;
    for (int64_t i = 1; i <= m; ++i) {
      if (row_min_[static_cast<size_t>(i)] < dmin_ &&
          row_argmin_[static_cast<size_t>(i)] <= te_) {
        can_report = false;
        break;
      }
    }
    if (can_report) {
      if (match != nullptr) {
        match->start = ts_;
        match->end = te_;
        match->distance = dmin_;
        match->report_time = t;
        match->group_start = group_start_;
        match->group_end = group_end_;
      }
      reported = true;
      dmin_ = kInf;
      has_candidate_ = false;
      // Cell-level kill: an STWM cell whose optimal path starts inside the
      // reported group dies for *every* start position (any path through it
      // is subsumed by the reported group, Lemma 2). Also retire whole
      // matrices that start inside the group — their surviving cells are
      // dominated by later-start matrices anyway. Columns stay resident and
      // keep being updated (inf stays inf), preserving the O(n*m) per-tick
      // time and O(n*m) space of the paper's Lemma 3.
      for (int64_t i = 1; i <= m; ++i) {
        if (row_argmin_[static_cast<size_t>(i)] <= te_) {
          for (std::vector<double>& col : columns_) {
            col[static_cast<size_t>(i)] = kInf;
          }
          row_min_[static_cast<size_t>(i)] = kInf;
          row_argmin_[static_cast<size_t>(i)] = -1;
        }
      }
      for (size_t p = 0;
           p <= static_cast<size_t>(te_) && p < columns_.size(); ++p) {
        std::fill(columns_[p].begin(), columns_[p].end(), kInf);
      }
    }
  }

  const double dm_after = row_min_[static_cast<size_t>(m)];
  const int64_t sm_after = row_argmin_[static_cast<size_t>(m)];
  if (sm_after >= 0 && dm_after <= options_.epsilon && long_enough) {
    if (dm_after < dmin_) {
      dmin_ = dm_after;
      ts_ = sm_after;
      te_ = t;
      if (!has_candidate_) {
        group_start_ = sm_after;
        group_end_ = t;
      }
      has_candidate_ = true;
    }
    if (has_candidate_) {
      group_start_ = std::min(group_start_, sm_after);
      group_end_ = std::max(group_end_, t);
    }
  }

  ++t_;
  return reported;
}

bool NaiveMatcher::Flush(Match* match) {
  if (!has_candidate_ || dmin_ > options_.epsilon) return false;
  if (match != nullptr) {
    match->start = ts_;
    match->end = te_;
    match->distance = dmin_;
    match->report_time = t_;
    match->group_start = group_start_;
    match->group_end = group_end_;
  }
  has_candidate_ = false;
  dmin_ = kInf;
  for (int64_t i = 1; i <= static_cast<int64_t>(query_.size()); ++i) {
    if (row_argmin_[static_cast<size_t>(i)] <= te_) {
      for (std::vector<double>& col : columns_) {
        col[static_cast<size_t>(i)] = kInf;
      }
    }
  }
  return true;
}

util::MemoryFootprint NaiveMatcher::Footprint() const {
  util::MemoryFootprint fp;
  fp.Add("query", util::VectorBytes(query_));
  int64_t column_bytes = util::VectorBytes(columns_);
  for (const std::vector<double>& col : columns_) {
    column_bytes += util::VectorBytes(col);
  }
  fp.Add("matrices", column_bytes);
  fp.Add("row_reduction",
         util::VectorBytes(row_min_) + util::VectorBytes(row_argmin_));
  return fp;
}

void NaiveMatcher::PrewarmForBenchmark(int64_t ticks, double fill) {
  const size_t rows = query_.size() + 1;
  columns_.reserve(columns_.size() + static_cast<size_t>(ticks));
  for (int64_t i = 0; i < ticks; ++i) {
    columns_.emplace_back(rows, fill);
  }
  t_ += ticks;
}

int64_t NaiveMatcher::ModelBytes(int64_t n, int64_t m) {
  // The paper's accounting (Lemma 3): each of the n matrices keeps two
  // arrays of m (+1 boundary) numbers.
  return n * 2 * (m + 1) * static_cast<int64_t>(sizeof(double));
}

std::vector<std::vector<double>> AllSubsequenceDistances(
    const ts::Series& stream, const ts::Series& query,
    dtw::LocalDistance local_distance) {
  const int64_t n = stream.size();
  std::vector<std::vector<double>> out(static_cast<size_t>(n));
  dtw::DtwOptions options;
  options.local_distance = local_distance;
  for (int64_t a = 0; a < n; ++a) {
    out[static_cast<size_t>(a)].resize(static_cast<size_t>(n - a));
    for (int64_t b = a; b < n; ++b) {
      const ts::Series sub = stream.Slice(a, b - a + 1);
      out[static_cast<size_t>(a)][static_cast<size_t>(b - a)] =
          dtw::DtwDistance(sub.values(), query.values(), options);
    }
  }
  return out;
}

Match SuperNaiveBestMatch(const ts::Series& stream, const ts::Series& query,
                          dtw::LocalDistance local_distance) {
  const std::vector<std::vector<double>> all =
      AllSubsequenceDistances(stream, query, local_distance);
  Match best;
  best.distance = kInf;
  // Scan in end-then-start order so ties resolve to the earliest end and,
  // within an end, the earliest start — SPRING's reporting order.
  for (int64_t b = 0; b < stream.size(); ++b) {
    for (int64_t a = 0; a <= b; ++a) {
      const double d = all[static_cast<size_t>(a)][static_cast<size_t>(b - a)];
      if (d < best.distance) {
        best.start = a;
        best.end = b;
        best.distance = d;
        best.report_time = b;
        best.group_start = a;
        best.group_end = b;
      }
    }
  }
  return best;
}

}  // namespace core
}  // namespace springdtw
