#ifndef SPRINGDTW_CORE_VECTOR_SPRING_H_
#define SPRINGDTW_CORE_VECTOR_SPRING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "ts/vector_series.h"
#include "util/memory.h"
#include "util/status.h"

namespace springdtw {
namespace core {

/// SPRING over "vector streams" (paper Section 5.3): every tick carries k
/// numbers and the query is a k-dimensional sequence of m ticks. The local
/// distance is summed over channels (squared L2 by default), which leaves
/// the STWM recurrences — and all of SPRING's guarantees — unchanged.
///
/// Per the paper's motion-capture modification, the reported Match also
/// carries the start/end of the whole range of overlapping qualifying
/// subsequences (group_start / group_end), which is what the mocap
/// experiment displays per motion.
///
/// Complexity: O(k*m) time per tick, O(m) extra space beyond the query.
class VectorSpringMatcher {
 public:
  /// `query` has m >= 1 ticks of k >= 1 channels each.
  VectorSpringMatcher(ts::VectorSeries query, SpringOptions options);

  /// Processes the next tick, a span of exactly dims() values. Returns true
  /// when a disjoint-query match is reported into `*match`.
  bool Update(std::span<const double> row, Match* match);

  /// Reports a still-pending candidate at stream end.
  bool Flush(Match* match);

  bool has_best() const { return has_best_; }
  Match best() const { return best_; }
  int64_t ticks_processed() const { return t_; }
  bool has_pending_candidate() const { return has_candidate_; }

  /// Observability accessors — see SpringMatcher for semantics.
  double best_distance() const { return best_.distance; }
  double candidate_distance() const { return dmin_; }
  int64_t candidate_start() const { return ts_; }
  int64_t candidate_end() const { return te_; }
  int64_t cells_pruned_total() const { return cells_pruned_; }

  int64_t dims() const { return query_.dims(); }
  int64_t query_length() const { return query_.size(); }
  const SpringOptions& options() const { return options_; }

  /// Discards all stream state (keeps the query).
  void Reset();

  util::MemoryFootprint Footprint() const;

  /// Serializes the complete state into a versioned byte snapshot (see
  /// SpringMatcher::SerializeState). O(k*m) bytes.
  std::vector<uint8_t> SerializeState() const;

  /// Reconstructs a matcher from SerializeState() output; the restored
  /// matcher continues the stream identically.
  static util::StatusOr<VectorSpringMatcher> DeserializeState(
      std::span<const uint8_t> bytes);

 private:
  ts::VectorSeries query_;
  SpringOptions options_;

  std::vector<double> d_;
  std::vector<double> d_prev_;
  std::vector<int64_t> s_;
  std::vector<int64_t> s_prev_;

  int64_t t_ = 0;
  bool has_candidate_ = false;
  double dmin_ = 0.0;
  int64_t ts_ = 0;
  int64_t te_ = 0;
  int64_t group_start_ = 0;
  int64_t group_end_ = 0;
  bool has_best_ = false;
  Match best_;

  // Observability: cells discarded by the length-constraint pruning.
  int64_t cells_pruned_ = 0;

  // End of the most recently reported match, for the debug-gated
  // disjointness invariant check. See SpringMatcher::last_report_end_.
  int64_t last_report_end_ = -1;
};

}  // namespace core
}  // namespace springdtw

#endif  // SPRINGDTW_CORE_VECTOR_SPRING_H_
