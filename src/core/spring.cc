#include "core/spring.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/invariants.h"
#include "util/codec.h"
#include "util/logging.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SpringMatcher::SpringMatcher(std::vector<double> query, SpringOptions options)
    : query_(std::move(query)), options_(options) {
  SPRINGDTW_CHECK(!query_.empty()) << "SPRING needs a non-empty query";
  const size_t rows = query_.size() + 1;  // +1 for the star-padding row.
  d_.assign(rows, kInf);
  d_prev_.assign(rows, kInf);
  s_.assign(rows, 0);
  s_prev_.assign(rows, 0);
  Reset();
}

void SpringMatcher::Reset() {
  std::fill(d_.begin(), d_.end(), kInf);
  std::fill(d_prev_.begin(), d_prev_.end(), kInf);
  std::fill(s_.begin(), s_.end(), int64_t{0});
  std::fill(s_prev_.begin(), s_prev_.end(), int64_t{0});
  // Star-padding row: d(t, 0) = 0 for every t, including the virtual t = -1
  // column the first tick reads as "previous".
  d_prev_[0] = 0.0;
  s_prev_[0] = 0;
  t_ = 0;
  has_candidate_ = false;
  dmin_ = kInf;
  ts_ = te_ = 0;
  group_start_ = group_end_ = 0;
  has_best_ = false;
  best_ = Match{};
  cells_pruned_ = 0;
  cells_computed_ = 0;
  last_report_end_ = -1;
}

bool SpringMatcher::Update(double x, Match* match) {
  switch (options_.local_distance) {
    case dtw::LocalDistance::kSquared:
      return UpdateImpl(x, match, dtw::SquaredDistance());
    case dtw::LocalDistance::kAbsolute:
      return UpdateImpl(x, match, dtw::AbsoluteDistance());
  }
  return UpdateImpl(x, match, dtw::SquaredDistance());
}

template <typename Dist>
bool SpringMatcher::UpdateImpl(double x, Match* match, Dist dist) {
  const int64_t m = query_length();
  const int64_t t = t_;
  cells_computed_ += m;

  // --- STWM column update: Equations (7) and (8) of the paper. ---
  // Star-padding row: a subsequence may start here for free.
  d_[0] = 0.0;
  s_[0] = t;
  for (int64_t i = 1; i <= m; ++i) {
    const double d_here = d_[static_cast<size_t>(i - 1)];      // d(t, i-1)
    const double d_up = d_prev_[static_cast<size_t>(i)];       // d(t-1, i)
    const double d_diag = d_prev_[static_cast<size_t>(i - 1)]; // d(t-1, i-1)
    double dbest = d_here;
    if (d_up < dbest) dbest = d_up;
    if (d_diag < dbest) dbest = d_diag;

    d_[static_cast<size_t>(i)] =
        dist(x, query_[static_cast<size_t>(i - 1)]) + dbest;
    // Tie-break order follows Equation (8): (t, i-1), (t-1, i), (t-1, i-1).
    if (d_here == dbest) {
      s_[static_cast<size_t>(i)] = s_[static_cast<size_t>(i - 1)];
    } else if (d_up == dbest) {
      s_[static_cast<size_t>(i)] = s_prev_[static_cast<size_t>(i)];
    } else {
      s_[static_cast<size_t>(i)] = s_prev_[static_cast<size_t>(i - 1)];
    }
    // Length-constraint extension: prune warping paths that already span
    // more stream ticks than any admissible match may.
    if (options_.max_match_length > 0 &&
        t - s_[static_cast<size_t>(i)] + 1 > options_.max_match_length) {
      d_[static_cast<size_t>(i)] = kInf;
      ++cells_pruned_;
    }
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  // Debug-gated STWM invariant checks (docs/CORRECTNESS.md). The column
  // view stays valid through the tick; the report check below reads it
  // before the post-report kill mutates it.
  const invariants::StwmColumn inv_column{
      std::span<const double>(d_.data(), d_.size()),
      std::span<const int64_t>(s_.data(), s_.size()),
      std::span<const double>(d_prev_.data(), d_prev_.size()),
      std::span<const int64_t>(s_prev_.data(), s_prev_.size()), t};
  {
    const std::string violation = invariants::CheckColumn(inv_column);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
  const double inv_prev_best = has_best_ ? best_.distance : kInf;
#endif

  const double dm = d_[static_cast<size_t>(m)];
  const int64_t sm = s_[static_cast<size_t>(m)];
  const bool long_enough =
      options_.min_match_length <= 0 ||
      t - sm + 1 >= options_.min_match_length;

  // --- Best-match tracking (Problem 1 / Theorem 1). ---
  if (long_enough && (!has_best_ || dm < best_.distance)) {
    has_best_ = true;
    best_.start = sm;
    best_.end = t;
    best_.distance = dm;
    best_.report_time = t;
    best_.group_start = sm;
    best_.group_end = t;
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  if (has_best_) {
    const std::string violation =
        invariants::CheckBest(best_, inv_prev_best);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif

  // --- Disjoint-query algorithm (the paper's Figure 4), verbatim order:
  // first the report check against the *current* arrays, then the candidate
  // update with this tick's d_m. ---
  bool reported = false;
  if (has_candidate_ && dmin_ <= options_.epsilon) {
    bool can_report = true;
    for (int64_t i = 1; i <= m; ++i) {
      if (d_[static_cast<size_t>(i)] < dmin_ &&
          s_[static_cast<size_t>(i)] <= te_) {
        can_report = false;
        break;
      }
    }
    if (can_report) {
      if (match != nullptr) {
        match->start = ts_;
        match->end = te_;
        match->distance = dmin_;
        match->report_time = t;
        match->group_start = group_start_;
        match->group_end = group_end_;
      }
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
      {
        Match inv_match;
        inv_match.start = ts_;
        inv_match.end = te_;
        inv_match.distance = dmin_;
        inv_match.report_time = t;
        const std::string violation = invariants::CheckReport(
            inv_column, inv_match, options_.epsilon, last_report_end_);
        SPRINGDTW_CHECK(violation.empty()) << violation;
        last_report_end_ = te_;
      }
#endif
      reported = true;
      // Reset d_min and kill every cell whose path started inside the
      // reported group, so upcoming candidates are disjoint from it.
      dmin_ = kInf;
      has_candidate_ = false;
      for (int64_t i = 1; i <= m; ++i) {
        if (s_[static_cast<size_t>(i)] <= te_) {
          d_[static_cast<size_t>(i)] = kInf;
        }
      }
    }
  }

  // Candidate capture / replacement. Note d_[m] may have just been reset.
  const double dm_after = d_[static_cast<size_t>(m)];
  if (dm_after <= options_.epsilon && long_enough) {
    if (dm_after < dmin_) {
      dmin_ = dm_after;
      ts_ = sm;
      te_ = t;
      if (!has_candidate_) {
        group_start_ = sm;
        group_end_ = t;
      }
      has_candidate_ = true;
    }
    // Track the group of *all* qualifying overlapping subsequences
    // (Section 5.3 extension: report the range of the group).
    if (has_candidate_) {
      group_start_ = std::min(group_start_, sm);
      group_end_ = std::max(group_end_, t);
    }
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  if (has_candidate_) {
    const std::string violation =
        invariants::CheckCandidate(inv_column, dmin_, ts_, te_, group_start_,
                                   group_end_, options_.epsilon);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif

  std::swap(d_, d_prev_);
  std::swap(s_, s_prev_);
  ++t_;
  return reported;
}

bool SpringMatcher::Flush(Match* match) {
  if (!has_candidate_ || dmin_ > options_.epsilon) return false;
  if (match != nullptr) {
    match->start = ts_;
    match->end = te_;
    match->distance = dmin_;
    match->report_time = t_;
    match->group_start = group_start_;
    match->group_end = group_end_;
  }
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  SPRINGDTW_CHECK(ts_ > last_report_end_)
      << "STWM invariant 'reports-disjoint' violated at flush: start "
      << ts_ << " overlaps previous report ending at " << last_report_end_;
  last_report_end_ = te_;
#endif
  has_candidate_ = false;
  dmin_ = kInf;
  // Kill cells belonging to the flushed group, mirroring the report path,
  // so resuming the stream cannot re-report overlapping subsequences.
  for (size_t i = 1; i < d_prev_.size(); ++i) {
    if (s_prev_[i] <= te_) d_prev_[i] = kInf;
  }
  return true;
}

namespace {

// Snapshot format magic + version. Bump the version on layout changes.
constexpr uint32_t kSnapshotMagic = 0x53505231;  // "SPR1"
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

std::vector<uint8_t> SpringMatcher::SerializeState() const {
  util::ByteWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  writer.WriteDouble(options_.epsilon);
  writer.WriteU8(static_cast<uint8_t>(options_.local_distance));
  writer.WriteI64(options_.max_match_length);
  writer.WriteI64(options_.min_match_length);
  writer.WriteDoubleVector(query_);
  // Only the "previous" rows carry live state between ticks; the working
  // rows are scratch.
  writer.WriteDoubleVector(d_prev_);
  writer.WriteInt64Vector(s_prev_);
  writer.WriteI64(t_);
  writer.WriteBool(has_candidate_);
  writer.WriteDouble(dmin_);
  writer.WriteI64(ts_);
  writer.WriteI64(te_);
  writer.WriteI64(group_start_);
  writer.WriteI64(group_end_);
  writer.WriteBool(has_best_);
  writer.WriteI64(best_.start);
  writer.WriteI64(best_.end);
  writer.WriteDouble(best_.distance);
  writer.WriteI64(best_.report_time);
  writer.WriteI64(best_.group_start);
  writer.WriteI64(best_.group_end);
#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  {
    // Round-trip equivalence: the bytes we just produced must restore to a
    // matcher that serializes identically. Re-entrant serialize calls made
    // by the check itself short-circuit inside CheckSnapshotRoundTrip.
    const std::string violation = invariants::CheckSnapshotRoundTrip(*this);
    SPRINGDTW_CHECK(violation.empty()) << violation;
  }
#endif
  return writer.Take();
}

util::StatusOr<SpringMatcher> SpringMatcher::DeserializeState(
    std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kSnapshotMagic) {
    return util::InvalidArgumentError("not a SpringMatcher snapshot");
  }
  if (version != kSnapshotVersion) {
    return util::InvalidArgumentError("unsupported snapshot version");
  }

  SpringOptions options;
  uint8_t distance = 0;
  reader.ReadDouble(&options.epsilon);
  reader.ReadU8(&distance);
  reader.ReadI64(&options.max_match_length);
  reader.ReadI64(&options.min_match_length);
  if (distance > static_cast<uint8_t>(dtw::LocalDistance::kAbsolute)) {
    return util::InvalidArgumentError("snapshot has unknown local distance");
  }
  options.local_distance = static_cast<dtw::LocalDistance>(distance);

  std::vector<double> query;
  if (!reader.ReadDoubleVector(&query) || query.empty()) {
    return util::InvalidArgumentError("snapshot query missing or empty");
  }
  for (const double v : query) {
    if (std::isnan(v)) {
      return util::InvalidArgumentError("snapshot query contains NaN");
    }
  }

  SpringMatcher matcher(std::move(query), options);
  if (!reader.ReadDoubleVector(&matcher.d_prev_) ||
      !reader.ReadInt64Vector(&matcher.s_prev_)) {
    return util::InvalidArgumentError("snapshot rows truncated");
  }
  if (matcher.d_prev_.size() != matcher.query_.size() + 1 ||
      matcher.s_prev_.size() != matcher.query_.size() + 1) {
    return util::InvalidArgumentError("snapshot row size mismatch");
  }
  reader.ReadI64(&matcher.t_);
  reader.ReadBool(&matcher.has_candidate_);
  reader.ReadDouble(&matcher.dmin_);
  reader.ReadI64(&matcher.ts_);
  reader.ReadI64(&matcher.te_);
  reader.ReadI64(&matcher.group_start_);
  reader.ReadI64(&matcher.group_end_);
  reader.ReadBool(&matcher.has_best_);
  reader.ReadI64(&matcher.best_.start);
  reader.ReadI64(&matcher.best_.end);
  reader.ReadDouble(&matcher.best_.distance);
  reader.ReadI64(&matcher.best_.report_time);
  reader.ReadI64(&matcher.best_.group_start);
  reader.ReadI64(&matcher.best_.group_end);
  if (!reader.ok()) {
    return util::InvalidArgumentError("snapshot truncated");
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("snapshot has trailing bytes");
  }
  if (matcher.t_ < 0) {
    return util::InvalidArgumentError("snapshot has negative tick counter");
  }

  // Semantic validation: the structural checks above guarantee shapes; these
  // guarantee the state is one a real matcher could actually have been in,
  // so resuming the stream cannot violate the STWM invariants
  // (docs/CORRECTNESS.md). Crafted/corrupt snapshots that parse but encode
  // impossible state are rejected here rather than poisoning the matcher.
  const int64_t last_tick = matcher.t_ > 0 ? matcher.t_ - 1 : 0;
  if (matcher.d_prev_[0] != 0.0 || matcher.s_prev_[0] != last_tick) {
    return util::InvalidArgumentError("snapshot star row corrupt");
  }
  for (size_t i = 1; i < matcher.d_prev_.size(); ++i) {
    const double d = matcher.d_prev_[i];
    const int64_t s = matcher.s_prev_[i];
    if (std::isnan(d) || d < 0.0 || s < 0 || s > last_tick) {
      return util::InvalidArgumentError("snapshot STWM row corrupt");
    }
  }
  if (matcher.has_candidate_) {
    if (matcher.t_ == 0 || std::isnan(matcher.dmin_) || matcher.dmin_ < 0.0 ||
        matcher.dmin_ > matcher.options_.epsilon || matcher.ts_ < 0 ||
        matcher.ts_ > matcher.te_ || matcher.te_ > last_tick ||
        matcher.group_start_ < 0 || matcher.group_start_ > matcher.ts_ ||
        matcher.group_end_ < matcher.te_ || matcher.group_end_ > last_tick) {
      return util::InvalidArgumentError("snapshot candidate corrupt");
    }
  }
  if (matcher.has_best_) {
    if (matcher.t_ == 0 || std::isnan(matcher.best_.distance) ||
        matcher.best_.distance < 0.0 || matcher.best_.start < 0 ||
        matcher.best_.start > matcher.best_.end ||
        matcher.best_.end > last_tick ||
        matcher.best_.report_time < matcher.best_.end ||
        matcher.best_.report_time > last_tick) {
      return util::InvalidArgumentError("snapshot best-match corrupt");
    }
  }
  return matcher;
}

util::MemoryFootprint SpringMatcher::Footprint() const {
  util::MemoryFootprint fp;
  fp.Add("query", util::VectorBytes(query_));
  fp.Add("stwm_distances",
         util::VectorBytes(d_) + util::VectorBytes(d_prev_));
  fp.Add("stwm_starts", util::VectorBytes(s_) + util::VectorBytes(s_prev_));
  return fp;
}

std::span<const double> SpringMatcher::LastRowDistances() const {
  // Rows were swapped at the end of Update(); the latest row is in prev_.
  return std::span<const double>(d_prev_.data(), d_prev_.size());
}

std::span<const int64_t> SpringMatcher::LastRowStarts() const {
  return std::span<const int64_t>(s_prev_.data(), s_prev_.size());
}

}  // namespace core
}  // namespace springdtw
