#include "core/spring_path.h"

#include <algorithm>
#include <limits>

#include "dtw/local_distance.h"
#include "util/logging.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SpringPathMatcher::SpringPathMatcher(std::vector<double> query,
                                     SpringOptions options)
    : query_(std::move(query)), options_(options) {
  SPRINGDTW_CHECK(!query_.empty());
  const size_t rows = query_.size() + 1;
  d_.assign(rows, kInf);
  d_prev_.assign(rows, kInf);
  s_.assign(rows, 0);
  s_prev_.assign(rows, 0);
  node_.assign(rows, -1);
  node_prev_.assign(rows, -1);
  d_prev_[0] = 0.0;
  dmin_ = kInf;
}

int64_t SpringPathMatcher::NewNode(int64_t parent, int64_t t, int32_t i) {
  int64_t idx;
  if (free_head_ >= 0) {
    idx = free_head_;
    free_head_ = nodes_[static_cast<size_t>(idx)].parent;
  } else {
    idx = static_cast<int64_t>(nodes_.size());
    nodes_.emplace_back();
  }
  PathNode& node = nodes_[static_cast<size_t>(idx)];
  node.t = t;
  node.i = i;
  node.refcount = 1;  // The owning row slot.
  node.parent = parent;
  if (parent >= 0) ++nodes_[static_cast<size_t>(parent)].refcount;
  ++live_nodes_;
  return idx;
}

void SpringPathMatcher::Ref(int64_t node) {
  if (node >= 0) ++nodes_[static_cast<size_t>(node)].refcount;
}

void SpringPathMatcher::Unref(int64_t node) {
  while (node >= 0) {
    PathNode& n = nodes_[static_cast<size_t>(node)];
    if (--n.refcount > 0) break;
    const int64_t parent = n.parent;
    n.parent = free_head_;  // Reuse the parent field as the free-list link.
    free_head_ = node;
    --live_nodes_;
    node = parent;
  }
}

bool SpringPathMatcher::Update(double x, PathMatch* match) {
  const int64_t m = query_length();
  const int64_t t = t_;

  d_[0] = 0.0;
  s_[0] = t;
  for (int64_t i = 1; i <= m; ++i) {
    const size_t si = static_cast<size_t>(i);
    const double d_here = d_[si - 1];
    const double d_up = d_prev_[si];
    const double d_diag = d_prev_[si - 1];
    double dbest = d_here;
    if (d_up < dbest) dbest = d_up;
    if (d_diag < dbest) dbest = d_diag;

    d_[si] = dtw::PointDistance(options_.local_distance, x, query_[si - 1]) +
             dbest;
    int64_t parent;
    if (d_here == dbest) {
      s_[si] = s_[si - 1];
      parent = node_[si - 1];
    } else if (d_up == dbest) {
      s_[si] = s_prev_[si];
      parent = node_prev_[si];
    } else {
      s_[si] = s_prev_[si - 1];
      parent = node_prev_[si - 1];
    }
    // The slot still holds the node of the row from two ticks ago; release
    // it before installing this cell's node.
    Unref(node_[si]);
    node_[si] = NewNode(parent, t, static_cast<int32_t>(i));
  }

  const double dm = d_[static_cast<size_t>(m)];
  const int64_t sm = s_[static_cast<size_t>(m)];

  if (!has_best_ || dm < best_.distance) {
    has_best_ = true;
    best_.start = sm;
    best_.end = t;
    best_.distance = dm;
    best_.report_time = t;
    best_.group_start = sm;
    best_.group_end = t;
  }

  bool reported = false;
  if (has_candidate_ && dmin_ <= options_.epsilon) {
    bool can_report = true;
    for (int64_t i = 1; i <= m; ++i) {
      if (d_[static_cast<size_t>(i)] < dmin_ &&
          s_[static_cast<size_t>(i)] <= te_) {
        can_report = false;
        break;
      }
    }
    if (can_report) {
      if (match != nullptr) FillMatch(t, match);
      reported = true;
      dmin_ = kInf;
      has_candidate_ = false;
      Unref(candidate_node_);
      candidate_node_ = -1;
      for (int64_t i = 1; i <= m; ++i) {
        if (s_[static_cast<size_t>(i)] <= te_) {
          d_[static_cast<size_t>(i)] = kInf;
        }
      }
    }
  }

  const double dm_after = d_[static_cast<size_t>(m)];
  if (dm_after <= options_.epsilon) {
    if (dm_after < dmin_) {
      dmin_ = dm_after;
      ts_ = sm;
      te_ = t;
      if (!has_candidate_) {
        group_start_ = sm;
        group_end_ = t;
      }
      has_candidate_ = true;
      // Pin the candidate's path so row churn cannot reclaim it.
      Unref(candidate_node_);
      candidate_node_ = node_[static_cast<size_t>(m)];
      Ref(candidate_node_);
    }
    if (has_candidate_) {
      group_start_ = std::min(group_start_, sm);
      group_end_ = std::max(group_end_, t);
    }
  }

  std::swap(d_, d_prev_);
  std::swap(s_, s_prev_);
  std::swap(node_, node_prev_);
  ++t_;
  return reported;
}

bool SpringPathMatcher::Flush(PathMatch* match) {
  if (!has_candidate_ || dmin_ > options_.epsilon) return false;
  if (match != nullptr) FillMatch(t_, match);
  has_candidate_ = false;
  dmin_ = kInf;
  Unref(candidate_node_);
  candidate_node_ = -1;
  for (size_t i = 1; i < d_prev_.size(); ++i) {
    if (s_prev_[i] <= te_) d_prev_[i] = kInf;
  }
  return true;
}

void SpringPathMatcher::ExtractPath(int64_t node,
                                    std::vector<dtw::PathStep>* path) const {
  path->clear();
  while (node >= 0) {
    const PathNode& n = nodes_[static_cast<size_t>(node)];
    // Convert the STWM's 1-based query row to a 0-based query index.
    path->emplace_back(n.t, static_cast<int64_t>(n.i) - 1);
    node = n.parent;
  }
  std::reverse(path->begin(), path->end());
}

void SpringPathMatcher::FillMatch(int64_t report_time,
                                  PathMatch* match) const {
  match->match.start = ts_;
  match->match.end = te_;
  match->match.distance = dmin_;
  match->match.report_time = report_time;
  match->match.group_start = group_start_;
  match->match.group_end = group_end_;
  ExtractPath(candidate_node_, &match->path);
}

util::MemoryFootprint SpringPathMatcher::Footprint() const {
  util::MemoryFootprint fp;
  fp.Add("query", util::VectorBytes(query_));
  fp.Add("stwm_distances",
         util::VectorBytes(d_) + util::VectorBytes(d_prev_));
  fp.Add("stwm_starts", util::VectorBytes(s_) + util::VectorBytes(s_prev_));
  fp.Add("cell_nodes",
         util::VectorBytes(node_) + util::VectorBytes(node_prev_));
  fp.Add("path_arena", util::VectorBytes(nodes_));
  return fp;
}

}  // namespace core
}  // namespace springdtw
