#include "gen/warp.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace springdtw {
namespace gen {

TimeWarp RandomTimeWarp(util::Rng& rng, int64_t source_length,
                        int64_t num_knots, double max_stretch) {
  SPRINGDTW_CHECK_GE(source_length, 2);
  SPRINGDTW_CHECK_GE(num_knots, 0);
  SPRINGDTW_CHECK(max_stretch > 0.0 && max_stretch < 1.0);

  TimeWarp warp;
  // Interior knots at sorted distinct source positions.
  std::vector<double> positions;
  positions.push_back(0.0);
  for (int64_t k = 0; k < num_knots; ++k) {
    positions.push_back(
        rng.Uniform(1.0, static_cast<double>(source_length - 1)));
  }
  positions.push_back(static_cast<double>(source_length - 1));
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());

  warp.source = positions;
  warp.target.resize(warp.source.size());
  warp.target[0] = 0.0;
  for (size_t k = 1; k < warp.source.size(); ++k) {
    const double span = warp.source[k] - warp.source[k - 1];
    // Each segment's local rate is scaled by a random factor in
    // [1 - max_stretch, 1 + max_stretch].
    const double rate = rng.Uniform(1.0 - max_stretch, 1.0 + max_stretch);
    warp.target[k] = warp.target[k - 1] + span * rate;
  }
  // Round the final target endpoint so target_length() is well defined.
  warp.target.back() = std::max(1.0, std::round(warp.target.back()));
  return warp;
}

std::vector<double> ApplyTimeWarp(const std::vector<double>& values,
                                  const TimeWarp& warp) {
  SPRINGDTW_CHECK_GE(values.size(), 2u);
  SPRINGDTW_CHECK_EQ(static_cast<double>(values.size() - 1),
                     warp.source.back());
  const int64_t out_length = warp.target_length();
  std::vector<double> out(static_cast<size_t>(out_length));

  // For each output tick, invert the piecewise-linear target->source map.
  size_t segment = 0;
  for (int64_t u = 0; u < out_length; ++u) {
    const double tu = std::min(static_cast<double>(u), warp.target.back());
    while (segment + 2 < warp.target.size() &&
           warp.target[segment + 1] < tu) {
      ++segment;
    }
    const double t0 = warp.target[segment];
    const double t1 = warp.target[segment + 1];
    const double s0 = warp.source[segment];
    const double s1 = warp.source[segment + 1];
    const double frac = t1 > t0 ? (tu - t0) / (t1 - t0) : 0.0;
    const double source_pos = s0 + frac * (s1 - s0);

    const auto lo = static_cast<int64_t>(source_pos);
    const int64_t hi =
        std::min<int64_t>(lo + 1, static_cast<int64_t>(values.size()) - 1);
    const double blend = source_pos - static_cast<double>(lo);
    out[static_cast<size_t>(u)] =
        values[static_cast<size_t>(lo)] * (1.0 - blend) +
        values[static_cast<size_t>(hi)] * blend;
  }
  return out;
}

std::vector<double> RandomlyWarp(util::Rng& rng,
                                 const std::vector<double>& values,
                                 int64_t num_knots, double max_stretch) {
  const TimeWarp warp = RandomTimeWarp(
      rng, static_cast<int64_t>(values.size()), num_knots, max_stretch);
  return ApplyTimeWarp(values, warp);
}

ts::VectorSeries ApplyTimeWarpMultivariate(const ts::VectorSeries& series,
                                           const TimeWarp& warp) {
  SPRINGDTW_CHECK_GE(series.size(), 2);
  ts::VectorSeries out(series.dims(), series.name());
  std::vector<std::vector<double>> channels(
      static_cast<size_t>(series.dims()));
  for (int64_t c = 0; c < series.dims(); ++c) {
    channels[static_cast<size_t>(c)] =
        ApplyTimeWarp(series.Channel(c), warp);
  }
  const auto out_length =
      static_cast<int64_t>(channels[0].size());
  out.Reserve(out_length);
  std::vector<double> row(static_cast<size_t>(series.dims()));
  for (int64_t t = 0; t < out_length; ++t) {
    for (int64_t c = 0; c < series.dims(); ++c) {
      row[static_cast<size_t>(c)] =
          channels[static_cast<size_t>(c)][static_cast<size_t>(t)];
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace gen
}  // namespace springdtw
