#ifndef SPRINGDTW_GEN_PLANTED_H_
#define SPRINGDTW_GEN_PLANTED_H_

#include <cstdint>
#include <string>
#include <vector>

namespace springdtw {
namespace gen {

/// Ground-truth record of an episode a generator planted in its output
/// stream. Tests and benches use these to verify that the matcher finds
/// every planted episode (and nothing wildly off).
struct PlantedEvent {
  /// First tick of the episode (0-based, inclusive).
  int64_t start = 0;
  /// Number of ticks.
  int64_t length = 0;
  /// Generator-specific label (e.g. the motion archetype, or the episode's
  /// sine period rendered as text).
  std::string label;

  int64_t end() const { return start + length - 1; }
};

/// True if [a_start, a_end] and [b_start, b_end] (inclusive) overlap.
inline bool IntervalsOverlap(int64_t a_start, int64_t a_end, int64_t b_start,
                             int64_t b_end) {
  return a_start <= b_end && b_start <= a_end;
}

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_PLANTED_H_
