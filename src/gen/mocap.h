#ifndef SPRINGDTW_GEN_MOCAP_H_
#define SPRINGDTW_GEN_MOCAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gen/planted.h"
#include "ts/vector_series.h"

namespace springdtw {
namespace gen {

/// Motion archetypes of the paper's Section 5.3 mocap experiment.
enum class Motion { kWalking = 0, kJumping = 1, kPunching = 2, kKicking = 3 };

/// Stable display name ("walking", ...).
const char* MotionName(Motion motion);

/// The 7-motion script of the paper's Figure 9:
/// walking, jumping, walking, punching, walking, kicking, punching.
std::vector<Motion> DefaultMotionScript();

/// Surrogate for the CMU motion-capture data: k-dimensional streams where
/// each motion archetype has a characteristic multi-channel trajectory.
/// Instances of the same archetype are time-rescaled (speed factor) and
/// re-noised renditions of a canonical pattern, so matching them requires
/// exactly the time-warping robustness the experiment demonstrates.
struct MocapOptions {
  /// Number of channels (the paper uses k = 62 marker velocities).
  int64_t dims = 62;
  /// Canonical pattern length in ticks (~4 s at 60 samples/s).
  int64_t canonical_length = 240;
  /// Each rendered instance's speed factor is drawn from [min, max]; the
  /// instance length is canonical_length / speed.
  double min_speed = 0.8;
  double max_speed = 1.3;
  /// Additive per-channel Gaussian noise sigma.
  double noise_sigma = 0.05;
  /// PRNG seed.
  uint64_t seed = 5;
};

struct MocapData {
  /// One continuous multi-channel sequence containing the scripted motions.
  ts::VectorSeries stream;
  /// One query per archetype (independently rendered instance), keyed by
  /// MotionName().
  std::vector<std::pair<std::string, ts::VectorSeries>> queries;
  /// Where each scripted motion sits in the stream; label = MotionName().
  std::vector<PlantedEvent> events;
};

/// Generates the stream for `script` (defaults to DefaultMotionScript()
/// when empty) plus one query per archetype appearing in the script.
MocapData GenerateMocap(const MocapOptions& options,
                        std::vector<Motion> script = {});

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_MOCAP_H_
