#ifndef SPRINGDTW_GEN_MASKED_CHIRP_H_
#define SPRINGDTW_GEN_MASKED_CHIRP_H_

#include <cstdint>
#include <vector>

#include "gen/planted.h"
#include "ts/series.h"

namespace springdtw {
namespace gen {

/// Parameters for the MaskedChirp synthetic workload (paper Section 5.1):
/// "discontinuous sine waves with white noise", where "the period of each
/// disjoint sine wave" varies. Flat noisy stretches ("silence") separate the
/// sine episodes ("sound"), mimicking voice data.
struct MaskedChirpOptions {
  /// Total stream length in ticks.
  int64_t length = 20000;
  /// Number of sine episodes to plant.
  int64_t num_episodes = 4;
  /// Episode length is drawn uniformly from [min, max] ticks.
  int64_t min_episode_length = 2000;
  int64_t max_episode_length = 4000;
  /// Sine period (ticks per cycle) is drawn uniformly from [min, max], so
  /// episodes are time-stretched versions of each other.
  double min_period = 150.0;
  double max_period = 450.0;
  /// Sine amplitude.
  double amplitude = 1.0;
  /// Standard deviation of the additive white noise (everywhere).
  double noise_sigma = 0.05;
  /// PRNG seed.
  uint64_t seed = 1;
};

/// A generated MaskedChirp dataset: the stream, the query sequence (one
/// clean-period sine episode, independently rendered), and where the sound
/// episodes were planted.
struct MaskedChirpData {
  ts::Series stream;
  ts::Series query;
  std::vector<PlantedEvent> events;
};

/// Generates the dataset. Episode placement is deterministic in the seed.
/// The query is `query_length` ticks of a mid-range-period sine with the same
/// amplitude and a light noise floor, Hann-enveloped like the episodes.
MaskedChirpData GenerateMaskedChirp(const MaskedChirpOptions& options,
                                    int64_t query_length = 2048);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_MASKED_CHIRP_H_
