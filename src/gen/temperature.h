#ifndef SPRINGDTW_GEN_TEMPERATURE_H_
#define SPRINGDTW_GEN_TEMPERATURE_H_

#include <cstdint>
#include <vector>

#include "gen/planted.h"
#include "ts/series.h"

namespace springdtw {
namespace gen {

/// Surrogate for the paper's *Critter* temperature sensor data (Fig. 6(b)):
/// readings roughly once per minute, values 20–32 °C, "many missing values",
/// and a handful of multi-day episodes where the temperature "fluctuates from
/// cool to hot" — the pattern the query describes.
struct TemperatureOptions {
  /// Total stream length in ticks (minutes).
  int64_t length = 30000;
  /// Ticks per simulated day (the diurnal period).
  int64_t day_length = 1440;
  /// Baseline temperature (deg C) and diurnal swing amplitude.
  double base_celsius = 24.0;
  double diurnal_amplitude = 1.5;
  /// Slow "weather" drift: random-walk step sigma and smoothing half-window.
  double weather_step_sigma = 0.02;
  int64_t weather_half_window = 720;
  /// Measurement noise sigma.
  double noise_sigma = 0.3;
  /// Number of warm-up episodes (cool -> hot -> cool, spanning ~2-3 days).
  int64_t num_episodes = 2;
  /// Episode length range, in ticks.
  int64_t min_episode_length = 3000;
  int64_t max_episode_length = 4500;
  /// Peak extra warmth during an episode (deg C above baseline trend).
  double episode_amplitude = 6.0;
  /// Fraction of readings dropped (missing); dropouts come in short bursts,
  /// as real sensor outages do.
  double missing_fraction = 0.02;
  /// Mean dropout-burst length in ticks.
  int64_t mean_gap_length = 10;
  /// PRNG seed.
  uint64_t seed = 2;
};

struct TemperatureData {
  /// The raw stream, *including* NaN missing readings.
  ts::Series stream;
  /// Query: one canonical warm-up episode (no missing values).
  ts::Series query;
  std::vector<PlantedEvent> events;
};

/// Generates the dataset. The query is an independently rendered warm-up
/// episode of `query_length` ticks.
TemperatureData GenerateTemperature(const TemperatureOptions& options,
                                    int64_t query_length = 3000);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_TEMPERATURE_H_
