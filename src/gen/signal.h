#ifndef SPRINGDTW_GEN_SIGNAL_H_
#define SPRINGDTW_GEN_SIGNAL_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace springdtw {
namespace gen {

/// Samples `length` points of amplitude*sin(2*pi*t/period + phase).
/// Requires period > 0.
std::vector<double> Sine(int64_t length, double period, double amplitude,
                         double phase = 0.0);

/// `length` i.i.d. Gaussian(0, sigma) samples.
std::vector<double> GaussianNoise(util::Rng& rng, int64_t length,
                                  double sigma);

/// Adds Gaussian(0, sigma) noise to `values` in place.
void AddGaussianNoise(util::Rng& rng, std::vector<double>& values,
                      double sigma);

/// Random walk: x_0 = start, x_t = x_{t-1} + Gaussian(0, step_sigma).
std::vector<double> RandomWalk(util::Rng& rng, int64_t length, double start,
                               double step_sigma);

/// Centered moving average with the given half-window (window = 2*half + 1),
/// truncated at the edges. Used to produce slow "weather" drifts.
std::vector<double> MovingAverage(const std::vector<double>& values,
                                  int64_t half_window);

/// Linear-interpolation resampling of `values` to `new_length` points
/// (endpoints preserved). This is how generators render time-stretched /
/// compressed instances of a pattern. Requires values.size() >= 2 and
/// new_length >= 2.
std::vector<double> Resample(const std::vector<double>& values,
                             int64_t new_length);

/// Hann window of the given length, in [0, 1]; used as an episode envelope
/// so planted patterns ramp in and out smoothly.
std::vector<double> HannWindow(int64_t length);

/// Element-wise product, in place. Requires equal sizes.
void MultiplyInPlace(std::vector<double>& values,
                     const std::vector<double>& factors);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_SIGNAL_H_
