#include "gen/masked_chirp.h"

#include <algorithm>

#include "gen/signal.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace springdtw {
namespace gen {
namespace {

// Renders one "sound" episode: Hann-enveloped sine of the given period.
std::vector<double> RenderEpisode(int64_t length, double period,
                                  double amplitude) {
  std::vector<double> episode = Sine(length, period, amplitude);
  MultiplyInPlace(episode, HannWindow(length));
  return episode;
}

}  // namespace

MaskedChirpData GenerateMaskedChirp(const MaskedChirpOptions& options,
                                    int64_t query_length) {
  SPRINGDTW_CHECK_GE(options.num_episodes, 0);
  SPRINGDTW_CHECK_GE(options.min_episode_length, 2);
  SPRINGDTW_CHECK_LE(options.min_episode_length, options.max_episode_length);
  SPRINGDTW_CHECK_GT(options.min_period, 0.0);
  SPRINGDTW_CHECK_LE(options.min_period, options.max_period);

  util::Rng rng(options.seed);
  MaskedChirpData data;
  data.stream = ts::Series(std::vector<double>(
                               static_cast<size_t>(options.length), 0.0),
                           "masked_chirp");

  // Choose non-overlapping episode placements by dividing the stream into
  // num_episodes equal slots and placing one episode per slot with jitter.
  // This matches the paper's picture: well-separated sound regions.
  const int64_t slots = std::max<int64_t>(options.num_episodes, 1);
  const int64_t slot_width = options.length / slots;
  for (int64_t e = 0; e < options.num_episodes; ++e) {
    const int64_t max_len =
        std::min(options.max_episode_length, slot_width - 2);
    if (max_len < options.min_episode_length) {
      SPRINGDTW_LOG(Warning) << "slot too small for episode " << e
                             << "; skipping";
      continue;
    }
    const int64_t length =
        rng.UniformInt(options.min_episode_length, max_len);
    const int64_t slot_begin = e * slot_width;
    const int64_t start =
        slot_begin + rng.UniformInt(0, slot_width - length - 1);
    const double period = rng.Uniform(options.min_period, options.max_period);

    const std::vector<double> episode =
        RenderEpisode(length, period, options.amplitude);
    for (int64_t t = 0; t < length; ++t) {
      data.stream[start + t] += episode[static_cast<size_t>(t)];
    }
    data.events.push_back(PlantedEvent{
        start, length, util::StrFormat("sine(period=%.1f)", period)});
  }

  // White noise over the whole stream ("flat and noisy parts").
  AddGaussianNoise(rng, data.stream.values(), options.noise_sigma);

  // Query: an independently rendered episode at the mid period, with its own
  // light noise, so it is similar to — but not a copy of — any planted one.
  const double query_period = 0.5 * (options.min_period + options.max_period);
  std::vector<double> query =
      RenderEpisode(query_length, query_period, options.amplitude);
  util::Rng query_rng = rng.Fork(0x71);
  AddGaussianNoise(query_rng, query, options.noise_sigma);
  data.query = ts::Series(std::move(query), "masked_chirp_query");
  return data;
}

}  // namespace gen
}  // namespace springdtw
