#include "gen/seismic.h"

#include <algorithm>
#include <cmath>

#include "gen/signal.h"
#include "util/logging.h"
#include "util/random.h"

namespace springdtw {
namespace gen {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Adds one decaying-oscillation spike ("ringdown") into `values` at `start`.
void AddSpike(std::vector<double>& values, int64_t start, double amplitude,
              double ring_period, double decay_ticks) {
  const int64_t n = static_cast<int64_t>(values.size());
  const auto extent = static_cast<int64_t>(6.0 * decay_ticks);
  for (int64_t t = 0; t < extent && start + t < n; ++t) {
    if (start + t < 0) continue;
    const double dt = static_cast<double>(t);
    values[static_cast<size_t>(start + t)] +=
        amplitude * std::exp(-dt / decay_ticks) *
        std::sin(kTwoPi * dt / ring_period);
  }
}

// Renders an event (spike train) into `values` beginning at `start`.
// `interval_scale[k]` stretches the gap before spike k (index 0 unused).
void RenderEvent(std::vector<double>& values, int64_t start,
                 const SeismicOptions& options,
                 const std::vector<double>& interval_scales) {
  const int64_t nominal_gap =
      options.event_length / std::max<int64_t>(options.spikes_per_event, 1);
  int64_t pos = start;
  double amplitude = options.peak_amplitude;
  for (int64_t k = 0; k < options.spikes_per_event; ++k) {
    AddSpike(values, pos, amplitude, options.ring_period,
             options.ring_decay_ticks);
    const double scale =
        k + 1 < static_cast<int64_t>(interval_scales.size())
            ? interval_scales[static_cast<size_t>(k + 1)]
            : 1.0;
    pos += static_cast<int64_t>(static_cast<double>(nominal_gap) * scale);
    amplitude *= options.spike_decay;
  }
}

}  // namespace

SeismicData GenerateSeismic(const SeismicOptions& options) {
  SPRINGDTW_CHECK_GE(options.num_events, 0);
  SPRINGDTW_CHECK_GT(options.event_length, 0);
  util::Rng rng(options.seed);
  SeismicData data;

  // Query: nominal intervals (all scales 1.0), light noise.
  {
    std::vector<double> query(static_cast<size_t>(options.event_length), 0.0);
    const std::vector<double> nominal(
        static_cast<size_t>(options.spikes_per_event + 1), 1.0);
    RenderEvent(query, 0, options, nominal);
    util::Rng query_rng = rng.Fork(0x73);
    AddGaussianNoise(query_rng, query, options.background_sigma);
    data.query = ts::Series(std::move(query), "seismic_query");
  }

  // Stream: background noise + jittered-interval copies of the event.
  std::vector<double> values(static_cast<size_t>(options.length), 0.0);
  const int64_t slots = std::max<int64_t>(options.num_events, 1);
  const int64_t slot_width = options.length / slots;
  for (int64_t e = 0; e < options.num_events; ++e) {
    // The jittered event can be up to (1 + jitter) times the nominal length.
    const auto max_span = static_cast<int64_t>(
        static_cast<double>(options.event_length) *
        (1.0 + options.interval_jitter)) + 1;
    if (slot_width <= max_span + 2) {
      SPRINGDTW_LOG(Warning) << "slot too small for seismic event " << e;
      continue;
    }
    const int64_t start =
        e * slot_width + rng.UniformInt(0, slot_width - max_span - 1);
    std::vector<double> scales(
        static_cast<size_t>(options.spikes_per_event + 1), 1.0);
    for (double& s : scales) {
      s = rng.Uniform(1.0 - options.interval_jitter,
                      1.0 + options.interval_jitter);
    }
    RenderEvent(values, start, options, scales);
    data.events.push_back(PlantedEvent{start, max_span, "explosion"});
  }
  AddGaussianNoise(rng, values, options.background_sigma);
  data.stream = ts::Series(std::move(values), "seismic");
  return data;
}

}  // namespace gen
}  // namespace springdtw
