#ifndef SPRINGDTW_GEN_SEISMIC_H_
#define SPRINGDTW_GEN_SEISMIC_H_

#include <cstdint>
#include <vector>

#include "gen/planted.h"
#include "ts/series.h"

namespace springdtw {
namespace gen {

/// Surrogate for the paper's *Kursk* seismic recordings (Fig. 6(c)): a quiet
/// background with one (or a few) explosion events, each a train of large
/// decaying-oscillation spikes whose inter-spike intervals differ slightly
/// between recordings ("due to differences in environmental conditions").
struct SeismicOptions {
  /// Total stream length in ticks.
  int64_t length = 50000;
  /// Background noise sigma (instrument noise).
  double background_sigma = 120.0;
  /// Number of explosion events planted in the stream.
  int64_t num_events = 1;
  /// Event length in ticks (the paper's matched event spans ~4000 ticks).
  int64_t event_length = 4000;
  /// Number of large spikes per event.
  int64_t spikes_per_event = 3;
  /// Peak amplitude of the first (largest) spike.
  double peak_amplitude = 9000.0;
  /// Each subsequent spike is scaled by this factor (echoes decay).
  double spike_decay = 0.65;
  /// Oscillation period of each spike's ringdown, in ticks.
  double ring_period = 40.0;
  /// Exponential decay constant of each spike's envelope, in ticks.
  double ring_decay_ticks = 200.0;
  /// Relative jitter applied to inter-spike intervals in the stream event
  /// versus the query (the property SPRING must be robust to).
  double interval_jitter = 0.15;
  /// PRNG seed.
  uint64_t seed = 3;
};

struct SeismicData {
  ts::Series stream;
  /// Query: the canonical event (nominal inter-spike intervals).
  ts::Series query;
  std::vector<PlantedEvent> events;
};

/// Generates the dataset. The planted event(s) reuse the query's spike
/// pattern but with jittered inter-spike intervals and fresh noise.
SeismicData GenerateSeismic(const SeismicOptions& options);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_SEISMIC_H_
