#include "gen/signal.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace springdtw {
namespace gen {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

std::vector<double> Sine(int64_t length, double period, double amplitude,
                         double phase) {
  SPRINGDTW_CHECK_GT(period, 0.0);
  std::vector<double> out(static_cast<size_t>(length));
  for (int64_t t = 0; t < length; ++t) {
    out[static_cast<size_t>(t)] =
        amplitude * std::sin(kTwoPi * static_cast<double>(t) / period + phase);
  }
  return out;
}

std::vector<double> GaussianNoise(util::Rng& rng, int64_t length,
                                  double sigma) {
  std::vector<double> out(static_cast<size_t>(length));
  for (double& x : out) x = rng.Gaussian(0.0, sigma);
  return out;
}

void AddGaussianNoise(util::Rng& rng, std::vector<double>& values,
                      double sigma) {
  for (double& x : values) x += rng.Gaussian(0.0, sigma);
}

std::vector<double> RandomWalk(util::Rng& rng, int64_t length, double start,
                               double step_sigma) {
  std::vector<double> out(static_cast<size_t>(length));
  double x = start;
  for (int64_t t = 0; t < length; ++t) {
    out[static_cast<size_t>(t)] = x;
    x += rng.Gaussian(0.0, step_sigma);
  }
  return out;
}

std::vector<double> MovingAverage(const std::vector<double>& values,
                                  int64_t half_window) {
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<double> out(values.size());
  // Prefix sums for O(n) averaging.
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i + 1)] =
        prefix[static_cast<size_t>(i)] + values[static_cast<size_t>(i)];
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - half_window);
    const int64_t hi = std::min<int64_t>(n - 1, i + half_window);
    out[static_cast<size_t>(i)] =
        (prefix[static_cast<size_t>(hi + 1)] - prefix[static_cast<size_t>(lo)]) /
        static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> Resample(const std::vector<double>& values,
                             int64_t new_length) {
  SPRINGDTW_CHECK_GE(static_cast<int64_t>(values.size()), 2);
  SPRINGDTW_CHECK_GE(new_length, 2);
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<double> out(static_cast<size_t>(new_length));
  const double step =
      static_cast<double>(n - 1) / static_cast<double>(new_length - 1);
  for (int64_t i = 0; i < new_length; ++i) {
    const double pos = static_cast<double>(i) * step;
    const auto lo = static_cast<int64_t>(pos);
    const int64_t hi = std::min<int64_t>(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    out[static_cast<size_t>(i)] =
        values[static_cast<size_t>(lo)] * (1.0 - frac) +
        values[static_cast<size_t>(hi)] * frac;
  }
  return out;
}

std::vector<double> HannWindow(int64_t length) {
  std::vector<double> out(static_cast<size_t>(length));
  if (length == 1) {
    out[0] = 1.0;
    return out;
  }
  for (int64_t t = 0; t < length; ++t) {
    out[static_cast<size_t>(t)] =
        0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(t) /
                             static_cast<double>(length - 1));
  }
  return out;
}

void MultiplyInPlace(std::vector<double>& values,
                     const std::vector<double>& factors) {
  SPRINGDTW_CHECK_EQ(values.size(), factors.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] *= factors[i];
}

}  // namespace gen
}  // namespace springdtw
