#include "gen/sunspots.h"

#include <algorithm>
#include <cmath>

#include "gen/signal.h"
#include "util/logging.h"
#include "util/random.h"

namespace springdtw {
namespace gen {
namespace {

constexpr double kPi = 3.1415926535897932384626433832795;

// The active phase of a cycle occupies the middle `kActiveFraction` of it;
// counts follow a squared half-sine bump over the active phase (sharp rise,
// slower decline is approximated well enough by the symmetric bump for
// matching purposes).
constexpr double kActiveFraction = 0.6;

// Renders the deterministic shape of one cycle (length ticks, given peak).
std::vector<double> RenderCycleShape(int64_t length, double peak,
                                     double floor_level) {
  std::vector<double> out(static_cast<size_t>(length), floor_level);
  const auto active_len =
      static_cast<int64_t>(kActiveFraction * static_cast<double>(length));
  const int64_t active_start = (length - active_len) / 2;
  for (int64_t t = 0; t < active_len; ++t) {
    const double phase =
        static_cast<double>(t) / static_cast<double>(active_len);
    const double bump = std::sin(kPi * phase);
    out[static_cast<size_t>(active_start + t)] += peak * bump * bump;
  }
  return out;
}

}  // namespace

SunspotData GenerateSunspots(const SunspotOptions& options,
                             int64_t query_length) {
  SPRINGDTW_CHECK_GE(options.min_cycle_length, 10);
  SPRINGDTW_CHECK_LE(options.min_cycle_length, options.max_cycle_length);
  util::Rng rng(options.seed);
  SunspotData data;

  std::vector<double> values;
  values.reserve(static_cast<size_t>(options.length));
  while (static_cast<int64_t>(values.size()) < options.length) {
    const int64_t cycle_len =
        rng.UniformInt(options.min_cycle_length, options.max_cycle_length);
    const double peak = rng.Uniform(options.min_peak, options.max_peak);
    std::vector<double> cycle =
        RenderCycleShape(cycle_len, peak, options.floor_level);

    // Mark the active phase as a planted event (clipped to stream bounds
    // below, after we know the cycle actually fits).
    const auto active_len =
        static_cast<int64_t>(kActiveFraction * static_cast<double>(cycle_len));
    const int64_t active_start =
        static_cast<int64_t>(values.size()) + (cycle_len - active_len) / 2;

    // Burstiness: multiplicative lognormal jitter plus additive noise,
    // clamped to non-negative counts.
    for (double& x : cycle) {
      x *= std::exp(rng.Gaussian(0.0, options.burst_sigma));
      x += rng.Gaussian(0.0, options.noise_sigma);
      x = std::max(0.0, x);
    }
    values.insert(values.end(), cycle.begin(), cycle.end());
    if (active_start + active_len <= options.length) {
      data.events.push_back(PlantedEvent{active_start, active_len, "cycle"});
    }
  }
  values.resize(static_cast<size_t>(options.length));
  data.stream = ts::Series(std::move(values), "sunspots");

  // Query: one clean active phase at nominal mid peak, light burstiness.
  const double mid_peak = 0.5 * (options.min_peak + options.max_peak);
  std::vector<double> query(static_cast<size_t>(query_length), 0.0);
  for (int64_t t = 0; t < query_length; ++t) {
    const double phase =
        static_cast<double>(t) / static_cast<double>(query_length);
    const double bump = std::sin(kPi * phase);
    query[static_cast<size_t>(t)] =
        options.floor_level + mid_peak * bump * bump;
  }
  util::Rng query_rng = rng.Fork(0x74);
  for (double& x : query) {
    x *= std::exp(query_rng.Gaussian(0.0, 0.5 * options.burst_sigma));
    x = std::max(0.0, x);
  }
  data.query = ts::Series(std::move(query), "sunspots_query");
  return data;
}

}  // namespace gen
}  // namespace springdtw
