#ifndef SPRINGDTW_GEN_SUNSPOTS_H_
#define SPRINGDTW_GEN_SUNSPOTS_H_

#include <cstdint>
#include <vector>

#include "gen/planted.h"
#include "ts/series.h"

namespace springdtw {
namespace gen {

/// Surrogate for the paper's *Sunspots* dataset (Fig. 6(d)): daily sunspot
/// counts rising and falling in cycles of varying length ("between 9.5 and
/// 11 years, averaging about 10.8") and varying peak amplitude, with bursty
/// day-to-day variation. Counts are non-negative.
struct SunspotOptions {
  /// Total stream length in ticks (days).
  int64_t length = 15000;
  /// Nominal cycle length range, in ticks. With ~365 ticks per "year" the
  /// paper's 9.5–11-year cycles would be 3468–4015 days; we default to a
  /// compressed scale so several full cycles fit in the stream.
  int64_t min_cycle_length = 2800;
  int64_t max_cycle_length = 3600;
  /// Peak count range per cycle (cycles differ in strength).
  double min_peak = 180.0;
  double max_peak = 280.0;
  /// Multiplicative burstiness of daily counts (lognormal-ish sigma).
  double burst_sigma = 0.25;
  /// Additive count noise sigma.
  double noise_sigma = 6.0;
  /// Quiet-floor count level between cycles.
  double floor_level = 5.0;
  /// PRNG seed.
  uint64_t seed = 4;
};

struct SunspotData {
  ts::Series stream;
  /// Query: one canonical cycle at the nominal mid length and mid peak.
  ts::Series query;
  /// One planted event per *active* (bursty) cycle phase.
  std::vector<PlantedEvent> events;
};

/// Generates the dataset. The stream is a back-to-back sequence of cycles,
/// each with its own length and peak; events mark each cycle's active phase.
/// The query is an independently rendered cycle of `query_length` ticks.
SunspotData GenerateSunspots(const SunspotOptions& options,
                             int64_t query_length = 2000);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_SUNSPOTS_H_
