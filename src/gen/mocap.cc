#include "gen/mocap.h"

#include <algorithm>
#include <cmath>

#include "gen/signal.h"
#include "util/logging.h"
#include "util/random.h"

namespace springdtw {
namespace gen {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Base gait frequency (cycles per canonical pattern) per archetype. These
// differ enough that archetypes are mutually dissimilar under DTW.
double BaseCycles(Motion motion) {
  switch (motion) {
    case Motion::kWalking:
      return 4.0;
    case Motion::kJumping:
      return 2.0;
    case Motion::kPunching:
      return 6.0;
    case Motion::kKicking:
      return 3.0;
  }
  return 4.0;
}

// Renders the canonical pattern of `motion` for one channel. The per-channel
// harmonic mixture is a deterministic function of (seed, motion, channel),
// so every instance of the archetype shares the same underlying trajectory.
std::vector<double> CanonicalChannel(uint64_t seed, Motion motion,
                                     int64_t channel, int64_t length) {
  util::Rng rng(seed ^ (static_cast<uint64_t>(motion) * 0x9e3779b97f4a7c15ULL)
                ^ (static_cast<uint64_t>(channel) * 0xbf58476d1ce4e5b9ULL));
  const double cycles = BaseCycles(motion);
  std::vector<double> out(static_cast<size_t>(length), 0.0);
  // Three harmonics with channel-specific amplitudes and phases.
  for (int h = 1; h <= 3; ++h) {
    const double amp = rng.Uniform(0.2, 1.0) / static_cast<double>(h);
    const double phase = rng.Uniform(0.0, kTwoPi);
    for (int64_t t = 0; t < length; ++t) {
      out[static_cast<size_t>(t)] +=
          amp * std::sin(kTwoPi * cycles * static_cast<double>(h) *
                             static_cast<double>(t) /
                             static_cast<double>(length) +
                         phase);
    }
  }
  // Transient motions get a Hann envelope (burst); walking stays cyclic.
  if (motion != Motion::kWalking) {
    MultiplyInPlace(out, HannWindow(length));
  }
  return out;
}

// Renders one instance of `motion`: canonical pattern time-rescaled by
// `speed` and re-noised, across all channels.
ts::VectorSeries RenderInstance(const MocapOptions& options, Motion motion,
                                double speed, util::Rng& noise_rng) {
  const auto length = std::max<int64_t>(
      2, static_cast<int64_t>(
             static_cast<double>(options.canonical_length) / speed));
  // Build per-channel resampled trajectories, then interleave into rows.
  std::vector<std::vector<double>> channels(
      static_cast<size_t>(options.dims));
  for (int64_t c = 0; c < options.dims; ++c) {
    std::vector<double> canonical = CanonicalChannel(
        options.seed, motion, c, options.canonical_length);
    channels[static_cast<size_t>(c)] = Resample(canonical, length);
    AddGaussianNoise(noise_rng, channels[static_cast<size_t>(c)],
                     options.noise_sigma);
  }
  ts::VectorSeries out(options.dims, MotionName(motion));
  out.Reserve(length);
  std::vector<double> row(static_cast<size_t>(options.dims));
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t c = 0; c < options.dims; ++c) {
      row[static_cast<size_t>(c)] =
          channels[static_cast<size_t>(c)][static_cast<size_t>(t)];
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace

const char* MotionName(Motion motion) {
  switch (motion) {
    case Motion::kWalking:
      return "walking";
    case Motion::kJumping:
      return "jumping";
    case Motion::kPunching:
      return "punching";
    case Motion::kKicking:
      return "kicking";
  }
  return "unknown";
}

std::vector<Motion> DefaultMotionScript() {
  return {Motion::kWalking, Motion::kJumping,  Motion::kWalking,
          Motion::kPunching, Motion::kWalking, Motion::kKicking,
          Motion::kPunching};
}

MocapData GenerateMocap(const MocapOptions& options,
                        std::vector<Motion> script) {
  SPRINGDTW_CHECK_GE(options.dims, 1);
  SPRINGDTW_CHECK_GE(options.canonical_length, 4);
  if (script.empty()) script = DefaultMotionScript();

  util::Rng rng(options.seed);
  MocapData data;
  data.stream = ts::VectorSeries(options.dims, "mocap");

  for (const Motion motion : script) {
    const double speed = rng.Uniform(options.min_speed, options.max_speed);
    util::Rng noise_rng = rng.Fork(rng.NextUint64());
    const ts::VectorSeries instance =
        RenderInstance(options, motion, speed, noise_rng);
    const int64_t start = data.stream.size();
    for (int64_t t = 0; t < instance.size(); ++t) {
      data.stream.AppendRow(instance.Row(t));
    }
    data.events.push_back(
        PlantedEvent{start, instance.size(), MotionName(motion)});
  }

  // One query per archetype in the script, in first-appearance order, each
  // rendered with its own speed and noise (so it is not a stream snippet).
  std::vector<Motion> seen;
  for (const Motion motion : script) {
    if (std::find(seen.begin(), seen.end(), motion) != seen.end()) continue;
    seen.push_back(motion);
    const double speed = rng.Uniform(options.min_speed, options.max_speed);
    util::Rng noise_rng = rng.Fork(rng.NextUint64());
    data.queries.emplace_back(
        MotionName(motion), RenderInstance(options, motion, speed, noise_rng));
  }
  return data;
}

}  // namespace gen
}  // namespace springdtw
