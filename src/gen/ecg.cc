#include "gen/ecg.h"

#include <algorithm>
#include <cmath>

#include "gen/signal.h"
#include "util/logging.h"
#include "util/random.h"

namespace springdtw {
namespace gen {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Gaussian bump helper: amplitude * exp(-(x - center)^2 / (2 width^2)).
double Bump(double x, double center, double width, double amplitude) {
  const double d = (x - center) / width;
  return amplitude * std::exp(-0.5 * d * d);
}

// One beat sampled at `length` ticks. Phase in [0, 1): P wave ~0.18,
// QRS ~0.4 (Q dip, R spike, S dip), T wave ~0.62.
// An anomalous ("ectopic") beat has no P wave and a wide, weak R.
std::vector<double> RenderBeat(int64_t length, double r_amplitude,
                               bool anomalous) {
  std::vector<double> beat(static_cast<size_t>(length), 0.0);
  for (int64_t t = 0; t < length; ++t) {
    const double phase =
        static_cast<double>(t) / static_cast<double>(length);
    double v = 0.0;
    if (!anomalous) {
      v += Bump(phase, 0.18, 0.035, 0.18 * r_amplitude);   // P
      v += Bump(phase, 0.385, 0.012, -0.22 * r_amplitude); // Q
      v += Bump(phase, 0.40, 0.009, r_amplitude);          // R
      v += Bump(phase, 0.415, 0.012, -0.28 * r_amplitude); // S
      v += Bump(phase, 0.62, 0.055, 0.32 * r_amplitude);   // T
    } else {
      v += Bump(phase, 0.40, 0.045, 0.55 * r_amplitude);   // Wide weak R.
      v += Bump(phase, 0.47, 0.030, -0.30 * r_amplitude);  // Deep S.
      v += Bump(phase, 0.66, 0.070, -0.25 * r_amplitude);  // Inverted T.
    }
    beat[static_cast<size_t>(t)] = v;
  }
  return beat;
}

}  // namespace

EcgData GenerateEcg(const EcgOptions& options) {
  SPRINGDTW_CHECK_GE(options.length, 10);
  SPRINGDTW_CHECK_GT(options.beat_period, 10.0);
  util::Rng rng(options.seed);
  EcgData data;

  // Decide which beat ordinals are anomalous (spread across the stream,
  // never the first few so the rhythm establishes itself).
  const auto approx_beats = static_cast<int64_t>(
      static_cast<double>(options.length) / options.beat_period);
  std::vector<int64_t> anomaly_beats;
  for (int64_t a = 0; a < options.num_anomalies; ++a) {
    const int64_t slot = approx_beats / std::max<int64_t>(
        options.num_anomalies, 1);
    anomaly_beats.push_back(
        std::min(approx_beats - 2,
                 3 + a * slot + rng.UniformInt(0, std::max<int64_t>(
                                                       1, slot - 4))));
  }

  std::vector<double> values;
  values.reserve(static_cast<size_t>(options.length));
  // Smooth heart-rate variability: a slowly varying rate factor.
  double rate_phase = rng.Uniform(0.0, kTwoPi);
  int64_t beat_index = 0;
  while (static_cast<int64_t>(values.size()) < options.length) {
    const double rate =
        1.0 + options.rate_variability *
                  std::sin(rate_phase + 0.7 * static_cast<double>(
                                                  beat_index));
    const auto beat_length = std::max<int64_t>(
        20, static_cast<int64_t>(options.beat_period * rate));
    const bool anomalous =
        std::find(anomaly_beats.begin(), anomaly_beats.end(), beat_index) !=
        anomaly_beats.end();
    const std::vector<double> beat =
        RenderBeat(beat_length, options.r_amplitude, anomalous);
    if (anomalous) {
      data.anomalies.push_back(PlantedEvent{
          static_cast<int64_t>(values.size()), beat_length, "ectopic"});
    }
    values.insert(values.end(), beat.begin(), beat.end());
    ++beat_index;
  }
  values.resize(static_cast<size_t>(options.length));

  // Baseline wander + measurement noise.
  for (size_t t = 0; t < values.size(); ++t) {
    values[t] += options.wander_amplitude *
                 std::sin(kTwoPi * static_cast<double>(t) /
                          (17.3 * options.beat_period));
  }
  AddGaussianNoise(rng, values, options.noise_sigma);
  data.stream = ts::Series(std::move(values), "ecg");
  // Drop anomalies that fell off the truncated end.
  while (!data.anomalies.empty() &&
         data.anomalies.back().end() >= options.length) {
    data.anomalies.pop_back();
  }

  const auto nominal = static_cast<int64_t>(options.beat_period);
  data.normal_beat = ts::Series(
      RenderBeat(nominal, options.r_amplitude, /*anomalous=*/false),
      "ecg_normal_beat");
  data.anomalous_beat = ts::Series(
      RenderBeat(nominal, options.r_amplitude, /*anomalous=*/true),
      "ecg_ectopic_beat");
  return data;
}

}  // namespace gen
}  // namespace springdtw
