#ifndef SPRINGDTW_GEN_ECG_H_
#define SPRINGDTW_GEN_ECG_H_

#include <cstdint>
#include <vector>

#include "gen/planted.h"
#include "ts/series.h"

namespace springdtw {
namespace gen {

/// Synthetic ECG-like signal generator, for the bio-medical monitoring
/// application the paper's abstract motivates (EKG/ECG). Each heartbeat is
/// a stylized P-QRS-T morphology; the inter-beat interval varies smoothly
/// (heart-rate variability), which is exactly the time-axis scaling DTW
/// absorbs. Optionally plants "anomalous" beats — widened, low-amplitude
/// QRS complexes resembling ectopic beats — as ground-truth events.
struct EcgOptions {
  /// Total stream length in ticks (~250 ticks/s nominal).
  int64_t length = 30000;
  /// Nominal beat period in ticks and its smooth variability (fraction).
  double beat_period = 220.0;
  double rate_variability = 0.15;
  /// QRS spike amplitude (R peak); P and T waves scale off it.
  double r_amplitude = 1.0;
  /// Measurement noise sigma.
  double noise_sigma = 0.02;
  /// Baseline wander amplitude (slow sinusoidal drift).
  double wander_amplitude = 0.05;
  /// Number of anomalous (ectopic-like) beats to plant.
  int64_t num_anomalies = 3;
  /// PRNG seed.
  uint64_t seed = 6;
};

struct EcgData {
  ts::Series stream;
  /// Query: one clean normal beat at the nominal period.
  ts::Series normal_beat;
  /// Query: one clean anomalous beat.
  ts::Series anomalous_beat;
  /// Where the anomalous beats sit (label "ectopic"); normal beats are not
  /// listed individually (there are hundreds).
  std::vector<PlantedEvent> anomalies;
};

/// Generates the stream plus one query per beat type.
EcgData GenerateEcg(const EcgOptions& options);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_ECG_H_
