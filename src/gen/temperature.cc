#include "gen/temperature.h"

#include <algorithm>
#include <cmath>

#include "gen/signal.h"
#include "util/logging.h"
#include "util/random.h"

namespace springdtw {
namespace gen {
namespace {

// A warm-up episode: temperature climbs from cool to hot and back over the
// episode, with the diurnal wobble superimposed by the caller. Shape is a
// raised Hann bump scaled to `amplitude`.
std::vector<double> RenderWarmup(int64_t length, double amplitude) {
  std::vector<double> bump = HannWindow(length);
  for (double& x : bump) x *= amplitude;
  return bump;
}

}  // namespace

TemperatureData GenerateTemperature(const TemperatureOptions& options,
                                    int64_t query_length) {
  SPRINGDTW_CHECK_GE(options.length, 2);
  SPRINGDTW_CHECK_GT(options.day_length, 0);
  util::Rng rng(options.seed);

  TemperatureData data;
  const int64_t n = options.length;

  // Diurnal cycle + slow weather drift.
  std::vector<double> values =
      Sine(n, static_cast<double>(options.day_length),
           options.diurnal_amplitude);
  util::Rng weather_rng = rng.Fork(0x11);
  const std::vector<double> weather = MovingAverage(
      RandomWalk(weather_rng, n, 0.0, options.weather_step_sigma),
      options.weather_half_window);
  for (int64_t t = 0; t < n; ++t) {
    values[static_cast<size_t>(t)] +=
        options.base_celsius + weather[static_cast<size_t>(t)];
  }

  // Plant warm-up episodes in disjoint slots.
  const int64_t slots = std::max<int64_t>(options.num_episodes, 1);
  const int64_t slot_width = n / slots;
  for (int64_t e = 0; e < options.num_episodes; ++e) {
    const int64_t max_len =
        std::min(options.max_episode_length, slot_width - 2);
    if (max_len < options.min_episode_length) continue;
    const int64_t length =
        rng.UniformInt(options.min_episode_length, max_len);
    const int64_t start =
        e * slot_width + rng.UniformInt(0, slot_width - length - 1);
    const std::vector<double> bump =
        RenderWarmup(length, options.episode_amplitude);
    for (int64_t t = 0; t < length; ++t) {
      values[static_cast<size_t>(start + t)] += bump[static_cast<size_t>(t)];
    }
    data.events.push_back(PlantedEvent{start, length, "warmup"});
  }

  // Measurement noise.
  AddGaussianNoise(rng, values, options.noise_sigma);

  // Sensor dropouts in bursts: at each tick not already in a gap, start a
  // gap with probability missing_fraction / mean_gap_length so the overall
  // missing fraction is approximately missing_fraction.
  const double gap_start_p =
      options.mean_gap_length > 0
          ? options.missing_fraction /
                static_cast<double>(options.mean_gap_length)
          : 0.0;
  int64_t t = 0;
  while (t < n) {
    if (rng.Bernoulli(gap_start_p)) {
      const int64_t gap =
          std::max<int64_t>(1, rng.UniformInt(1, 2 * options.mean_gap_length));
      for (int64_t g = 0; g < gap && t < n; ++g, ++t) {
        values[static_cast<size_t>(t)] = ts::MissingValue();
      }
    } else {
      ++t;
    }
  }
  data.stream = ts::Series(std::move(values), "temperature");

  // Query: canonical warm-up episode riding on the baseline + diurnal cycle,
  // with fresh noise and no dropouts.
  std::vector<double> query =
      Sine(query_length, static_cast<double>(options.day_length),
           options.diurnal_amplitude);
  const std::vector<double> query_bump =
      RenderWarmup(query_length, options.episode_amplitude);
  for (int64_t i = 0; i < query_length; ++i) {
    query[static_cast<size_t>(i)] +=
        options.base_celsius + query_bump[static_cast<size_t>(i)];
  }
  util::Rng query_rng = rng.Fork(0x72);
  AddGaussianNoise(query_rng, query, options.noise_sigma);
  data.query = ts::Series(std::move(query), "temperature_query");
  return data;
}

}  // namespace gen
}  // namespace springdtw
