#ifndef SPRINGDTW_GEN_WARP_H_
#define SPRINGDTW_GEN_WARP_H_

#include <cstdint>
#include <vector>

#include "ts/vector_series.h"
#include "util/random.h"

namespace springdtw {
namespace gen {

/// A monotone piecewise-linear time map: knot k sends source position
/// source[k] to target position target[k]. Both arrays are strictly
/// increasing, start at 0 and end at (source length - 1) / (target length
/// - 1) respectively. Applying it resamples a sequence along the warped
/// time axis — the ground-truth "acceleration and deceleration" DTW is
/// designed to absorb.
struct TimeWarp {
  std::vector<double> source;
  std::vector<double> target;

  /// Target length the map produces.
  int64_t target_length() const {
    return static_cast<int64_t>(target.back()) + 1;
  }
};

/// Draws a random time warp for a source of length `source_length`:
/// `num_knots` interior knots at random source positions, each displaced in
/// target time by up to +/- `max_stretch` (relative local rate change, in
/// (0, 1)). The resulting target length varies around source_length.
/// Deterministic in `rng`.
TimeWarp RandomTimeWarp(util::Rng& rng, int64_t source_length,
                        int64_t num_knots, double max_stretch);

/// Applies `warp` to `values` by linear interpolation: output tick u reads
/// the source at the warp's inverse image of u. Requires values.size() ==
/// the warp's source length and >= 2.
std::vector<double> ApplyTimeWarp(const std::vector<double>& values,
                                  const TimeWarp& warp);

/// Convenience: ApplyTimeWarp(values, RandomTimeWarp(...)).
std::vector<double> RandomlyWarp(util::Rng& rng,
                                 const std::vector<double>& values,
                                 int64_t num_knots, double max_stretch);

/// Applies the same time warp to every channel of a k-dimensional series
/// (the whole body speeds up and slows down together, as in motion
/// capture). Requires series.size() == the warp's source length and >= 2.
ts::VectorSeries ApplyTimeWarpMultivariate(const ts::VectorSeries& series,
                                           const TimeWarp& warp);

}  // namespace gen
}  // namespace springdtw

#endif  // SPRINGDTW_GEN_WARP_H_
