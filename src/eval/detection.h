#ifndef SPRINGDTW_EVAL_DETECTION_H_
#define SPRINGDTW_EVAL_DETECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/match.h"
#include "gen/planted.h"
#include "util/stats.h"

namespace springdtw {
namespace eval {

/// Interval intersection-over-union of [a_start, a_end] and
/// [b_start, b_end] (inclusive ticks). 0 when disjoint; 1 when identical.
double IntervalIou(int64_t a_start, int64_t a_end, int64_t b_start,
                   int64_t b_end);

/// Options for scoring reported matches against planted ground truth.
struct DetectionOptions {
  /// An (event, match) pair counts as a hit when their IoU reaches this.
  /// 0 degenerates to "any overlap".
  double min_iou = 0.0;
  /// When non-empty, only events with this label participate in scoring —
  /// e.g. score the "walking" query's matches against walking segments
  /// only (everything the query matched elsewhere then counts as a false
  /// positive).
  std::string event_label_filter;
};

/// Detection quality of a match list versus planted events, under greedy
/// one-to-one assignment (each event claims the best-IoU unclaimed match).
struct DetectionScore {
  int64_t true_positives = 0;
  /// Matches not claimed by any event.
  int64_t false_positives = 0;
  /// Events left unclaimed.
  int64_t false_negatives = 0;
  /// IoU distribution over the true positives.
  util::RunningStats iou;
  /// Output delay (report_time - end) distribution over the matched pairs.
  util::RunningStats output_delay;

  double precision() const;
  double recall() const;
  double f1() const;

  /// "P=.. R=.. F1=.. (tp=.. fp=.. fn=.. mean_iou=..)".
  std::string ToString() const;
};

/// Scores `matches` against `events` per `options`. Events and matches may
/// be in any order.
DetectionScore ScoreMatches(const std::vector<gen::PlantedEvent>& events,
                            const std::vector<core::Match>& matches,
                            const DetectionOptions& options = {});

}  // namespace eval
}  // namespace springdtw

#endif  // SPRINGDTW_EVAL_DETECTION_H_
