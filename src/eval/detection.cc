#include "eval/detection.h"

#include <algorithm>

#include "util/string_util.h"

namespace springdtw {
namespace eval {

double IntervalIou(int64_t a_start, int64_t a_end, int64_t b_start,
                   int64_t b_end) {
  const int64_t inter_start = std::max(a_start, b_start);
  const int64_t inter_end = std::min(a_end, b_end);
  if (inter_end < inter_start) return 0.0;
  const int64_t intersection = inter_end - inter_start + 1;
  const int64_t union_size =
      (a_end - a_start + 1) + (b_end - b_start + 1) - intersection;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

double DetectionScore::precision() const {
  const int64_t denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) /
                         static_cast<double>(denom)
                   : 0.0;
}

double DetectionScore::recall() const {
  const int64_t denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) /
                         static_cast<double>(denom)
                   : 0.0;
}

double DetectionScore::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

std::string DetectionScore::ToString() const {
  return util::StrFormat(
      "P=%.3f R=%.3f F1=%.3f (tp=%lld fp=%lld fn=%lld mean_iou=%.3f "
      "mean_delay=%.0f)",
      precision(), recall(), f1(), static_cast<long long>(true_positives),
      static_cast<long long>(false_positives),
      static_cast<long long>(false_negatives), iou.mean(),
      output_delay.mean());
}

DetectionScore ScoreMatches(const std::vector<gen::PlantedEvent>& events,
                            const std::vector<core::Match>& matches,
                            const DetectionOptions& options) {
  // Collect the events in scope.
  std::vector<const gen::PlantedEvent*> scoped;
  for (const gen::PlantedEvent& e : events) {
    if (options.event_label_filter.empty() ||
        e.label == options.event_label_filter) {
      scoped.push_back(&e);
    }
  }

  DetectionScore score;
  std::vector<bool> match_claimed(matches.size(), false);

  // Greedy one-to-one: process events by their best achievable IoU, so a
  // match is not stolen by a worse-fitting event. For the sizes involved
  // (a handful of events per workload) the quadratic pass is fine.
  std::vector<const gen::PlantedEvent*> remaining = scoped;
  while (!remaining.empty()) {
    double best_iou = -1.0;
    size_t best_event = 0;
    int64_t best_match = -1;
    for (size_t e = 0; e < remaining.size(); ++e) {
      for (size_t m = 0; m < matches.size(); ++m) {
        if (match_claimed[m]) continue;
        const double iou =
            IntervalIou(remaining[e]->start, remaining[e]->end(),
                        matches[m].start, matches[m].end);
        if (iou > best_iou) {
          best_iou = iou;
          best_event = e;
          best_match = static_cast<int64_t>(m);
        }
      }
    }
    if (best_match < 0 || best_iou < options.min_iou || best_iou <= 0.0) {
      // No assignable pair left above the threshold: the rest are misses.
      score.false_negatives += static_cast<int64_t>(remaining.size());
      break;
    }
    match_claimed[static_cast<size_t>(best_match)] = true;
    ++score.true_positives;
    score.iou.Add(best_iou);
    const core::Match& m = matches[static_cast<size_t>(best_match)];
    score.output_delay.Add(static_cast<double>(m.report_time - m.end));
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best_event));
  }

  for (const bool claimed : match_claimed) {
    if (!claimed) ++score.false_positives;
  }
  return score;
}

}  // namespace eval
}  // namespace springdtw
