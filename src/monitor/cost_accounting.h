#ifndef SPRINGDTW_MONITOR_COST_ACCOUNTING_H_
#define SPRINGDTW_MONITOR_COST_ACCOUNTING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace springdtw {
namespace monitor {

/// Rows served by /queryz: how many rows the ranked JSON renders.
inline constexpr int64_t kCostTopK = 100;

/// One /queryz row: everything the monitor knows about what a query has
/// cost so far. `cells` is the exact STWM work (query length m cells per
/// tick) — the paper's O(m)-per-tick DP is the dominating cost, so cells
/// is the primary ranking key. `est_cpu_nanos` is the sampled wall
/// attribution (EngineOptions::cost_sample_every); 0 when sampling is off.
struct QueryCost {
  int64_t query_id = 0;
  int64_t stream_id = 0;
  std::string query_name;
  std::string stream_name;
  int64_t ticks = 0;
  int64_t cells = 0;
  int64_t matches = 0;
  /// Global ingest seq of the last delivered match; -1 before any match.
  int64_t last_match_seq = -1;
  int64_t est_cpu_nanos = 0;
};

/// One /streamz row: a stream's queries aggregated, plus which worker owns
/// the stream under the sharded monitor.
struct StreamCost {
  int64_t stream_id = 0;
  std::string name;
  int64_t worker = 0;
  int64_t queries = 0;
  int64_t ticks = 0;
  int64_t cells = 0;
  int64_t matches = 0;
  int64_t est_cpu_nanos = 0;
};

/// A consistent point-in-time cost view, built post-barrier by the router
/// and published under a mutex (the introspection server only ever reads
/// published snapshots, never live state).
struct CostSnapshot {
  std::vector<QueryCost> queries;
  std::vector<StreamCost> streams;
};

/// Deterministic cost ranking, in place: cells descending (exactly
/// countable DP work), id ascending as the tie-break.
void RankByCost(CostSnapshot* snapshot);

/// Renders the top-`top_k` ranked query rows as the /queryz JSON document:
/// {"queries":[{"id":..,"stream":..,"ticks":..,"cells":..,...}]}.
/// The snapshot must already be ranked (RankByCost).
std::string RenderQueryzJson(const CostSnapshot& snapshot, int64_t top_k);

/// Renders the top-`top_k` ranked stream rows as the /streamz JSON
/// document. The snapshot must already be ranked.
std::string RenderStreamzJson(const CostSnapshot& snapshot, int64_t top_k);

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_COST_ACCOUNTING_H_
