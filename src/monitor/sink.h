#ifndef SPRINGDTW_MONITOR_SINK_H_
#define SPRINGDTW_MONITOR_SINK_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/match.h"

namespace springdtw {
namespace monitor {

/// Identifies which (stream, query) pair produced a match.
struct MatchOrigin {
  int64_t stream_id = 0;
  int64_t query_id = 0;
  std::string stream_name;
  std::string query_name;
  /// Global sequence number of the tick that produced the match, when the
  /// producer assigns one (ShardedMonitor does; single-threaded engines
  /// leave it -1, as do end-of-stream flush matches, which have no
  /// producing tick). With query_id it forms the stable identity the
  /// durability layer dedups match delivery by (docs/DURABILITY.md).
  int64_t global_seq = -1;
};

/// Destination for reported matches. Implementations must not block for
/// long: OnMatch runs on the ingest path.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void OnMatch(const MatchOrigin& origin, const core::Match& match) = 0;
};

/// Buffers every match in memory; the simplest sink for tests and batch use.
class CollectSink : public MatchSink {
 public:
  struct Entry {
    MatchOrigin origin;
    core::Match match;
  };

  void OnMatch(const MatchOrigin& origin, const core::Match& match) override {
    entries_.push_back(Entry{origin, match});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// Writes one line per match to an ostream. The stream must outlive the
/// sink.
class OstreamSink : public MatchSink {
 public:
  explicit OstreamSink(std::ostream* out) : out_(out) {}
  void OnMatch(const MatchOrigin& origin, const core::Match& match) override;

 private:
  std::ostream* out_;
};

/// Invokes a user callback per match.
class CallbackSink : public MatchSink {
 public:
  using Callback =
      std::function<void(const MatchOrigin&, const core::Match&)>;
  explicit CallbackSink(Callback callback)
      : callback_(std::move(callback)) {}

  void OnMatch(const MatchOrigin& origin, const core::Match& match) override {
    callback_(origin, match);
  }

 private:
  Callback callback_;
};

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_SINK_H_
