#ifndef SPRINGDTW_MONITOR_SHARDED_MONITOR_H_
#define SPRINGDTW_MONITOR_SHARDED_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/spring.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "monitor/spsc_queue.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "ts/repair.h"
#include "util/memory.h"
#include "util/status.h"

namespace springdtw {
namespace monitor {

struct ShardedMonitorOptions {
  /// Worker (shard) count. Streams are hash-partitioned across workers by
  /// name; each worker owns one MonitorEngine on its own thread.
  int64_t num_workers = 1;
  /// Per-worker tick-queue capacity in messages (each message carries up
  /// to 16 values). Rounded up to a power of two.
  size_t queue_capacity = 256;
  /// Shard engines run in SoA batch mode (EngineOptions::batch_queries).
  bool batch_queries = true;
  /// Give each shard engine its own observability bundle; merged fleet
  /// metrics are then available via MergedMetricsSnapshot(). Costs the
  /// engine's observed ingest path per shard (and disables the engine's
  /// query-major PushBatch fast path, which needs the unobserved path).
  bool collect_metrics = false;
};

/// Scale-out shell around MonitorEngine: hash-partitions scalar streams
/// across N single-threaded worker engines, feeds them through bounded SPSC
/// tick queues, and merges match output, metrics, and checkpoints back into
/// one deterministic façade.
///
/// ## Threading model (details: docs/SCALEOUT.md)
///
/// Exactly one caller thread (the "router") may invoke the public API; N
/// worker threads each own one MonitorEngine and never touch anything
/// else. Values are repaired (NaN hold-last) and assigned a global
/// sequence number on the router, then shipped in 16-value messages over a
/// lock-free SPSC ring per worker. Workers ingest via the engine's batched
/// query-major path and buffer matches shard-locally.
///
/// Match delivery is *deferred and deterministic*: registered sinks are
/// invoked only on the caller thread at barrier points (Drain, FlushAll,
/// Stop), with all shards' pending matches merged in (sequence number,
/// global query id) order. The same workload therefore produces
/// byte-identical ordered output for any worker count — 1, 2, or 8 — which
/// the determinism test locks down.
///
/// The drain barrier is the memory-ordering keystone: each worker bumps a
/// `consumed` counter with a release store after fully processing a
/// message, and Drain() acquire-loads it until it matches the router's
/// `produced` count. Everything a worker wrote — engine state, buffered
/// matches — is therefore visible to the caller after Drain(), which is
/// what makes checkpointing, metrics merging, flushing, and topology
/// mutation plain single-threaded code on the caller thread.
///
/// Checkpoints are reshard-safe: SerializeState() stores router state plus
/// one per-query matcher snapshot (not per-worker engine images), so a
/// checkpoint taken at 8 workers restores into a monitor with any worker
/// count, resuming byte-identically.
class ShardedMonitor {
 public:
  explicit ShardedMonitor(const ShardedMonitorOptions& options = {});
  ~ShardedMonitor();

  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;

  /// Registers a stream; returns its (global) id. `repair_missing` repairs
  /// NaNs on the router before values are sharded.
  int64_t AddStream(std::string name, bool repair_missing = true);

  /// Attaches a query to `stream_id` on its owning shard; returns the
  /// global query id.
  util::StatusOr<int64_t> AddQuery(int64_t stream_id, std::string name,
                                   std::vector<double> query,
                                   const core::SpringOptions& options);

  /// Registers a sink; not owned; must outlive the monitor. Sinks run on
  /// the caller thread at barriers, never on worker threads.
  void AddSink(MatchSink* sink);

  /// Spawns the worker threads. Topology may still be changed afterwards
  /// (AddStream/AddQuery drain internally). Idempotent while running.
  void Start();
  bool started() const { return started_; }

  /// Routes one value to `stream_id`'s shard. Requires Start(). Matches
  /// produced by this value are buffered until the next barrier.
  util::Status Push(int64_t stream_id, double value);

  /// Routes a run of values (chunked into tick messages). Same contract
  /// as Push per value.
  util::Status PushBatch(int64_t stream_id, std::span<const double> values);

  /// Barrier: blocks until every routed value is fully processed, then
  /// delivers all buffered matches to the sinks in deterministic order.
  /// Returns the number of matches delivered.
  int64_t Drain();

  /// Barrier, then end-of-stream flush of every query's pending candidate.
  /// Flushed matches order after all tick matches, by global query id.
  /// Returns the total matches delivered by this call.
  int64_t FlushAll();

  /// Drains, delivers, stops and joins the workers. Idempotent. Start()
  /// may be called again afterwards.
  void Stop();

  int64_t num_workers() const {
    return static_cast<int64_t>(shards_.size());
  }
  int64_t num_streams() const {
    return static_cast<int64_t>(streams_.size());
  }
  int64_t num_queries() const {
    return static_cast<int64_t>(queries_.size());
  }
  /// Which worker owns `stream_id` (stable for a given name and worker
  /// count).
  int64_t worker_of_stream(int64_t stream_id) const;

  /// Per-query counters, fresh as of the last barrier.
  const QueryStats& stats(int64_t query_id) const;

  /// Barrier, then a fleet-wide merged metrics snapshot (see
  /// obs::MergeSnapshots). Empty unless options.collect_metrics.
  obs::MetricsSnapshot MergedMetricsSnapshot();

  /// Barrier, then aggregate matcher working-set bytes across shards.
  util::MemoryFootprint Footprint();

  /// Barrier, then a reshard-safe checkpoint of the entire monitor.
  std::vector<uint8_t> SerializeState();

  /// Restores a checkpoint into this monitor. Requires a fresh, unstarted
  /// monitor (no streams/queries); the worker count may differ from the
  /// checkpointing monitor's.
  util::Status RestoreState(std::span<const uint8_t> bytes);

 private:
  /// Values per tick message. Sized so a message (16 doubles + header)
  /// stays within two cache lines.
  static constexpr int64_t kTickBatch = 16;
  /// Sequence number assigned to end-of-stream flush matches so they order
  /// after every tick match.
  static constexpr uint64_t kFlushSeq = ~uint64_t{0};

  struct TickMessage {
    enum class Kind : uint8_t { kData, kStop };
    Kind kind = Kind::kData;
    int32_t local_stream = 0;
    int32_t count = 0;
    /// Global sequence number of values[0]; the message's values carry
    /// consecutive numbers (the router never stages across other pushes).
    uint64_t seq0 = 0;
    double values[kTickBatch] = {};
  };

  struct PendingMatch {
    uint64_t seq = 0;
    int64_t global_query_id = 0;
    core::Match match;
  };

  /// One worker: engine + queue + thread + handoff counters. Worker-side
  /// fields are written by the worker thread and readable by the caller
  /// only after a drain barrier (release on `consumed`, acquire in
  /// Drain()).
  struct Shard {
    std::unique_ptr<MonitorEngine> engine;
    std::unique_ptr<SpscQueue<TickMessage>> queue;
    std::unique_ptr<CallbackSink> sink;
    std::unique_ptr<obs::Observability> obs;
    std::thread thread;

    /// Messages routed (caller thread) / fully processed (worker thread).
    std::atomic<uint64_t> produced{0};
    std::atomic<uint64_t> consumed{0};

    /// Worker-side ingest context for sequence attribution.
    uint64_t msg_seq0 = 0;
    int64_t msg_base_tick = 0;
    bool flushing = false;
    /// Ticks each local stream has consumed (mirrors engine state).
    std::vector<int64_t> stream_ticks;
    /// Local id -> global id maps.
    std::vector<int64_t> global_stream_ids;
    std::vector<int64_t> global_query_ids;
    /// Matches buffered since the last barrier.
    std::vector<PendingMatch> matches;
  };

  struct StreamInfo {
    std::string name;
    bool repair_missing = true;
    ts::StreamingRepairer repairer;
    bool repairer_seeded = false;
    int64_t worker = 0;
    int64_t local_id = 0;
    /// Values routed so far (== every attached query's tick count).
    int64_t pushes = 0;
  };

  struct QueryInfo {
    int64_t stream_id = 0;
    std::string name;
    int64_t local_id = 0;
    QueryStats stats;
  };

  void WorkerLoop(Shard* shard);
  /// Repairs + stages one value (stream already validated).
  void RouteValue(StreamInfo& stream, double value);
  /// Ships the staged message, if any, to its worker queue.
  void FlushStaged();
  /// Waits until every shard's consumed count matches produced.
  void AwaitQuiescent();
  /// Merges, orders, and dispatches all shards' buffered matches; updates
  /// per-query stats. Caller must hold the drain barrier.
  int64_t DeliverPending();

  ShardedMonitorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<StreamInfo> streams_;
  std::vector<QueryInfo> queries_;
  std::vector<MatchSink*> sinks_;
  bool started_ = false;

  /// Next global sequence number (one per routed value, all streams).
  uint64_t next_seq_ = 0;

  /// Router-side staging: at most one partially filled message, so the
  /// sequence numbers inside a message stay consecutive.
  TickMessage staged_;
  int64_t staged_worker_ = -1;
  bool has_staged_ = false;

  /// Scratch for DeliverPending.
  std::vector<PendingMatch> delivery_scratch_;
};

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_SHARDED_MONITOR_H_
