#ifndef SPRINGDTW_MONITOR_SHARDED_MONITOR_H_
#define SPRINGDTW_MONITOR_SHARDED_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/spring.h"
#include "monitor/cost_accounting.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "monitor/spsc_queue.h"
#include "obs/alert.h"
#include "obs/introspection_server.h"
#include "obs/span.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/timeline.h"
#include "ts/repair.h"
#include "util/memory.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace springdtw {
namespace monitor {

struct ShardedMonitorOptions {
  /// Worker (shard) count. Streams are hash-partitioned across workers by
  /// name; each worker owns one MonitorEngine on its own thread.
  int64_t num_workers = 1;
  /// Per-worker tick-queue capacity in messages (each message carries up
  /// to 16 values). Rounded up to a power of two.
  size_t queue_capacity = 256;
  /// Shard engines run in SoA batch mode (EngineOptions::batch_queries).
  bool batch_queries = true;
  /// Give each shard engine its own observability bundle; merged fleet
  /// metrics are then available via MergedMetricsSnapshot(). Costs the
  /// engine's observed ingest path per shard (and disables the engine's
  /// query-major PushBatch fast path, which needs the unobserved path).
  /// Also enables the pipeline profiler: stage-latency histograms
  /// (router_enqueue / ring_residency / worker_pass / delivery_delay) and
  /// per-ring occupancy/contention metrics.
  bool collect_metrics = false;

  /// Live introspection (docs/OBSERVABILITY.md): when >= 0 the monitor runs
  /// an obs::IntrospectionServer on 127.0.0.1 at this port (0 picks an
  /// ephemeral port; see introspection_port()) serving /metrics,
  /// /metrics.json, /healthz, /statusz, and /tracez. Implies
  /// enable_introspection.
  int64_t introspect_port = -1;
  /// Attach the introspection plumbing — watchdog progress stamps and
  /// thread-safe published snapshots (HealthSnapshot, StatusSnapshot,
  /// PublishedMetricsSnapshot, PublishedTraces) — without running the HTTP
  /// server, for embedders that serve the reports themselves. Implies
  /// collect_metrics.
  bool enable_introspection = false;
  /// Watchdog staleness budget: a worker that has processed traffic before
  /// but has made no progress for longer than this is reported "stale" by
  /// /healthz (503). The budget therefore encodes the expected feed
  /// cadence — a stream silent longer than this is treated as a stall.
  double staleness_budget_ms = 1000.0;
  /// Workers and the router republish their introspection snapshots at
  /// most this often (plus whenever their queue runs empty).
  double publish_interval_ms = 100.0;
  /// Per-shard match-lifecycle trace ring capacity feeding /tracez, used
  /// only when introspection is enabled (0 disables tracing).
  int64_t introspect_trace_capacity = 1024;

  /// End-to-end tick span sampling (used only when introspection is
  /// enabled): every Nth routed value — globally, across streams — is
  /// traced from the ingest edge through enqueue, ring residency, the
  /// worker pass, and barrier delivery, feeding /spanz and the
  /// spring_e2e_latency_nanos stage histograms. 0 disables span sampling
  /// even with introspection on.
  int64_t span_sample_every = 64;
  /// Completed-span ring capacity behind /spanz (oldest overwritten;
  /// drops are counted). Used only when introspection is enabled.
  int64_t span_ring_capacity = 256;
  /// Per-query CPU cost sampling cadence forwarded to each shard engine
  /// (EngineOptions::cost_sample_every), feeding the est_cpu_nanos column
  /// of /queryz and LIST_QUERIES stats. Used only when collect_metrics is
  /// on; 0 disables CPU sampling (cells/ticks/matches accounting stays).
  int64_t cost_sample_every = 64;

  /// Metrics timeline + alerting (docs/OBSERVABILITY.md): when on, the
  /// router folds each published fleet snapshot into a multi-resolution
  /// obs::MetricsTimeline (served as /timez) and evaluates `alert_rules`
  /// against it (served as /alertz; a firing page-severity rule flips
  /// /healthz to 503). Implied by non-empty alert_rules or slo_p99_ms > 0;
  /// implies enable_introspection. Recording and evaluation ride the
  /// publish cadence (publish_interval_ms), never the ingest hot path, and
  /// cost nothing — no allocations, no atomics — when disabled.
  bool enable_timeline = false;
  /// Timeline tiers + channel cap; defaults per obs::TimelineOptions.
  obs::TimelineOptions timeline;
  /// Parsed alert rules (obs::ParseAlertRules for the text form).
  std::vector<obs::AlertRule> alert_rules;
  /// > 0 appends the conventional two-window SLO page rule on p99
  /// spring_e2e_latency_nanos{stage=total} with this budget, in
  /// milliseconds (obs::MakeSloP99Rule).
  double slo_p99_ms = 0.0;
  /// Capacity of the alert-transition trace ring merged into /tracez.
  int64_t alert_trace_capacity = 256;
};

/// Scale-out shell around MonitorEngine: hash-partitions scalar streams
/// across N single-threaded worker engines, feeds them through bounded SPSC
/// tick queues, and merges match output, metrics, and checkpoints back into
/// one deterministic façade.
///
/// ## Threading model (details: docs/SCALEOUT.md)
///
/// Exactly one caller thread (the "router") may invoke the public API; N
/// worker threads each own one MonitorEngine and never touch anything
/// else. Values are repaired (NaN hold-last) and assigned a global
/// sequence number on the router, then shipped in 16-value messages over a
/// lock-free SPSC ring per worker. Workers ingest via the engine's batched
/// query-major path and buffer matches shard-locally.
///
/// Match delivery is *deferred and deterministic*: registered sinks are
/// invoked only on the caller thread at barrier points (Drain, FlushAll,
/// Stop), with all shards' pending matches merged in (sequence number,
/// global query id) order. The same workload therefore produces
/// byte-identical ordered output for any worker count — 1, 2, or 8 — which
/// the determinism test locks down.
///
/// The drain barrier is the memory-ordering keystone: each worker bumps a
/// `consumed` counter with a release store after fully processing a
/// message, and Drain() acquire-loads it until it matches the router's
/// `produced` count. Everything a worker wrote — engine state, buffered
/// matches — is therefore visible to the caller after Drain(), which is
/// what makes checkpointing, metrics merging, flushing, and topology
/// mutation plain single-threaded code on the caller thread.
///
/// Checkpoints are reshard-safe: SerializeState() stores router state plus
/// one per-query matcher snapshot (not per-worker engine images), so a
/// checkpoint taken at 8 workers restores into a monitor with any worker
/// count, resuming byte-identically.
class ShardedMonitor {
 public:
  explicit ShardedMonitor(const ShardedMonitorOptions& options = {});
  ~ShardedMonitor();

  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;

  /// ## Runtime admin contract
  ///
  /// AddStream, AddQuery, and RemoveQuery may be called while the monitor
  /// is running — still only from the single router thread. Each mutation
  /// drains internally first (a full barrier: every routed value processed,
  /// all buffered matches delivered to the sinks), then applies the change
  /// between worker passes, so workers never observe a topology mid-
  /// mutation. The cost is therefore one pipeline flush per mutation;
  /// batch admin changes together when ingest latency matters. Admin
  /// methods return util::Status errors for bad ids instead of aborting,
  /// so a serving layer can reject a request and keep running.

  /// Registers a stream; returns its (global) id. `repair_missing` repairs
  /// NaNs on the router before values are sharded.
  int64_t AddStream(std::string name, bool repair_missing = true);

  /// Stream id for `name`, or -1 when unknown — lets a serving layer make
  /// OPEN_STREAM idempotent (including across checkpoint restore, which
  /// repopulates the stream table).
  int64_t FindStream(std::string_view name) const;

  /// Attaches a query to `stream_id` on its owning shard; returns the
  /// global query id.
  util::StatusOr<int64_t> AddQuery(int64_t stream_id, std::string name,
                                   std::vector<double> query,
                                   const core::SpringOptions& options);

  /// Retires query `query_id`: drains, removes the matcher on its shard
  /// (MonitorEngine::RemoveQuery), and delivers any flushed candidate to
  /// the sinks — a pending candidate is emitted iff it was already
  /// report-eligible under the Problem-2 rule, ordered after every tick
  /// match like an end-of-stream flush. Returns the number of matches the
  /// removal flushed (0 or 1). The global id is tombstoned (stats(id)
  /// stays valid, ids of other queries do not shift) and is omitted from
  /// subsequent checkpoints.
  util::StatusOr<int64_t> RemoveQuery(int64_t query_id);

  /// One row per live (non-removed) query, for LIST_QUERIES-style admin.
  /// The cost columns (cells, last_match_seq, est_cpu_nanos) are fresh as
  /// of the last barrier and stay 0/-1 unless collect_metrics is on.
  struct QueryListEntry {
    int64_t query_id = 0;
    int64_t stream_id = 0;
    std::string name;
    std::string stream_name;
    int64_t ticks = 0;
    int64_t matches = 0;
    int64_t cells = 0;
    int64_t last_match_seq = -1;
    int64_t est_cpu_nanos = 0;
  };

  /// Snapshot of the live query set, stats fresh as of the last barrier
  /// (call Drain() first for exact counts mid-ingest).
  std::vector<QueryListEntry> ListQueries() const;

  /// Registers a sink; not owned; must outlive the monitor. Sinks run on
  /// the caller thread at barriers, never on worker threads.
  void AddSink(MatchSink* sink);

  /// Spawns the worker threads. Topology may still be changed afterwards
  /// (AddStream/AddQuery drain internally). Idempotent while running.
  void Start();
  bool started() const {
    // order: relaxed — Start()/Stop() happen on the router thread; this is
    // an advisory flag for callers, not a synchronization edge.
    return started_.load(std::memory_order_relaxed);
  }

  /// Routes one value to `stream_id`'s shard. Fails (kFailedPrecondition)
  /// unless started. Matches produced by this value are buffered until the
  /// next barrier. `client_send_nanos`, when nonzero, is the producer's
  /// monotonic send stamp (the wire protocol's v2 TICK trailer); if this
  /// value is span-sampled it becomes the span's client_send stage.
  util::Status Push(int64_t stream_id, double value,
                    uint64_t client_send_nanos = 0);

  /// Routes a run of values (chunked into tick messages). Same contract
  /// as Push per value; `client_send_nanos` applies to the whole run.
  util::Status PushBatch(int64_t stream_id, std::span<const double> values,
                         uint64_t client_send_nanos = 0);

  /// Barrier: blocks until every routed value is fully processed, then
  /// delivers all buffered matches to the sinks in deterministic order.
  /// Returns the number of matches delivered.
  int64_t Drain();

  /// Barrier, then end-of-stream flush of every query's pending candidate.
  /// Flushed matches order after all tick matches, by global query id.
  /// Returns the total matches delivered by this call.
  int64_t FlushAll();

  /// Drains, delivers, stops and joins the workers. Idempotent. Start()
  /// may be called again afterwards.
  void Stop();

  int64_t num_workers() const {
    return static_cast<int64_t>(shards_.size());
  }
  int64_t num_streams() const {
    return static_cast<int64_t>(streams_.size());
  }
  int64_t num_queries() const {
    return static_cast<int64_t>(queries_.size());
  }
  /// Which worker owns `stream_id` (stable for a given name and worker
  /// count).
  int64_t worker_of_stream(int64_t stream_id) const;

  /// Global sequence number the next routed value will be assigned.
  /// Checkpoints store and restore it, so a write-ahead log keyed on it
  /// (src/wal/) lines up exactly across restore + replay.
  uint64_t next_seq() const { return next_seq_; }

  /// Values routed to `stream_id` so far — the durable per-stream position
  /// a resuming producer should skip to (the STREAM_OPENED ticks trailer).
  int64_t stream_ticks(int64_t stream_id) const;

  /// Per-query counters, fresh as of the last barrier.
  const QueryStats& stats(int64_t query_id) const;

  /// Barrier, then a fleet-wide merged metrics snapshot (see
  /// obs::MergeSnapshots). Empty unless options.collect_metrics. Includes
  /// the router-side registry (stage latencies, ring metrics).
  obs::MetricsSnapshot MergedMetricsSnapshot();

  /// ## Introspection (thread-safe, any thread, no barrier)
  ///
  /// The HTTP endpoints are thin wrappers over these. They never touch
  /// live engine state: workers and the router publish snapshots into
  /// mutex-guarded slots (throttled by options.publish_interval_ms), and
  /// these methods read the latest published copy plus always-safe
  /// atomics. All are empty/"disabled" unless options.enable_introspection
  /// (or introspect_port >= 0).

  /// The introspection server's bound port, or -1 when no server runs.
  int introspection_port() const;

  /// Per-worker staleness verdict; see
  /// ShardedMonitorOptions::staleness_budget_ms.
  obs::HealthReport HealthSnapshot() const;

  /// Pipeline snapshot: per-worker ticks, ring occupancy and contention,
  /// pending candidates, checkpoint age, uptime.
  obs::StatusReport StatusSnapshot() const;

  /// Fleet-merged metrics as of each worker's last publish (the live
  /// equivalent is MergedMetricsSnapshot, which requires the caller
  /// thread).
  obs::MetricsSnapshot PublishedMetricsSnapshot() const;

  /// Recent match-lifecycle trace events across workers, as of the last
  /// publish.
  obs::TracezReport PublishedTraces() const;

  /// Recent completed end-to-end tick spans (/spanz), as of the router's
  /// last publish. Empty unless introspection + span sampling are on.
  obs::SpanzReport PublishedSpans() const;

  /// /queryz document: live queries ranked by cost (cells desc), top-K, as
  /// of the last published cost snapshot. "{}" shape with empty list
  /// unless collect_metrics is on and a barrier has run.
  std::string QueryzJson() const;

  /// /streamz document: per-stream cost aggregation, same snapshot
  /// discipline as QueryzJson.
  std::string StreamzJson() const;

  /// Router thread only: folds the current published fleet snapshot into
  /// the metrics timeline and runs one alert-evaluation pass. Called
  /// automatically at router publish points; embedders whose router thread
  /// idles (the net server's event loop) call it periodically so absence
  /// rules and resolve transitions happen without traffic. Throttled to
  /// publish_interval_ms unless `force`; no-op (and allocation-free)
  /// unless the timeline is enabled.
  void PollTimeline(bool force = false);
  bool timeline_enabled() const { return timeline_; }

  /// /timez document for a raw URL query string ("metric=...&window=..."),
  /// or the channel catalog when the query names no metric. Thread-safe;
  /// "{}"-shaped empty document when the timeline is disabled.
  std::string TimezJson(const std::string& query) const;

  /// /alertz document: every rule's state, observation, and transition
  /// counters. Thread-safe; empty rule list when alerting is disabled.
  std::string AlertzJson() const;

  /// Current rule statuses, for embedders and tests.
  std::vector<obs::AlertStatus> AlertStatuses() const;

  /// Installs a hook invoked on the router thread for every completed span
  /// just before it is recorded, so an embedding layer (the net server)
  /// can stamp its own final stage (subscriber_write_nanos). Set before
  /// Start(); pass nullptr to detach.
  using SpanFinalizer = std::function<void(obs::TickSpan*)>;
  void SetSpanFinalizer(SpanFinalizer finalizer);

  /// Registers a callback whose snapshot is appended to
  /// PublishedMetricsSnapshot() merges — how an embedding layer (e.g. the
  /// net serving layer) splices its own metric families into the monitor's
  /// /metrics exposition. The callback runs on whatever thread scrapes
  /// (the introspection server's), so it must be thread-safe; set it
  /// before traffic starts. Pass nullptr to detach.
  void SetAuxMetricsProvider(std::function<obs::MetricsSnapshot()> provider);

  /// Barrier, then aggregate matcher working-set bytes across shards.
  util::MemoryFootprint Footprint();

  /// Barrier, then a reshard-safe checkpoint of the entire monitor.
  std::vector<uint8_t> SerializeState();

  /// Restores a checkpoint into this monitor. Requires a fresh, unstarted
  /// monitor (no streams/queries); the worker count may differ from the
  /// checkpointing monitor's.
  util::Status RestoreState(std::span<const uint8_t> bytes);

 private:
  /// Values per tick message. Sized so a message (16 doubles + header)
  /// stays within two cache lines.
  static constexpr int64_t kTickBatch = 16;
  /// Sequence number assigned to end-of-stream flush matches so they order
  /// after every tick match.
  static constexpr uint64_t kFlushSeq = ~uint64_t{0};

  struct TickMessage {
    enum class Kind : uint8_t { kData, kStop };
    Kind kind = Kind::kData;
    int32_t local_stream = 0;
    int32_t count = 0;
    /// Global sequence number of values[0]; the message's values carry
    /// consecutive numbers (the router never stages across other pushes).
    uint64_t seq0 = 0;
    /// Profiler stamp taken just before the router enqueues (0 when
    /// profiling is off); the worker's pop time minus this is the
    /// ring_residency stage latency.
    uint64_t enqueue_nanos = 0;
    /// Span sampling: index into values[] of the sampled tick, or -1 when
    /// no tick in this message is sampled. The recv stamp was taken when
    /// the router accepted the value; client_send comes from the wire
    /// trailer (0 for in-process pushes).
    int32_t span_index = -1;
    uint64_t span_client_send_nanos = 0;
    uint64_t span_recv_nanos = 0;
    double values[kTickBatch] = {};
  };

  struct PendingMatch {
    uint64_t seq = 0;
    int64_t global_query_id = 0;
    /// Profiler stamp taken when the worker buffered the match (0 when
    /// profiling is off); delivery time minus this is the delivery_delay
    /// stage latency.
    uint64_t buffered_nanos = 0;
    core::Match match;
  };

  /// One worker: engine + queue + thread + handoff counters. Worker-side
  /// fields are written by the worker thread and readable by the caller
  /// only after a drain barrier (release on `consumed`, acquire in
  /// Drain()).
  struct Shard {
    std::unique_ptr<MonitorEngine> engine;
    std::unique_ptr<SpscQueue<TickMessage>> queue;
    std::unique_ptr<CallbackSink> sink;
    std::unique_ptr<obs::Observability> obs;
    std::thread thread;

    /// Messages routed (caller thread) / fully processed (worker thread).
    std::atomic<uint64_t> produced{0};
    std::atomic<uint64_t> consumed{0};

    /// Worker-side ingest context for sequence attribution.
    uint64_t msg_seq0 = 0;
    int64_t msg_base_tick = 0;
    bool flushing = false;
    /// Ticks each local stream has consumed (mirrors engine state).
    std::vector<int64_t> stream_ticks;
    /// Local id -> global id maps.
    std::vector<int64_t> global_stream_ids;
    std::vector<int64_t> global_query_ids;
    /// Matches buffered since the last barrier.
    std::vector<PendingMatch> matches;
    /// Sampled spans whose worker stages are complete, awaiting barrier
    /// delivery stamps. Same visibility rule as `matches`.
    std::vector<obs::TickSpan> pending_spans;

    /// Stage-latency handles in this shard's registry, resolved once at
    /// construction; null unless collect_metrics.
    obs::Histogram* stage_ring_residency = nullptr;
    obs::Histogram* stage_worker_pass = nullptr;

    /// ## Introspection (cross-thread; unused unless enable_introspection)
    ///
    /// Watchdog stamp: monotonic nanos of the worker's last completed
    /// message (and of thread start).
    std::atomic<uint64_t> last_progress_nanos{0};
    /// Values this worker has ingested (worker thread writes, server
    /// reads).
    std::atomic<int64_t> ticks_ingested{0};
    /// Streams/queries placed on this shard (router writes, server reads).
    std::atomic<int64_t> stream_count{0};
    std::atomic<int64_t> query_count{0};
    /// Pending-candidate count as of the last publish.
    std::atomic<int64_t> pending_candidates{0};
    /// Worker-local publish throttle clock; worker thread only.
    uint64_t last_publish_nanos = 0;
    /// Latest published snapshot, read by the introspection methods.
    mutable util::Mutex publish_mu;
    obs::MetricsSnapshot published_metrics SPRINGDTW_GUARDED_BY(publish_mu);
    std::vector<obs::TraceEvent> published_traces
        SPRINGDTW_GUARDED_BY(publish_mu);
    int64_t published_trace_dropped SPRINGDTW_GUARDED_BY(publish_mu) = 0;
  };

  struct StreamInfo {
    std::string name;
    bool repair_missing = true;
    ts::StreamingRepairer repairer;
    bool repairer_seeded = false;
    int64_t worker = 0;
    int64_t local_id = 0;
    /// Values routed so far (== every attached query's tick count).
    int64_t pushes = 0;
  };

  struct QueryInfo {
    int64_t stream_id = 0;
    std::string name;
    int64_t local_id = 0;
    /// RemoveQuery tombstone; mirrors the engine-side flag so global ids
    /// stay stable while checkpoints and listings skip the entry.
    bool removed = false;
    QueryStats stats;
    /// Cost columns cached from the owning engine at the last barrier
    /// (RefreshCostAccounting) so ListQueries never touches live engines.
    int64_t cells = 0;
    int64_t est_cpu_nanos = 0;
    /// Global seq of the last delivered match (DeliverPending); -1 before
    /// any match. Flush matches (kFlushSeq) do not update it.
    int64_t last_match_seq = -1;
  };

  /// Per-ring instrument handles in the router registry, plus the counter
  /// deltas already exported (counters are monotonic; the queue exposes
  /// totals, the registry wants increments).
  struct RingObs {
    obs::Gauge* occupancy = nullptr;
    obs::Gauge* capacity = nullptr;
    obs::Counter* blocked_pushes = nullptr;
    obs::Counter* producer_parks = nullptr;
    obs::Counter* consumer_parks = nullptr;
    uint64_t blocked_exported = 0;
    uint64_t producer_parks_exported = 0;
    uint64_t consumer_parks_exported = 0;
  };

  void WorkerLoop(Shard* shard);
  /// Repairs + stages one value (stream already validated).
  void RouteValue(StreamInfo& stream, double value,
                  uint64_t client_send_nanos);
  /// Ships the staged message, if any, to its worker queue.
  void FlushStaged();
  /// Waits until every shard's consumed count matches produced.
  void AwaitQuiescent();
  /// Merges, orders, and dispatches all shards' buffered matches; updates
  /// per-query stats. Caller must hold the drain barrier.
  int64_t DeliverPending();
  /// Worker thread: snapshots the shard registry/trace ring into the
  /// shard's published slot. Runs before the message's `consumed` release,
  /// so post-barrier the router may mutate the registry safely.
  void PublishShard(Shard* shard, uint64_t now_nanos);
  /// Router thread: refreshes ring metrics and snapshots the router
  /// registry into its published slot.
  void PublishRouter(uint64_t now_nanos);
  /// Router thread: brings ring occupancy gauges and contention counters
  /// up to date in the router registry.
  void RefreshRingMetrics();
  /// Shared staleness verdict for HealthSnapshot/StatusSnapshot.
  obs::WorkerHealth WorkerHealthFor(int64_t worker, uint64_t now_nanos) const;
  /// Observes one completed span into the spring_e2e_latency_nanos stage
  /// histograms (router registry). Absent stages (0 stamps) are skipped.
  void ObserveSpan(const obs::TickSpan& span);
  /// Router thread, post-barrier only (reads shard engines): refreshes the
  /// per-query cost cache (QueryInfo::cells/est_cpu_nanos) and publishes a
  /// ranked CostSnapshot for /queryz and /streamz.
  void RefreshCostAccounting();

  ShardedMonitorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<StreamInfo> streams_;
  std::vector<QueryInfo> queries_;
  std::vector<MatchSink*> sinks_;
  std::atomic<bool> started_{false};

  /// Next global sequence number (one per routed value, all streams).
  uint64_t next_seq_ = 0;

  /// Router-side staging: at most one partially filled message, so the
  /// sequence numbers inside a message stay consecutive.
  TickMessage staged_;
  int64_t staged_worker_ = -1;
  bool has_staged_ = false;

  /// Scratch for DeliverPending.
  std::vector<PendingMatch> delivery_scratch_;

  /// Pipeline profiler (set iff collect_metrics): router-side registry
  /// holding the router_enqueue/delivery_delay stages and the per-ring
  /// metrics. Router thread only; the server reads the published copy.
  bool profile_ = false;
  std::unique_ptr<obs::Observability> router_obs_;
  obs::Histogram* stage_router_enqueue_ = nullptr;
  obs::Histogram* stage_delivery_delay_ = nullptr;
  std::vector<RingObs> ring_obs_;

  /// End-to-end span sampling (iff introspection + span_sample_every > 0).
  /// The ring and scratch are router-thread-only; readers get the
  /// published copy.
  int64_t span_every_ = 0;
  /// Ticks until the next span claim; starts at 1 so the first tick is
  /// sampled, then resets to span_every_ on each cadence point.
  int64_t span_countdown_ = 1;
  obs::SpanRing span_ring_;
  std::vector<obs::TickSpan> span_scratch_;
  SpanFinalizer span_finalizer_;
  /// spring_e2e_latency_nanos stage handles (router registry); null unless
  /// profiling.
  obs::Histogram* e2e_client_to_server_ = nullptr;
  obs::Histogram* e2e_ingest_to_enqueue_ = nullptr;
  obs::Histogram* e2e_ring_residency_ = nullptr;
  obs::Histogram* e2e_worker_pass_ = nullptr;
  obs::Histogram* e2e_delivery_wait_ = nullptr;
  obs::Histogram* e2e_subscriber_write_ = nullptr;
  obs::Histogram* e2e_total_ = nullptr;

  /// Introspection state (used iff enable_introspection).
  bool introspect_ = false;
  uint64_t publish_interval_nanos_ = 0;
  uint64_t router_last_publish_nanos_ = 0;
  uint64_t start_nanos_ = 0;
  std::atomic<int64_t> matches_delivered_{0};
  std::atomic<uint64_t> last_checkpoint_nanos_{0};
  mutable util::Mutex router_publish_mu_;
  obs::MetricsSnapshot router_published_metrics_
      SPRINGDTW_GUARDED_BY(router_publish_mu_);
  obs::SpanzReport published_spans_ SPRINGDTW_GUARDED_BY(router_publish_mu_);
  CostSnapshot published_costs_ SPRINGDTW_GUARDED_BY(router_publish_mu_);
  std::function<obs::MetricsSnapshot()> aux_metrics_provider_;
  std::unique_ptr<obs::IntrospectionServer> server_;

  /// Timeline + alerting (iff timeline_). Fed on the router thread at
  /// publish points, read by the server thread; both sides take
  /// timeline_mu_. The throttle clock is router-thread-only.
  bool timeline_ = false;
  uint64_t timeline_last_poll_nanos_ = 0;
  mutable util::Mutex timeline_mu_;
  std::unique_ptr<obs::MetricsTimeline> metrics_timeline_
      SPRINGDTW_GUARDED_BY(timeline_mu_);
  std::unique_ptr<obs::AlertEngine> alert_engine_
      SPRINGDTW_GUARDED_BY(timeline_mu_);
  obs::TraceRing alert_trace_ SPRINGDTW_GUARDED_BY(timeline_mu_);
  /// Latest AnyFiringPage() verdict, read lock-free by health scrapes.
  std::atomic<bool> alert_page_firing_{false};
};

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_SHARDED_MONITOR_H_
