#ifndef SPRINGDTW_MONITOR_STREAM_SOURCE_H_
#define SPRINGDTW_MONITOR_STREAM_SOURCE_H_

#include <cstdint>

#include "ts/repair.h"
#include "ts/series.h"

namespace springdtw {
namespace monitor {

/// Pull-based source of stream values. Next() returns false at end of
/// stream (a live source simply never returns false).
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Produces the next value into `*value`; false when exhausted.
  virtual bool Next(double* value) = 0;
};

/// Replays a stored Series as a stream, repairing missing readings with a
/// streaming hold-last policy so downstream matchers never see NaN.
class SeriesSource : public StreamSource {
 public:
  /// The series is copied; `repair` controls missing-value handling.
  explicit SeriesSource(ts::Series series, bool repair = true);

  bool Next(double* value) override;

  /// Rewinds to the beginning.
  void Reset();

  int64_t position() const { return position_; }

 private:
  ts::Series series_;
  bool repair_;
  ts::StreamingRepairer repairer_;
  int64_t position_ = 0;
};

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_STREAM_SOURCE_H_
