#include "monitor/replay.h"

#include "util/stopwatch.h"

namespace springdtw {
namespace monitor {
namespace {

void MaybeReportProgress(const ReplayOptions& options, int64_t ticks,
                         int64_t matches) {
  if (options.progress_every > 0 && options.on_progress &&
      ticks % options.progress_every == 0) {
    options.on_progress(ticks, matches);
  }
}

}  // namespace

util::StatusOr<ReplayResult> ReplayStream(StreamSource& source,
                                          MonitorEngine& engine,
                                          int64_t stream_id,
                                          const ReplayOptions& options) {
  ReplayResult result;
  util::Stopwatch stopwatch;
  double value = 0.0;
  while (source.Next(&value)) {
    const auto pushed = engine.Push(stream_id, value);
    if (!pushed.ok()) return pushed.status();
    ++result.ticks;
    result.matches += *pushed;
    MaybeReportProgress(options, result.ticks, result.matches);
  }
  if (options.flush_at_end) result.matches += engine.FlushAll();
  result.seconds = stopwatch.ElapsedSeconds();
  return result;
}

util::StatusOr<ReplayResult> ReplayVectorSeries(
    const ts::VectorSeries& series, MonitorEngine& engine,
    int64_t stream_id, const ReplayOptions& options) {
  ReplayResult result;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < series.size(); ++t) {
    const auto pushed = engine.PushRow(stream_id, series.Row(t));
    if (!pushed.ok()) return pushed.status();
    ++result.ticks;
    result.matches += *pushed;
    MaybeReportProgress(options, result.ticks, result.matches);
  }
  if (options.flush_at_end) result.matches += engine.FlushAll();
  result.seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace monitor
}  // namespace springdtw
