#include "monitor/sharded_monitor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/codec.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace springdtw {
namespace monitor {

namespace {

/// FNV-1a: stable across runs and platforms (std::hash is not guaranteed
/// to be), so stream placement — and thus shard-local state layout — is
/// reproducible for a given name and worker count.
uint64_t HashName(const std::string& name) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint32_t kMonitorMagic = 0x5350524D;  // "SPRM"
constexpr uint32_t kMonitorVersion = 1;

// Pipeline-profiler metric families (docs/OBSERVABILITY.md). Stage
// latencies share one histogram family distinguished by the `stage` label;
// ring metrics carry a `worker` label.
constexpr char kMetricStageLatency[] = "spring_stage_latency_nanos";
constexpr char kMetricRingOccupancy[] = "spring_ring_occupancy";
constexpr char kMetricRingCapacity[] = "spring_ring_capacity";
constexpr char kMetricRingBlockedPushes[] = "spring_ring_blocked_pushes_total";
constexpr char kMetricRingProducerParks[] = "spring_ring_producer_parks_total";
constexpr char kMetricRingConsumerParks[] = "spring_ring_consumer_parks_total";
constexpr char kStageLatencyHelp[] =
    "Pipeline stage latency in nanoseconds, by stage: router_enqueue "
    "(queue push on the router), ring_residency (enqueue to worker pop), "
    "worker_pass (engine batch ingest), delivery_delay (match buffered to "
    "barrier delivery).";

// End-to-end span stage histograms: one family, `stage`-labelled, fed by
// sampled tick spans (docs/OBSERVABILITY.md).
constexpr char kMetricE2eLatency[] = "spring_e2e_latency_nanos";
constexpr char kE2eLatencyHelp[] =
    "End-to-end latency of span-sampled ticks in nanoseconds, by stage: "
    "client_to_server (wire send stamp to router accept), ingest_to_enqueue "
    "(router accept to ring push), ring_residency (ring push to worker "
    "pop), worker_pass (engine ingest), delivery_wait (worker done to "
    "barrier delivery), subscriber_write (delivery to fan-out frames "
    "written), total (first to last observed stage).";

uint64_t NowNanos() {
  return static_cast<uint64_t>(util::Stopwatch::NowNanos());
}

void WriteStats(util::ByteWriter* writer, const QueryStats& stats) {
  writer->WriteI64(stats.ticks);
  writer->WriteI64(stats.matches);
  stats.output_delay.SerializeTo(writer);
}

bool ReadStats(util::ByteReader* reader, QueryStats* stats) {
  return reader->ReadI64(&stats->ticks) &&
         reader->ReadI64(&stats->matches) &&
         stats->output_delay.DeserializeFrom(reader);
}

}  // namespace

ShardedMonitor::ShardedMonitor(const ShardedMonitorOptions& options)
    : options_(options) {
  SPRINGDTW_CHECK_GE(options_.num_workers, 1);
  if (options_.slo_p99_ms > 0.0) {
    options_.alert_rules.push_back(obs::MakeSloP99Rule(options_.slo_p99_ms));
  }
  if (!options_.alert_rules.empty()) options_.enable_timeline = true;
  if (options_.enable_timeline) options_.enable_introspection = true;
  if (options_.introspect_port >= 0) options_.enable_introspection = true;
  if (options_.enable_introspection) options_.collect_metrics = true;
  introspect_ = options_.enable_introspection;
  profile_ = options_.collect_metrics;
  publish_interval_nanos_ = static_cast<uint64_t>(
      std::max(options_.publish_interval_ms, 0.0) * 1e6);
  start_nanos_ = NowNanos();
  shards_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t w = 0; w < options_.num_workers; ++w) {
    auto shard = std::make_unique<Shard>();
    EngineOptions engine_options;
    engine_options.batch_queries = options_.batch_queries;
    // Shard engines must not drop to the per-tick path when profiling is
    // on: the batched pool run stays, per-tick candidate signals are
    // sampled out (EngineOptions::batch_with_obs).
    engine_options.batch_with_obs = options_.batch_queries;
    if (options_.collect_metrics && options_.cost_sample_every > 0) {
      engine_options.cost_sample_every = options_.cost_sample_every;
    }
    shard->engine = std::make_unique<MonitorEngine>(engine_options);
    shard->queue =
        std::make_unique<SpscQueue<TickMessage>>(options_.queue_capacity);
    if (options_.collect_metrics) {
      obs::ObservabilityOptions obs_options;
      if (introspect_) {
        obs_options.trace_capacity = options_.introspect_trace_capacity;
      }
      shard->obs = std::make_unique<obs::Observability>(obs_options);
      shard->engine->AttachObservability(shard->obs.get());
      shard->stage_ring_residency = shard->obs->registry().GetHistogram(
          kMetricStageLatency, kStageLatencyHelp,
          {{"stage", "ring_residency"}});
      shard->stage_worker_pass = shard->obs->registry().GetHistogram(
          kMetricStageLatency, kStageLatencyHelp, {{"stage", "worker_pass"}});
    }
    Shard* shard_raw = shard.get();
    shard->sink = std::make_unique<CallbackSink>(
        [this, shard_raw](const MatchOrigin& origin,
                          const core::Match& match) {
          PendingMatch pending;
          pending.global_query_id =
              shard_raw->global_query_ids[static_cast<size_t>(
                  origin.query_id)];
          pending.seq =
              shard_raw->flushing
                  ? kFlushSeq
                  : shard_raw->msg_seq0 +
                        static_cast<uint64_t>(match.report_time -
                                              shard_raw->msg_base_tick);
          if (profile_) pending.buffered_nanos = NowNanos();
          pending.match = match;
          shard_raw->matches.push_back(pending);
        });
    shard->engine->AddSink(shard->sink.get());
    shards_.push_back(std::move(shard));
  }
  if (introspect_ && options_.span_sample_every > 0 &&
      options_.span_ring_capacity > 0) {
    span_every_ = options_.span_sample_every;
    span_ring_ = obs::SpanRing(options_.span_ring_capacity);
  }
  if (profile_) {
    router_obs_ = std::make_unique<obs::Observability>();
    obs::MetricsRegistry& registry = router_obs_->registry();
    stage_router_enqueue_ = registry.GetHistogram(
        kMetricStageLatency, kStageLatencyHelp, {{"stage", "router_enqueue"}});
    stage_delivery_delay_ = registry.GetHistogram(
        kMetricStageLatency, kStageLatencyHelp, {{"stage", "delivery_delay"}});
    e2e_client_to_server_ = registry.GetHistogram(
        kMetricE2eLatency, kE2eLatencyHelp, {{"stage", "client_to_server"}});
    e2e_ingest_to_enqueue_ = registry.GetHistogram(
        kMetricE2eLatency, kE2eLatencyHelp, {{"stage", "ingest_to_enqueue"}});
    e2e_ring_residency_ = registry.GetHistogram(
        kMetricE2eLatency, kE2eLatencyHelp, {{"stage", "ring_residency"}});
    e2e_worker_pass_ = registry.GetHistogram(
        kMetricE2eLatency, kE2eLatencyHelp, {{"stage", "worker_pass"}});
    e2e_delivery_wait_ = registry.GetHistogram(
        kMetricE2eLatency, kE2eLatencyHelp, {{"stage", "delivery_wait"}});
    e2e_subscriber_write_ = registry.GetHistogram(
        kMetricE2eLatency, kE2eLatencyHelp, {{"stage", "subscriber_write"}});
    e2e_total_ = registry.GetHistogram(kMetricE2eLatency, kE2eLatencyHelp,
                                       {{"stage", "total"}});
    ring_obs_.resize(shards_.size());
    for (size_t w = 0; w < shards_.size(); ++w) {
      const obs::Labels labels = {
          {"worker", util::StrFormat("%lld", static_cast<long long>(w))}};
      RingObs& ring = ring_obs_[w];
      ring.occupancy = registry.GetGauge(
          kMetricRingOccupancy,
          "Messages currently queued in the worker's SPSC ring (racy "
          "estimate).",
          labels);
      ring.capacity = registry.GetGauge(
          kMetricRingCapacity, "Capacity of the worker's SPSC ring.", labels);
      ring.capacity->Set(static_cast<double>(shards_[w]->queue->capacity()));
      ring.blocked_pushes = registry.GetCounter(
          kMetricRingBlockedPushes,
          "Router pushes that found the ring full and had to spin or park.",
          labels);
      ring.producer_parks = registry.GetCounter(
          kMetricRingProducerParks,
          "Times the router exhausted its spin budget and parked on a full "
          "ring.",
          labels);
      ring.consumer_parks = registry.GetCounter(
          kMetricRingConsumerParks,
          "Times the worker exhausted its spin budget and parked on an "
          "empty ring.",
          labels);
    }
  }
  timeline_ = options_.enable_timeline;
  if (timeline_) {
    // Construction is single-threaded; the lock only satisfies the thread-
    // safety analysis (readers appear once the server starts below).
    util::MutexLock lock(&timeline_mu_);
    metrics_timeline_ =
        std::make_unique<obs::MetricsTimeline>(options_.timeline);
    alert_engine_ =
        std::make_unique<obs::AlertEngine>(options_.alert_rules);
    alert_trace_ = obs::TraceRing(options_.alert_trace_capacity);
  }
  if (options_.introspect_port >= 0) {
    obs::IntrospectionServerOptions server_options;
    server_options.port = static_cast<int>(options_.introspect_port);
    obs::IntrospectionHandlers handlers;
    handlers.metrics = [this] { return PublishedMetricsSnapshot(); };
    handlers.health = [this] { return HealthSnapshot(); };
    handlers.status = [this] { return StatusSnapshot(); };
    handlers.traces = [this] { return PublishedTraces(); };
    handlers.spans = [this] { return PublishedSpans(); };
    handlers.queryz_json = [this] { return QueryzJson(); };
    handlers.streamz_json = [this] { return StreamzJson(); };
    handlers.timez_json = [this](const std::string& query) {
      return TimezJson(query);
    };
    handlers.alertz_json = [this] { return AlertzJson(); };
    server_ = std::make_unique<obs::IntrospectionServer>(server_options,
                                                         std::move(handlers));
    const util::Status started = server_->Start();
    if (!started.ok()) {
      // Introspection is auxiliary: a taken port must not kill monitoring.
      SPRINGDTW_LOG(Warning)
          << "introspection server disabled: " << started.ToString();
      server_.reset();
    }
  }
}

ShardedMonitor::~ShardedMonitor() {
  // Stop the server first: its handlers read shard state.
  if (server_ != nullptr) server_->Stop();
  Stop();
}

int64_t ShardedMonitor::AddStream(std::string name, bool repair_missing) {
  if (started()) Drain();
  const int64_t stream_id = static_cast<int64_t>(streams_.size());
  StreamInfo info;
  info.worker = static_cast<int64_t>(
      HashName(name) % static_cast<uint64_t>(num_workers()));
  info.repair_missing = repair_missing;
  Shard& shard = *shards_[static_cast<size_t>(info.worker)];
  // The router repairs before sharding, so the shard stream runs with
  // repair off and only ever sees finite values.
  info.local_id = shard.engine->AddStream(name, /*repair_missing=*/false);
  info.name = std::move(name);
  shard.global_stream_ids.push_back(stream_id);
  shard.stream_ticks.push_back(0);
  // order: relaxed — introspection gauge; the server tolerates staleness.
  shard.stream_count.fetch_add(1, std::memory_order_relaxed);
  streams_.push_back(std::move(info));
  return stream_id;
}

int64_t ShardedMonitor::FindStream(std::string_view name) const {
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].name == name) return static_cast<int64_t>(i);
  }
  return -1;
}

util::StatusOr<int64_t> ShardedMonitor::AddQuery(
    int64_t stream_id, std::string name, std::vector<double> query,
    const core::SpringOptions& options) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  if (started()) Drain();
  StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
  Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
  QueryInfo info;
  info.stream_id = stream_id;
  info.name = name;
  auto local = shard.engine->AddQuery(stream.local_id, std::move(name),
                                      std::move(query), options);
  if (!local.ok()) return local.status();
  info.local_id = *local;
  const int64_t query_id = static_cast<int64_t>(queries_.size());
  shard.global_query_ids.push_back(query_id);
  // order: relaxed — introspection gauge; the server tolerates staleness.
  shard.query_count.fetch_add(1, std::memory_order_relaxed);
  queries_.push_back(std::move(info));
  return query_id;
}

util::StatusOr<int64_t> ShardedMonitor::RemoveQuery(int64_t query_id) {
  if (query_id < 0 || query_id >= num_queries() ||
      queries_[static_cast<size_t>(query_id)].removed) {
    return util::NotFoundError(
        util::StrFormat("no query %lld", static_cast<long long>(query_id)));
  }
  if (started()) AwaitQuiescent();
  QueryInfo& query = queries_[static_cast<size_t>(query_id)];
  StreamInfo& stream = streams_[static_cast<size_t>(query.stream_id)];
  Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
  // A candidate flushed by the removal is an end-of-stream-style report:
  // the flushing flag stamps it kFlushSeq so DeliverPending orders it
  // after every buffered tick match.
  shard.flushing = true;
  auto flushed = shard.engine->RemoveQuery(query.local_id);
  shard.flushing = false;
  if (!flushed.ok()) return flushed.status();
  // Final tick count is exact post-barrier; freeze it before the tombstone
  // makes DeliverPending skip this query.
  query.stats.ticks = stream.pushes;
  query.removed = true;
  // order: relaxed — introspection gauge; the server tolerates staleness.
  shard.query_count.fetch_add(-1, std::memory_order_relaxed);
  DeliverPending();
  RefreshCostAccounting();
  if (introspect_) {
    // Same reasoning as FlushAll: the mutation ran on the caller thread
    // post-barrier, so republish or scrapes would keep seeing the removed
    // query's gauges.
    const uint64_t now = NowNanos();
    PublishShard(&shard, now);
    PublishRouter(now);
  }
  return *flushed;
}

std::vector<ShardedMonitor::QueryListEntry> ShardedMonitor::ListQueries()
    const {
  std::vector<QueryListEntry> entries;
  entries.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    const QueryInfo& query = queries_[i];
    if (query.removed) continue;
    QueryListEntry entry;
    entry.query_id = static_cast<int64_t>(i);
    entry.stream_id = query.stream_id;
    entry.name = query.name;
    entry.stream_name = streams_[static_cast<size_t>(query.stream_id)].name;
    entry.ticks = query.stats.ticks;
    entry.matches = query.stats.matches;
    entry.cells = query.cells;
    entry.last_match_seq = query.last_match_seq;
    entry.est_cpu_nanos = query.est_cpu_nanos;
    entries.push_back(std::move(entry));
  }
  return entries;
}

void ShardedMonitor::AddSink(MatchSink* sink) {
  SPRINGDTW_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void ShardedMonitor::Start() {
  if (started()) return;
  for (auto& shard : shards_) {
    if (introspect_) {
      // order: relaxed — watchdog stamp; the health check tolerates a
      // stale read (it only widens the staleness window by one scrape).
      shard->last_progress_nanos.store(NowNanos(),
                                       std::memory_order_relaxed);
    }
    shard->thread = std::thread(&ShardedMonitor::WorkerLoop, this,
                                shard.get());
  }
  // order: relaxed — the std::thread constructor above is the
  // happens-before edge to the workers; this flag is router-thread
  // bookkeeping.
  started_.store(true, std::memory_order_relaxed);
}

void ShardedMonitor::WorkerLoop(Shard* shard) {
  TickMessage msg;
  for (;;) {
    shard->queue->Pop(&msg);
    if (msg.kind == TickMessage::Kind::kStop) {
      // Final snapshot so post-run scrapes (and a lingering server) see the
      // complete worker state.
      if (introspect_) PublishShard(shard, NowNanos());
      // order: release — pairs with Stop()'s drain acquire; publishes the
      // final engine state before the thread exits.
      shard->consumed.fetch_add(1, std::memory_order_release);
      return;
    }
    // Stage profiling is sampled alongside spans: when span sampling is
    // active only the message carrying the sampled tick pays for clock
    // reads and histogram observes (1 in ~4 messages at the 1-in-64
    // default); with spans off (metrics-only embedders) every message is
    // profiled so the stage histograms stay exact.
    const bool profile_msg =
        profile_ && (span_every_ == 0 || msg.span_index >= 0);
    uint64_t t_pop = 0;
    if (profile_msg) {
      t_pop = NowNanos();
      if (msg.enqueue_nanos != 0) {
        shard->stage_ring_residency->Observe(
            static_cast<double>(t_pop - msg.enqueue_nanos));
      }
    }
    shard->msg_seq0 = msg.seq0;
    shard->msg_base_tick =
        shard->stream_ticks[static_cast<size_t>(msg.local_stream)];
    const size_t matches_before = shard->matches.size();
    const auto pushed = shard->engine->PushBatch(
        msg.local_stream,
        std::span<const double>(msg.values,
                                static_cast<size_t>(msg.count)));
    SPRINGDTW_CHECK(pushed.ok())
        << "shard ingest failed: " << pushed.status().ToString();
    shard->stream_ticks[static_cast<size_t>(msg.local_stream)] += msg.count;
    if (profile_) {
      uint64_t t_done = 0;
      if (profile_msg) {
        t_done = NowNanos();
        shard->stage_worker_pass->Observe(
            static_cast<double>(t_done - t_pop));
      }
      if (msg.span_index >= 0) {
        // Assemble the sampled tick's span: router stamps ride in the
        // message, worker stamps are local, delivery stamps come at the
        // barrier. Visible to the router via the `consumed` release.
        obs::TickSpan span;
        span.seq = msg.seq0 + static_cast<uint64_t>(msg.span_index);
        span.stream_id = shard->global_stream_ids[static_cast<size_t>(
            msg.local_stream)];
        span.client_send_nanos = msg.span_client_send_nanos;
        span.server_recv_nanos = msg.span_recv_nanos;
        span.router_enqueue_nanos = msg.enqueue_nanos;
        span.worker_pop_nanos = t_pop;
        span.worker_done_nanos = t_done;
        for (size_t i = matches_before; i < shard->matches.size(); ++i) {
          if (shard->matches[i].seq == span.seq) ++span.matches;
        }
        shard->pending_spans.push_back(span);
      }
      if (introspect_) {
        if (t_done == 0) t_done = NowNanos();
        // order: relaxed — watchdog stamp; see Start().
        shard->last_progress_nanos.store(t_done, std::memory_order_relaxed);
        // order: relaxed — introspection counter; never synchronization.
        shard->ticks_ingested.fetch_add(msg.count,
                                        std::memory_order_relaxed);
        // Republish on the throttle interval, and opportunistically
        // whenever the ring runs dry (a scrape then sees fully current
        // state). The dry-ring publish keeps half the throttle as a floor:
        // on a saturated machine the ring drains between bursts constantly,
        // and snapshotting the full registry each time would dominate the
        // worker — drain barriers already republish unconditionally, so
        // post-drain scrapes never depend on this path. Must happen before
        // the `consumed` release below: after a drain barrier the worker
        // is provably not inside PublishShard, so the router may mutate
        // the shard registry (AddQuery) safely.
        if (t_done - shard->last_publish_nanos >= publish_interval_nanos_ ||
            (shard->queue->ApproxSize() == 0 &&
             t_done - shard->last_publish_nanos >=
                 publish_interval_nanos_ / 2)) {
          PublishShard(shard, t_done);
        }
      }
    }
    // order: release — publishes everything written above (engine state,
    // buffered matches) to the drain barrier's acquire of `consumed`.
    shard->consumed.fetch_add(1, std::memory_order_release);
  }
}

void ShardedMonitor::PublishShard(Shard* shard, uint64_t now_nanos) {
  shard->engine->RefreshObservabilityGauges();
  obs::MetricsSnapshot snapshot = shard->obs->registry().Snapshot();
  std::vector<obs::TraceEvent> traces;
  int64_t dropped = 0;
  if (shard->obs->trace().enabled()) {
    traces = shard->obs->trace().Events();
    dropped = shard->obs->trace().dropped();
  }
  // order: relaxed — introspection gauge; the server tolerates staleness.
  shard->pending_candidates.store(shard->engine->PendingCandidateCount(),
                                  std::memory_order_relaxed);
  {
    util::MutexLock lock(&shard->publish_mu);
    shard->published_metrics = std::move(snapshot);
    shard->published_traces = std::move(traces);
    shard->published_trace_dropped = dropped;
  }
  shard->last_publish_nanos = now_nanos;
}

util::Status ShardedMonitor::Push(int64_t stream_id, double value,
                                  uint64_t client_send_nanos) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  if (!started()) {
    return util::FailedPreconditionError(
        "Start() the monitor before pushing");
  }
  StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
  if (!stream.repair_missing && ts::IsMissing(value)) {
    return util::InvalidArgumentError(
        "missing value pushed to a stream with repair disabled");
  }
  RouteValue(stream, value, client_send_nanos);
  return util::Status::Ok();
}

util::Status ShardedMonitor::PushBatch(int64_t stream_id,
                                       std::span<const double> values,
                                       uint64_t client_send_nanos) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  if (!started()) {
    return util::FailedPreconditionError(
        "Start() the monitor before pushing");
  }
  StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
  for (const double value : values) {
    // Same error contract as MonitorEngine: values before the first NaN on
    // a repair-disabled stream are processed, then the push fails.
    if (!stream.repair_missing && ts::IsMissing(value)) {
      return util::InvalidArgumentError(
          "missing value pushed to a stream with repair disabled");
    }
    RouteValue(stream, value, client_send_nanos);
  }
  return util::Status::Ok();
}

void ShardedMonitor::RouteValue(StreamInfo& stream, double value,
                                uint64_t client_send_nanos) {
  if (stream.repair_missing) {
    if (!stream.repairer_seeded && !ts::IsMissing(value)) {
      stream.repairer = ts::StreamingRepairer(value);
      stream.repairer_seeded = true;
    }
    value = stream.repairer.Next(value);
  }
  // Stage into the (single) pending message; flush it first if it belongs
  // to a different stream or is full, so in-message sequence numbers stay
  // consecutive.
  if (has_staged_ && (staged_worker_ != stream.worker ||
                      staged_.local_stream !=
                          static_cast<int32_t>(stream.local_id) ||
                      staged_.count == kTickBatch)) {
    FlushStaged();
  }
  if (!has_staged_) {
    staged_ = TickMessage{};
    staged_.local_stream = static_cast<int32_t>(stream.local_id);
    staged_.seq0 = next_seq_;
    staged_worker_ = stream.worker;
    has_staged_ = true;
  }
  // Span sampling: claim this value (one per message at most) when the
  // cadence countdown expires. The countdown is equivalent to
  // `next_seq_ % span_every_ == 0` (the router thread is the only writer)
  // but avoids a 64-bit modulo on every ingested tick.
  if (span_every_ != 0 && --span_countdown_ <= 0) {
    span_countdown_ = span_every_;
    if (staged_.span_index < 0) {
      staged_.span_index = staged_.count;
      staged_.span_client_send_nanos = client_send_nanos;
      staged_.span_recv_nanos = NowNanos();
    }
  }
  staged_.values[staged_.count++] = value;
  ++next_seq_;
  ++stream.pushes;
  if (staged_.count == kTickBatch) FlushStaged();
}

void ShardedMonitor::FlushStaged() {
  if (!has_staged_) return;
  Shard& shard = *shards_[static_cast<size_t>(staged_worker_)];
  // order: relaxed — produced is router-owned; the ring's own
  // acquire/release protocol carries the message payload, and the drain
  // barrier re-reads produced on this same thread.
  shard.produced.fetch_add(1, std::memory_order_relaxed);
  // Same sampling policy as the worker: with span sampling active only the
  // span-carrying message is stamped (unsampled messages keep
  // enqueue_nanos == 0, which the worker reads as "no residency sample");
  // with spans off every message is profiled.
  if (profile_ && (span_every_ == 0 || staged_.span_index >= 0)) {
    const uint64_t t_push = NowNanos();
    staged_.enqueue_nanos = t_push;
    shard.queue->Push(staged_);
    const uint64_t t_pushed = NowNanos();
    stage_router_enqueue_->Observe(static_cast<double>(t_pushed - t_push));
    if (introspect_ &&
        t_pushed - router_last_publish_nanos_ >= publish_interval_nanos_) {
      PublishRouter(t_pushed);
    }
  } else {
    shard.queue->Push(staged_);
  }
  has_staged_ = false;
  staged_worker_ = -1;
}

void ShardedMonitor::RefreshRingMetrics() {
  if (!profile_) return;
  for (size_t w = 0; w < shards_.size(); ++w) {
    RingObs& ring = ring_obs_[w];
    const SpscQueue<TickMessage>& queue = *shards_[w]->queue;
    ring.occupancy->Set(static_cast<double>(queue.ApproxSize()));
    const uint64_t blocked = queue.blocked_pushes();
    ring.blocked_pushes->Increment(
        static_cast<int64_t>(blocked - ring.blocked_exported));
    ring.blocked_exported = blocked;
    const uint64_t producer_parks = queue.producer_parks();
    ring.producer_parks->Increment(
        static_cast<int64_t>(producer_parks - ring.producer_parks_exported));
    ring.producer_parks_exported = producer_parks;
    const uint64_t consumer_parks = queue.consumer_parks();
    ring.consumer_parks->Increment(
        static_cast<int64_t>(consumer_parks - ring.consumer_parks_exported));
    ring.consumer_parks_exported = consumer_parks;
  }
}

void ShardedMonitor::PublishRouter(uint64_t now_nanos) {
  RefreshRingMetrics();
  obs::MetricsSnapshot snapshot = router_obs_->registry().Snapshot();
  {
    util::MutexLock lock(&router_publish_mu_);
    router_published_metrics_ = std::move(snapshot);
    if (span_ring_.enabled()) {
      published_spans_.spans = span_ring_.Spans();
      published_spans_.dropped = span_ring_.dropped();
    }
  }
  router_last_publish_nanos_ = now_nanos;
  // Timeline recording + alert evaluation ride the same publish cadence
  // (throttled internally, so barrier-heavy callers don't re-fold the
  // fleet snapshot on every Drain).
  PollTimeline();
}

void ShardedMonitor::PollTimeline(bool force) {
  if (!timeline_) return;
  const uint64_t now = NowNanos();
  if (!force && publish_interval_nanos_ > 0 &&
      timeline_last_poll_nanos_ != 0 &&
      now - timeline_last_poll_nanos_ < publish_interval_nanos_) {
    return;
  }
  timeline_last_poll_nanos_ = now;
  const obs::MetricsSnapshot merged = PublishedMetricsSnapshot();
  bool page = false;
  {
    util::MutexLock lock(&timeline_mu_);
    metrics_timeline_->Record(now, merged);
    alert_engine_->Evaluate(now, merged, *metrics_timeline_, &alert_trace_);
    page = alert_engine_->AnyFiringPage();
  }
  // order: relaxed — advisory verdict for /healthz scrapes; the scrape
  // needs no happens-before with the evaluation pass.
  alert_page_firing_.store(page, std::memory_order_relaxed);
}

void ShardedMonitor::AwaitQuiescent() {
  FlushStaged();
  for (auto& shard : shards_) {
    // order: relaxed — produced is only ever written by this (router)
    // thread.
    const uint64_t produced =
        shard->produced.load(std::memory_order_relaxed);
    // order: acquire — pairs with the worker's release fetch_add; once the
    // counts match, everything the worker wrote (engine state, buffered
    // matches, pending spans) is visible to this thread.
    while (shard->consumed.load(std::memory_order_acquire) < produced) {
      std::this_thread::yield();
    }
  }
}

int64_t ShardedMonitor::Drain() {
  if (started()) AwaitQuiescent();
  const int64_t delivered = DeliverPending();
  // Post-barrier the engines are caller-visible: refresh the per-query
  // cost cache so ListQueries / the published /queryz snapshot are exact
  // as of this barrier.
  RefreshCostAccounting();
  // Barriers republish the router snapshot unconditionally so a scrape
  // right after a drain sees current stage/ring metrics even on a
  // low-traffic pipeline that never hits the throttle interval.
  if (introspect_) PublishRouter(NowNanos());
  return delivered;
}

int64_t ShardedMonitor::DeliverPending() {
  delivery_scratch_.clear();
  for (auto& shard : shards_) {
    delivery_scratch_.insert(delivery_scratch_.end(),
                             shard->matches.begin(), shard->matches.end());
    shard->matches.clear();
  }
  std::sort(delivery_scratch_.begin(), delivery_scratch_.end(),
            [](const PendingMatch& a, const PendingMatch& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.global_query_id < b.global_query_id;
            });
  const uint64_t delivery_now =
      (profile_ && !delivery_scratch_.empty()) ? NowNanos() : 0;
  for (const PendingMatch& pending : delivery_scratch_) {
    if (profile_ && pending.buffered_nanos != 0) {
      stage_delivery_delay_->Observe(
          static_cast<double>(delivery_now - pending.buffered_nanos));
    }
    QueryInfo& query =
        queries_[static_cast<size_t>(pending.global_query_id)];
    ++query.stats.matches;
    if (pending.seq != kFlushSeq) {
      query.last_match_seq = static_cast<int64_t>(pending.seq);
    }
    query.stats.output_delay.Add(static_cast<double>(
        pending.match.report_time - pending.match.end));
    MatchOrigin origin;
    origin.stream_id = query.stream_id;
    origin.query_id = pending.global_query_id;
    origin.stream_name = streams_[static_cast<size_t>(query.stream_id)].name;
    origin.query_name = query.name;
    origin.global_seq = pending.seq == kFlushSeq
                            ? -1
                            : static_cast<int64_t>(pending.seq);
    for (MatchSink* sink : sinks_) sink->OnMatch(origin, pending.match);
  }
  for (QueryInfo& query : queries_) {
    if (query.removed) continue;
    query.stats.ticks =
        streams_[static_cast<size_t>(query.stream_id)].pushes;
  }
  // Completed spans: every worker stage is done (the barrier made
  // pending_spans visible), so stamp delivery, give the embedder its
  // subscriber_write stamp, then observe + record.
  span_scratch_.clear();
  for (auto& shard : shards_) {
    span_scratch_.insert(span_scratch_.end(), shard->pending_spans.begin(),
                         shard->pending_spans.end());
    shard->pending_spans.clear();
  }
  if (!span_scratch_.empty()) {
    std::sort(span_scratch_.begin(), span_scratch_.end(),
              [](const obs::TickSpan& a, const obs::TickSpan& b) {
                return a.seq < b.seq;
              });
    const uint64_t span_now = NowNanos();
    for (obs::TickSpan& span : span_scratch_) {
      span.delivered_nanos = span_now;
      if (span_finalizer_ != nullptr) span_finalizer_(&span);
      ObserveSpan(span);
      span_ring_.Record(span);
    }
  }
  // order: relaxed — introspection counter; never synchronization.
  matches_delivered_.fetch_add(
      static_cast<int64_t>(delivery_scratch_.size()),
      std::memory_order_relaxed);
  return static_cast<int64_t>(delivery_scratch_.size());
}

int64_t ShardedMonitor::FlushAll() {
  int64_t delivered = Drain();
  // Post-barrier the caller owns the engines; flush them inline and mark
  // the matches so they order after every tick match.
  for (auto& shard : shards_) {
    shard->flushing = true;
    shard->engine->FlushAll();
    shard->flushing = false;
  }
  delivered += DeliverPending();
  RefreshCostAccounting();
  if (introspect_) {
    // Republish everything: the flush mutated engine state on the caller
    // thread, which the workers (parked until the router sends more work)
    // would otherwise never pick up. Safe post-barrier — a worker is
    // provably outside PublishShard and stays parked until this thread
    // routes to it again.
    const uint64_t now = NowNanos();
    for (auto& shard : shards_) PublishShard(shard.get(), now);
    PublishRouter(now);
  }
  return delivered;
}

void ShardedMonitor::Stop() {
  if (!started()) return;
  Drain();
  for (auto& shard : shards_) {
    TickMessage stop;
    stop.kind = TickMessage::Kind::kStop;
    // order: relaxed — router-owned counter; see FlushStaged().
    shard->produced.fetch_add(1, std::memory_order_relaxed);
    shard->queue->Push(stop);
  }
  for (auto& shard : shards_) {
    shard->thread.join();
  }
  // order: relaxed — the joins above are the synchronization edge; this
  // flag is router-thread bookkeeping.
  started_.store(false, std::memory_order_relaxed);
}

int64_t ShardedMonitor::worker_of_stream(int64_t stream_id) const {
  SPRINGDTW_CHECK(stream_id >= 0 && stream_id < num_streams());
  return streams_[static_cast<size_t>(stream_id)].worker;
}

int64_t ShardedMonitor::stream_ticks(int64_t stream_id) const {
  SPRINGDTW_CHECK(stream_id >= 0 && stream_id < num_streams());
  return streams_[static_cast<size_t>(stream_id)].pushes;
}

const QueryStats& ShardedMonitor::stats(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  return queries_[static_cast<size_t>(query_id)].stats;
}

obs::MetricsSnapshot ShardedMonitor::MergedMetricsSnapshot() {
  Drain();
  std::vector<obs::MetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size() + 1);
  if (router_obs_ != nullptr) {
    RefreshRingMetrics();
    snapshots.push_back(router_obs_->registry().Snapshot());
  }
  for (auto& shard : shards_) {
    if (shard->obs == nullptr) continue;
    shard->engine->RefreshObservabilityGauges();
    snapshots.push_back(shard->obs->registry().Snapshot());
  }
  return obs::MergeSnapshots(snapshots);
}

util::MemoryFootprint ShardedMonitor::Footprint() {
  Drain();
  util::MemoryFootprint fp;
  for (auto& shard : shards_) {
    fp.Merge(shard->engine->Footprint());
  }
  return fp;
}

std::vector<uint8_t> ShardedMonitor::SerializeState() {
  // Full barrier: pending matches are delivered (a checkpoint never holds
  // undelivered matches), engines quiescent and caller-visible.
  Drain();
  util::ByteWriter writer;
  writer.WriteU32(kMonitorMagic);
  writer.WriteU32(kMonitorVersion);
  writer.WriteU64(next_seq_);
  writer.WriteU64(streams_.size());
  for (const StreamInfo& stream : streams_) {
    writer.WriteString(stream.name);
    writer.WriteBool(stream.repair_missing);
    writer.WriteBool(stream.repairer_seeded);
    writer.WriteDouble(stream.repairer.last());
    writer.WriteI64(stream.pushes);
  }
  // Removed queries are omitted (like the engine's checkpoints), so a
  // restored monitor holds a dense query set; global ids therefore compact
  // across a restore while names stay stable.
  uint64_t active = 0;
  for (const QueryInfo& query : queries_) {
    if (!query.removed) ++active;
  }
  writer.WriteU64(active);
  for (size_t i = 0; i < queries_.size(); ++i) {
    const QueryInfo& query = queries_[i];
    if (query.removed) continue;
    const Shard& shard = *shards_[static_cast<size_t>(
        streams_[static_cast<size_t>(query.stream_id)].worker)];
    writer.WriteI64(query.stream_id);
    writer.WriteString(query.name);
    // One snapshot per query, not per engine: restorable into any worker
    // count.
    writer.WriteBytes(shard.engine->SerializeQueryState(query.local_id));
    WriteStats(&writer, query.stats);
  }
  // order: relaxed — introspection stamp (checkpoint age); staleness only
  // skews the reported age by one scrape.
  last_checkpoint_nanos_.store(NowNanos(), std::memory_order_relaxed);
  return writer.Take();
}

util::Status ShardedMonitor::RestoreState(std::span<const uint8_t> bytes) {
  if (started() || num_streams() > 0 || num_queries() > 0) {
    return util::FailedPreconditionError(
        "RestoreState requires a fresh, unstarted monitor");
  }
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kMonitorMagic) {
    return util::InvalidArgumentError("not a ShardedMonitor checkpoint");
  }
  if (version != kMonitorVersion) {
    return util::InvalidArgumentError("unsupported checkpoint version");
  }
  reader.ReadU64(&next_seq_);

  uint64_t num_ckpt_streams = 0;
  reader.ReadU64(&num_ckpt_streams);
  for (uint64_t i = 0; reader.ok() && i < num_ckpt_streams; ++i) {
    std::string name;
    bool repair_missing = true;
    bool seeded = false;
    double last = 0.0;
    int64_t pushes = 0;
    reader.ReadString(&name);
    reader.ReadBool(&repair_missing);
    reader.ReadBool(&seeded);
    reader.ReadDouble(&last);
    reader.ReadI64(&pushes);
    if (!reader.ok() || pushes < 0) {
      return util::InvalidArgumentError("checkpoint stream corrupt");
    }
    const int64_t stream_id = AddStream(std::move(name), repair_missing);
    StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
    stream.repairer_seeded = seeded;
    stream.repairer = ts::StreamingRepairer(last);
    stream.pushes = pushes;
    Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
    shard.stream_ticks[static_cast<size_t>(stream.local_id)] = pushes;
  }

  uint64_t num_ckpt_queries = 0;
  reader.ReadU64(&num_ckpt_queries);
  for (uint64_t i = 0; reader.ok() && i < num_ckpt_queries; ++i) {
    int64_t stream_id = 0;
    std::string name;
    std::span<const uint8_t> snapshot;
    reader.ReadI64(&stream_id);
    reader.ReadString(&name);
    if (!reader.ReadBytesSpan(&snapshot)) {
      return util::InvalidArgumentError("checkpoint truncated");
    }
    QueryStats stats;
    if (!ReadStats(&reader, &stats)) {
      return util::InvalidArgumentError("checkpoint stats truncated");
    }
    if (stream_id < 0 || stream_id >= num_streams()) {
      return util::InvalidArgumentError("checkpoint query has bad stream");
    }
    StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
    Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
    auto local = shard.engine->AddQueryFromSnapshot(stream.local_id, name,
                                                    snapshot);
    if (!local.ok()) return local.status();
    QueryInfo info;
    info.stream_id = stream_id;
    info.name = std::move(name);
    info.local_id = *local;
    info.stats = stats;
    shard.global_query_ids.push_back(static_cast<int64_t>(queries_.size()));
    // order: relaxed — introspection gauge; the server tolerates
    // staleness.
    shard.query_count.fetch_add(1, std::memory_order_relaxed);
    queries_.push_back(std::move(info));
  }

  if (!reader.ok()) {
    return util::InvalidArgumentError("checkpoint truncated");
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("checkpoint has trailing bytes");
  }
  return util::Status::Ok();
}

int ShardedMonitor::introspection_port() const {
  return server_ != nullptr ? server_->port() : -1;
}

obs::WorkerHealth ShardedMonitor::WorkerHealthFor(int64_t worker,
                                                  uint64_t now_nanos) const {
  const Shard& shard = *shards_[static_cast<size_t>(worker)];
  obs::WorkerHealth health;
  health.worker = worker;
  // order: relaxed ×2 — advisory lag estimate for /healthz; the clamp
  // below absorbs torn produced/consumed pairs.
  const uint64_t produced = shard.produced.load(std::memory_order_relaxed);
  const uint64_t consumed = shard.consumed.load(std::memory_order_relaxed);
  // Unsynchronized reads can observe consumed ahead of produced; clamp.
  health.lag_messages = produced > consumed ? produced - consumed : 0;
  if (!started()) {
    health.state = "stopped";
    return health;
  }
  if (produced == 0 && consumed == 0) {
    // Never routed to: silence is expected, not a stall.
    health.state = "idle";
    return health;
  }
  // order: relaxed — watchdog stamp read; staleness only widens the
  // reported window by one scrape.
  const uint64_t last_progress =
      shard.last_progress_nanos.load(std::memory_order_relaxed);
  const double ms_since =
      last_progress == 0 || now_nanos <= last_progress
          ? 0.0
          : static_cast<double>(now_nanos - last_progress) / 1e6;
  health.ms_since_progress = ms_since;
  if (ms_since > options_.staleness_budget_ms) {
    health.state = "stale";
    health.healthy = false;
  } else {
    health.state = "ok";
  }
  return health;
}

obs::HealthReport ShardedMonitor::HealthSnapshot() const {
  obs::HealthReport report;
  report.staleness_budget_ms = options_.staleness_budget_ms;
  if (!introspect_) {
    // Without the watchdog stamps a verdict would be meaningless; report
    // healthy-but-disabled rather than a false stall.
    report.state = "disabled";
    return report;
  }
  const uint64_t now = NowNanos();
  report.workers.reserve(shards_.size());
  for (int64_t w = 0; w < num_workers(); ++w) {
    report.workers.push_back(WorkerHealthFor(w, now));
    report.healthy = report.healthy && report.workers.back().healthy;
  }
  report.state = !started() ? "stopped" : (report.healthy ? "ok" : "stale");
  // order: relaxed — advisory verdict; see PollTimeline().
  if (report.healthy &&
      alert_page_firing_.load(std::memory_order_relaxed)) {
    // A firing page-severity alert is an operator-facing "take me out of
    // rotation" verdict, same as a stale worker.
    report.healthy = false;
    report.state = "alerting";
  }
  return report;
}

obs::StatusReport ShardedMonitor::StatusSnapshot() const {
  obs::StatusReport report;
  report.role = "sharded_monitor";
  report.started = started();
  const uint64_t now = NowNanos();
  report.uptime_seconds = static_cast<double>(now - start_nanos_) / 1e9;
  report.num_workers = num_workers();
  // order: relaxed — introspection counter read; staleness is fine.
  report.matches_delivered =
      matches_delivered_.load(std::memory_order_relaxed);
  // order: relaxed — introspection stamp read; staleness is fine.
  const uint64_t checkpoint_nanos =
      last_checkpoint_nanos_.load(std::memory_order_relaxed);
  if (checkpoint_nanos != 0 && now > checkpoint_nanos) {
    report.checkpoint_age_seconds =
        static_cast<double>(now - checkpoint_nanos) / 1e9;
  }
  report.workers.reserve(shards_.size());
  for (int64_t w = 0; w < num_workers(); ++w) {
    const Shard& shard = *shards_[static_cast<size_t>(w)];
    obs::WorkerStatus status;
    status.worker = w;
    status.state = introspect_ ? WorkerHealthFor(w, now).state : "unknown";
    // order: relaxed ×6 — /statusz snapshot rows are advisory; each field
    // is independently torn-tolerant and never used for synchronization.
    status.messages_produced =
        shard.produced.load(std::memory_order_relaxed);
    status.messages_consumed =
        shard.consumed.load(std::memory_order_relaxed);
    status.ticks = shard.ticks_ingested.load(std::memory_order_relaxed);
    status.streams = shard.stream_count.load(std::memory_order_relaxed);
    status.queries = shard.query_count.load(std::memory_order_relaxed);
    status.pending_candidates =
        shard.pending_candidates.load(std::memory_order_relaxed);
    status.ring_occupancy =
        static_cast<uint64_t>(shard.queue->ApproxSize());
    status.ring_capacity = static_cast<uint64_t>(shard.queue->capacity());
    status.ring_blocked_pushes = shard.queue->blocked_pushes();
    status.ring_producer_parks = shard.queue->producer_parks();
    status.ring_consumer_parks = shard.queue->consumer_parks();
    report.num_streams += status.streams;
    report.num_queries += status.queries;
    report.ticks_ingested += status.ticks;
    report.workers.push_back(std::move(status));
  }
  return report;
}

void ShardedMonitor::SetAuxMetricsProvider(
    std::function<obs::MetricsSnapshot()> provider) {
  aux_metrics_provider_ = std::move(provider);
}

obs::MetricsSnapshot ShardedMonitor::PublishedMetricsSnapshot() const {
  std::vector<obs::MetricsSnapshot> snapshots;
  if (introspect_) {
    snapshots.reserve(shards_.size() + 2);
    {
      util::MutexLock lock(&router_publish_mu_);
      snapshots.push_back(router_published_metrics_);
    }
    for (const auto& shard : shards_) {
      util::MutexLock lock(&shard->publish_mu);
      snapshots.push_back(shard->published_metrics);
    }
    if (aux_metrics_provider_ != nullptr) {
      snapshots.push_back(aux_metrics_provider_());
    }
  }
  return obs::MergeSnapshots(snapshots);
}

obs::TracezReport ShardedMonitor::PublishedTraces() const {
  obs::TracezReport report;
  if (!introspect_) return report;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->publish_mu);
    report.events.insert(report.events.end(),
                         shard->published_traces.begin(),
                         shard->published_traces.end());
    report.dropped += shard->published_trace_dropped;
  }
  if (timeline_) {
    // Alert transitions live in a router-side ring; splice them in so
    // /tracez shows rule state changes alongside match-lifecycle events.
    util::MutexLock lock(&timeline_mu_);
    const std::vector<obs::TraceEvent> events = alert_trace_.Events();
    report.events.insert(report.events.end(), events.begin(), events.end());
    report.dropped += alert_trace_.dropped();
  }
  return report;
}

obs::SpanzReport ShardedMonitor::PublishedSpans() const {
  if (!introspect_) return obs::SpanzReport{};
  util::MutexLock lock(&router_publish_mu_);
  return published_spans_;
}

std::string ShardedMonitor::QueryzJson() const {
  util::MutexLock lock(&router_publish_mu_);
  return RenderQueryzJson(published_costs_, kCostTopK);
}

std::string ShardedMonitor::StreamzJson() const {
  util::MutexLock lock(&router_publish_mu_);
  return RenderStreamzJson(published_costs_, kCostTopK);
}

std::string ShardedMonitor::TimezJson(const std::string& query) const {
  util::MutexLock lock(&timeline_mu_);
  if (metrics_timeline_ == nullptr) {
    return "{\"tiers\":[],\"records\":0,\"dropped_channels\":0,"
           "\"channels\":[]}";
  }
  return obs::RenderTimezJson(*metrics_timeline_, query);
}

std::string ShardedMonitor::AlertzJson() const {
  util::MutexLock lock(&timeline_mu_);
  if (alert_engine_ == nullptr) {
    return "{\"rules\":[],\"firing\":0,\"firing_page\":0}";
  }
  return obs::RenderAlertzJson(alert_engine_->Statuses(), NowNanos());
}

std::vector<obs::AlertStatus> ShardedMonitor::AlertStatuses() const {
  util::MutexLock lock(&timeline_mu_);
  if (alert_engine_ == nullptr) return {};
  return alert_engine_->Statuses();
}

void ShardedMonitor::SetSpanFinalizer(SpanFinalizer finalizer) {
  span_finalizer_ = std::move(finalizer);
}

void ShardedMonitor::ObserveSpan(const obs::TickSpan& span) {
  if (!profile_) return;
  // Stamps come from one monotonic clock with happens-before edges between
  // every consecutive pair, so each stage is non-negative by construction;
  // the clamp only guards a remote client's foreign clock.
  const auto observe = [](obs::Histogram* histogram, uint64_t from,
                          uint64_t to) {
    if (histogram == nullptr || from == 0 || to == 0) return;
    histogram->Observe(to >= from ? static_cast<double>(to - from) : 0.0);
  };
  observe(e2e_client_to_server_, span.client_send_nanos,
          span.server_recv_nanos);
  observe(e2e_ingest_to_enqueue_, span.server_recv_nanos,
          span.router_enqueue_nanos);
  observe(e2e_ring_residency_, span.router_enqueue_nanos,
          span.worker_pop_nanos);
  observe(e2e_worker_pass_, span.worker_pop_nanos, span.worker_done_nanos);
  observe(e2e_delivery_wait_, span.worker_done_nanos, span.delivered_nanos);
  observe(e2e_subscriber_write_, span.delivered_nanos,
          span.subscriber_write_nanos);
  const uint64_t origin = span.client_send_nanos != 0
                              ? span.client_send_nanos
                              : span.server_recv_nanos;
  const uint64_t finish = span.subscriber_write_nanos != 0
                              ? span.subscriber_write_nanos
                              : span.delivered_nanos;
  observe(e2e_total_, origin, finish);
}

void ShardedMonitor::RefreshCostAccounting() {
  if (!profile_) return;
  CostSnapshot snapshot;
  snapshot.streams.resize(streams_.size());
  for (size_t s = 0; s < streams_.size(); ++s) {
    const StreamInfo& stream = streams_[s];
    StreamCost& row = snapshot.streams[s];
    row.stream_id = static_cast<int64_t>(s);
    row.name = stream.name;
    row.worker = stream.worker;
    row.ticks = stream.pushes;
  }
  snapshot.queries.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryInfo& query = queries_[i];
    if (query.removed) continue;
    const StreamInfo& stream =
        streams_[static_cast<size_t>(query.stream_id)];
    const MonitorEngine& engine =
        *shards_[static_cast<size_t>(stream.worker)]->engine;
    query.cells = engine.QueryCellsComputed(query.local_id);
    query.est_cpu_nanos = engine.QueryEstCpuNanos(query.local_id);
    QueryCost cost;
    cost.query_id = static_cast<int64_t>(i);
    cost.stream_id = query.stream_id;
    cost.query_name = query.name;
    cost.stream_name = stream.name;
    cost.ticks = query.stats.ticks;
    cost.cells = query.cells;
    cost.matches = query.stats.matches;
    cost.last_match_seq = query.last_match_seq;
    cost.est_cpu_nanos = query.est_cpu_nanos;
    StreamCost& srow =
        snapshot.streams[static_cast<size_t>(query.stream_id)];
    ++srow.queries;
    srow.cells += cost.cells;
    srow.matches += cost.matches;
    srow.est_cpu_nanos += cost.est_cpu_nanos;
    snapshot.queries.push_back(std::move(cost));
  }
  RankByCost(&snapshot);
  util::MutexLock lock(&router_publish_mu_);
  published_costs_ = std::move(snapshot);
}

}  // namespace monitor
}  // namespace springdtw
