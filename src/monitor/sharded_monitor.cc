#include "monitor/sharded_monitor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/codec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace springdtw {
namespace monitor {

namespace {

/// FNV-1a: stable across runs and platforms (std::hash is not guaranteed
/// to be), so stream placement — and thus shard-local state layout — is
/// reproducible for a given name and worker count.
uint64_t HashName(const std::string& name) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint32_t kMonitorMagic = 0x5350524D;  // "SPRM"
constexpr uint32_t kMonitorVersion = 1;

void WriteStats(util::ByteWriter* writer, const QueryStats& stats) {
  writer->WriteI64(stats.ticks);
  writer->WriteI64(stats.matches);
  stats.output_delay.SerializeTo(writer);
}

bool ReadStats(util::ByteReader* reader, QueryStats* stats) {
  return reader->ReadI64(&stats->ticks) &&
         reader->ReadI64(&stats->matches) &&
         stats->output_delay.DeserializeFrom(reader);
}

}  // namespace

ShardedMonitor::ShardedMonitor(const ShardedMonitorOptions& options)
    : options_(options) {
  SPRINGDTW_CHECK_GE(options_.num_workers, 1);
  shards_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t w = 0; w < options_.num_workers; ++w) {
    auto shard = std::make_unique<Shard>();
    EngineOptions engine_options;
    engine_options.batch_queries = options_.batch_queries;
    shard->engine = std::make_unique<MonitorEngine>(engine_options);
    shard->queue =
        std::make_unique<SpscQueue<TickMessage>>(options_.queue_capacity);
    if (options_.collect_metrics) {
      shard->obs = std::make_unique<obs::Observability>();
      shard->engine->AttachObservability(shard->obs.get());
    }
    Shard* shard_raw = shard.get();
    shard->sink = std::make_unique<CallbackSink>(
        [shard_raw](const MatchOrigin& origin, const core::Match& match) {
          PendingMatch pending;
          pending.global_query_id =
              shard_raw->global_query_ids[static_cast<size_t>(
                  origin.query_id)];
          pending.seq =
              shard_raw->flushing
                  ? kFlushSeq
                  : shard_raw->msg_seq0 +
                        static_cast<uint64_t>(match.report_time -
                                              shard_raw->msg_base_tick);
          pending.match = match;
          shard_raw->matches.push_back(pending);
        });
    shard->engine->AddSink(shard->sink.get());
    shards_.push_back(std::move(shard));
  }
}

ShardedMonitor::~ShardedMonitor() { Stop(); }

int64_t ShardedMonitor::AddStream(std::string name, bool repair_missing) {
  if (started_) Drain();
  const int64_t stream_id = static_cast<int64_t>(streams_.size());
  StreamInfo info;
  info.worker = static_cast<int64_t>(
      HashName(name) % static_cast<uint64_t>(num_workers()));
  info.repair_missing = repair_missing;
  Shard& shard = *shards_[static_cast<size_t>(info.worker)];
  // The router repairs before sharding, so the shard stream runs with
  // repair off and only ever sees finite values.
  info.local_id = shard.engine->AddStream(name, /*repair_missing=*/false);
  info.name = std::move(name);
  shard.global_stream_ids.push_back(stream_id);
  shard.stream_ticks.push_back(0);
  streams_.push_back(std::move(info));
  return stream_id;
}

util::StatusOr<int64_t> ShardedMonitor::AddQuery(
    int64_t stream_id, std::string name, std::vector<double> query,
    const core::SpringOptions& options) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  if (started_) Drain();
  StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
  Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
  QueryInfo info;
  info.stream_id = stream_id;
  info.name = name;
  auto local = shard.engine->AddQuery(stream.local_id, std::move(name),
                                      std::move(query), options);
  if (!local.ok()) return local.status();
  info.local_id = *local;
  const int64_t query_id = static_cast<int64_t>(queries_.size());
  shard.global_query_ids.push_back(query_id);
  queries_.push_back(std::move(info));
  return query_id;
}

void ShardedMonitor::AddSink(MatchSink* sink) {
  SPRINGDTW_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void ShardedMonitor::Start() {
  if (started_) return;
  for (auto& shard : shards_) {
    shard->thread = std::thread(&ShardedMonitor::WorkerLoop, this,
                                shard.get());
  }
  started_ = true;
}

void ShardedMonitor::WorkerLoop(Shard* shard) {
  TickMessage msg;
  for (;;) {
    shard->queue->Pop(&msg);
    if (msg.kind == TickMessage::Kind::kStop) {
      shard->consumed.fetch_add(1, std::memory_order_release);
      return;
    }
    shard->msg_seq0 = msg.seq0;
    shard->msg_base_tick =
        shard->stream_ticks[static_cast<size_t>(msg.local_stream)];
    const auto pushed = shard->engine->PushBatch(
        msg.local_stream,
        std::span<const double>(msg.values,
                                static_cast<size_t>(msg.count)));
    SPRINGDTW_CHECK(pushed.ok())
        << "shard ingest failed: " << pushed.status().ToString();
    shard->stream_ticks[static_cast<size_t>(msg.local_stream)] += msg.count;
    // Release everything written above (engine state, buffered matches) to
    // the drain barrier's acquire.
    shard->consumed.fetch_add(1, std::memory_order_release);
  }
}

util::Status ShardedMonitor::Push(int64_t stream_id, double value) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  SPRINGDTW_CHECK(started_) << "Start() the monitor before pushing";
  StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
  if (!stream.repair_missing && ts::IsMissing(value)) {
    return util::InvalidArgumentError(
        "missing value pushed to a stream with repair disabled");
  }
  RouteValue(stream, value);
  return util::Status::Ok();
}

util::Status ShardedMonitor::PushBatch(int64_t stream_id,
                                       std::span<const double> values) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  SPRINGDTW_CHECK(started_) << "Start() the monitor before pushing";
  StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
  for (const double value : values) {
    // Same error contract as MonitorEngine: values before the first NaN on
    // a repair-disabled stream are processed, then the push fails.
    if (!stream.repair_missing && ts::IsMissing(value)) {
      return util::InvalidArgumentError(
          "missing value pushed to a stream with repair disabled");
    }
    RouteValue(stream, value);
  }
  return util::Status::Ok();
}

void ShardedMonitor::RouteValue(StreamInfo& stream, double value) {
  if (stream.repair_missing) {
    if (!stream.repairer_seeded && !ts::IsMissing(value)) {
      stream.repairer = ts::StreamingRepairer(value);
      stream.repairer_seeded = true;
    }
    value = stream.repairer.Next(value);
  }
  // Stage into the (single) pending message; flush it first if it belongs
  // to a different stream or is full, so in-message sequence numbers stay
  // consecutive.
  if (has_staged_ && (staged_worker_ != stream.worker ||
                      staged_.local_stream !=
                          static_cast<int32_t>(stream.local_id) ||
                      staged_.count == kTickBatch)) {
    FlushStaged();
  }
  if (!has_staged_) {
    staged_ = TickMessage{};
    staged_.local_stream = static_cast<int32_t>(stream.local_id);
    staged_.seq0 = next_seq_;
    staged_worker_ = stream.worker;
    has_staged_ = true;
  }
  staged_.values[staged_.count++] = value;
  ++next_seq_;
  ++stream.pushes;
  if (staged_.count == kTickBatch) FlushStaged();
}

void ShardedMonitor::FlushStaged() {
  if (!has_staged_) return;
  Shard& shard = *shards_[static_cast<size_t>(staged_worker_)];
  shard.produced.fetch_add(1, std::memory_order_relaxed);
  shard.queue->Push(staged_);
  has_staged_ = false;
  staged_worker_ = -1;
}

void ShardedMonitor::AwaitQuiescent() {
  FlushStaged();
  for (auto& shard : shards_) {
    const uint64_t produced =
        shard->produced.load(std::memory_order_relaxed);
    while (shard->consumed.load(std::memory_order_acquire) < produced) {
      std::this_thread::yield();
    }
  }
}

int64_t ShardedMonitor::Drain() {
  if (started_) AwaitQuiescent();
  return DeliverPending();
}

int64_t ShardedMonitor::DeliverPending() {
  delivery_scratch_.clear();
  for (auto& shard : shards_) {
    delivery_scratch_.insert(delivery_scratch_.end(),
                             shard->matches.begin(), shard->matches.end());
    shard->matches.clear();
  }
  std::sort(delivery_scratch_.begin(), delivery_scratch_.end(),
            [](const PendingMatch& a, const PendingMatch& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.global_query_id < b.global_query_id;
            });
  for (const PendingMatch& pending : delivery_scratch_) {
    QueryInfo& query =
        queries_[static_cast<size_t>(pending.global_query_id)];
    ++query.stats.matches;
    query.stats.output_delay.Add(static_cast<double>(
        pending.match.report_time - pending.match.end));
    MatchOrigin origin;
    origin.stream_id = query.stream_id;
    origin.query_id = pending.global_query_id;
    origin.stream_name = streams_[static_cast<size_t>(query.stream_id)].name;
    origin.query_name = query.name;
    for (MatchSink* sink : sinks_) sink->OnMatch(origin, pending.match);
  }
  for (QueryInfo& query : queries_) {
    query.stats.ticks =
        streams_[static_cast<size_t>(query.stream_id)].pushes;
  }
  return static_cast<int64_t>(delivery_scratch_.size());
}

int64_t ShardedMonitor::FlushAll() {
  int64_t delivered = Drain();
  // Post-barrier the caller owns the engines; flush them inline and mark
  // the matches so they order after every tick match.
  for (auto& shard : shards_) {
    shard->flushing = true;
    shard->engine->FlushAll();
    shard->flushing = false;
  }
  delivered += DeliverPending();
  return delivered;
}

void ShardedMonitor::Stop() {
  if (!started_) return;
  Drain();
  for (auto& shard : shards_) {
    TickMessage stop;
    stop.kind = TickMessage::Kind::kStop;
    shard->produced.fetch_add(1, std::memory_order_relaxed);
    shard->queue->Push(stop);
  }
  for (auto& shard : shards_) {
    shard->thread.join();
  }
  started_ = false;
}

int64_t ShardedMonitor::worker_of_stream(int64_t stream_id) const {
  SPRINGDTW_CHECK(stream_id >= 0 && stream_id < num_streams());
  return streams_[static_cast<size_t>(stream_id)].worker;
}

const QueryStats& ShardedMonitor::stats(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  return queries_[static_cast<size_t>(query_id)].stats;
}

obs::MetricsSnapshot ShardedMonitor::MergedMetricsSnapshot() {
  Drain();
  std::vector<obs::MetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (auto& shard : shards_) {
    if (shard->obs == nullptr) continue;
    shard->engine->RefreshObservabilityGauges();
    snapshots.push_back(shard->obs->registry().Snapshot());
  }
  return obs::MergeSnapshots(snapshots);
}

util::MemoryFootprint ShardedMonitor::Footprint() {
  Drain();
  util::MemoryFootprint fp;
  for (auto& shard : shards_) {
    fp.Merge(shard->engine->Footprint());
  }
  return fp;
}

std::vector<uint8_t> ShardedMonitor::SerializeState() {
  // Full barrier: pending matches are delivered (a checkpoint never holds
  // undelivered matches), engines quiescent and caller-visible.
  Drain();
  util::ByteWriter writer;
  writer.WriteU32(kMonitorMagic);
  writer.WriteU32(kMonitorVersion);
  writer.WriteU64(next_seq_);
  writer.WriteU64(streams_.size());
  for (const StreamInfo& stream : streams_) {
    writer.WriteString(stream.name);
    writer.WriteBool(stream.repair_missing);
    writer.WriteBool(stream.repairer_seeded);
    writer.WriteDouble(stream.repairer.last());
    writer.WriteI64(stream.pushes);
  }
  writer.WriteU64(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    const QueryInfo& query = queries_[i];
    const Shard& shard = *shards_[static_cast<size_t>(
        streams_[static_cast<size_t>(query.stream_id)].worker)];
    writer.WriteI64(query.stream_id);
    writer.WriteString(query.name);
    // One snapshot per query, not per engine: restorable into any worker
    // count.
    writer.WriteBytes(shard.engine->SerializeQueryState(query.local_id));
    WriteStats(&writer, query.stats);
  }
  return writer.Take();
}

util::Status ShardedMonitor::RestoreState(std::span<const uint8_t> bytes) {
  if (started_ || num_streams() > 0 || num_queries() > 0) {
    return util::FailedPreconditionError(
        "RestoreState requires a fresh, unstarted monitor");
  }
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kMonitorMagic) {
    return util::InvalidArgumentError("not a ShardedMonitor checkpoint");
  }
  if (version != kMonitorVersion) {
    return util::InvalidArgumentError("unsupported checkpoint version");
  }
  reader.ReadU64(&next_seq_);

  uint64_t num_ckpt_streams = 0;
  reader.ReadU64(&num_ckpt_streams);
  for (uint64_t i = 0; reader.ok() && i < num_ckpt_streams; ++i) {
    std::string name;
    bool repair_missing = true;
    bool seeded = false;
    double last = 0.0;
    int64_t pushes = 0;
    reader.ReadString(&name);
    reader.ReadBool(&repair_missing);
    reader.ReadBool(&seeded);
    reader.ReadDouble(&last);
    reader.ReadI64(&pushes);
    if (!reader.ok() || pushes < 0) {
      return util::InvalidArgumentError("checkpoint stream corrupt");
    }
    const int64_t stream_id = AddStream(std::move(name), repair_missing);
    StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
    stream.repairer_seeded = seeded;
    stream.repairer = ts::StreamingRepairer(last);
    stream.pushes = pushes;
    Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
    shard.stream_ticks[static_cast<size_t>(stream.local_id)] = pushes;
  }

  uint64_t num_ckpt_queries = 0;
  reader.ReadU64(&num_ckpt_queries);
  for (uint64_t i = 0; reader.ok() && i < num_ckpt_queries; ++i) {
    int64_t stream_id = 0;
    std::string name;
    std::span<const uint8_t> snapshot;
    reader.ReadI64(&stream_id);
    reader.ReadString(&name);
    if (!reader.ReadBytesSpan(&snapshot)) {
      return util::InvalidArgumentError("checkpoint truncated");
    }
    QueryStats stats;
    if (!ReadStats(&reader, &stats)) {
      return util::InvalidArgumentError("checkpoint stats truncated");
    }
    if (stream_id < 0 || stream_id >= num_streams()) {
      return util::InvalidArgumentError("checkpoint query has bad stream");
    }
    StreamInfo& stream = streams_[static_cast<size_t>(stream_id)];
    Shard& shard = *shards_[static_cast<size_t>(stream.worker)];
    auto local = shard.engine->AddQueryFromSnapshot(stream.local_id, name,
                                                    snapshot);
    if (!local.ok()) return local.status();
    QueryInfo info;
    info.stream_id = stream_id;
    info.name = std::move(name);
    info.local_id = *local;
    info.stats = stats;
    shard.global_query_ids.push_back(static_cast<int64_t>(queries_.size()));
    queries_.push_back(std::move(info));
  }

  if (!reader.ok()) {
    return util::InvalidArgumentError("checkpoint truncated");
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("checkpoint has trailing bytes");
  }
  return util::Status::Ok();
}

}  // namespace monitor
}  // namespace springdtw
