#ifndef SPRINGDTW_MONITOR_REPLAY_H_
#define SPRINGDTW_MONITOR_REPLAY_H_

#include <cstdint>
#include <functional>

#include "monitor/engine.h"
#include "monitor/stream_source.h"
#include "ts/vector_series.h"
#include "util/status.h"

namespace springdtw {
namespace monitor {

/// Summary of a replay run.
struct ReplayResult {
  int64_t ticks = 0;
  int64_t matches = 0;
  /// Wall-clock seconds spent pushing.
  double seconds = 0.0;

  double ticks_per_second() const {
    return seconds > 0.0 ? static_cast<double>(ticks) / seconds : 0.0;
  }
};

/// Optional progress callback: invoked every `progress_every` ticks with
/// (ticks so far, matches so far).
struct ReplayOptions {
  int64_t progress_every = 0;  // 0 = no callbacks.
  std::function<void(int64_t ticks, int64_t matches)> on_progress;
  /// Flush pending candidates when the source is exhausted (finite-stream
  /// semantics; set false when more data will follow later).
  bool flush_at_end = true;
};

/// Drains `source` into stream `stream_id` of `engine` until exhaustion —
/// the boilerplate loop of every batch-replay deployment. Returns tick and
/// match counts, or the first Push error.
util::StatusOr<ReplayResult> ReplayStream(StreamSource& source,
                                          MonitorEngine& engine,
                                          int64_t stream_id,
                                          const ReplayOptions& options = {});

/// Replays a stored k-dimensional series into vector stream `stream_id`.
util::StatusOr<ReplayResult> ReplayVectorSeries(
    const ts::VectorSeries& series, MonitorEngine& engine,
    int64_t stream_id, const ReplayOptions& options = {});

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_REPLAY_H_
