#include "monitor/cost_accounting.h"

#include <algorithm>

#include "obs/exposition.h"
#include "util/string_util.h"

namespace springdtw {
namespace monitor {

namespace {

void AppendQueryRow(const QueryCost& row, std::string* out) {
  *out += util::StrFormat(
      "{\"id\":%lld,\"stream\":\"%s\",\"stream_id\":%lld,\"name\":\"%s\","
      "\"ticks\":%lld,\"cells\":%lld,\"matches\":%lld,"
      "\"last_match_seq\":%lld,\"est_cpu_nanos\":%lld}",
      static_cast<long long>(row.query_id),
      obs::EscapeJson(row.stream_name).c_str(),
      static_cast<long long>(row.stream_id),
      obs::EscapeJson(row.query_name).c_str(),
      static_cast<long long>(row.ticks), static_cast<long long>(row.cells),
      static_cast<long long>(row.matches),
      static_cast<long long>(row.last_match_seq),
      static_cast<long long>(row.est_cpu_nanos));
}

void AppendStreamRow(const StreamCost& row, std::string* out) {
  *out += util::StrFormat(
      "{\"id\":%lld,\"name\":\"%s\",\"worker\":%lld,\"queries\":%lld,"
      "\"ticks\":%lld,\"cells\":%lld,\"matches\":%lld,"
      "\"est_cpu_nanos\":%lld}",
      static_cast<long long>(row.stream_id),
      obs::EscapeJson(row.name).c_str(),
      static_cast<long long>(row.worker),
      static_cast<long long>(row.queries),
      static_cast<long long>(row.ticks), static_cast<long long>(row.cells),
      static_cast<long long>(row.matches),
      static_cast<long long>(row.est_cpu_nanos));
}

}  // namespace

void RankByCost(CostSnapshot* snapshot) {
  std::sort(snapshot->queries.begin(), snapshot->queries.end(),
            [](const QueryCost& a, const QueryCost& b) {
              if (a.cells != b.cells) return a.cells > b.cells;
              return a.query_id < b.query_id;
            });
  std::sort(snapshot->streams.begin(), snapshot->streams.end(),
            [](const StreamCost& a, const StreamCost& b) {
              if (a.cells != b.cells) return a.cells > b.cells;
              return a.stream_id < b.stream_id;
            });
}

std::string RenderQueryzJson(const CostSnapshot& snapshot, int64_t top_k) {
  const int64_t total = static_cast<int64_t>(snapshot.queries.size());
  const int64_t shown = std::min(total, top_k);
  std::string out = util::StrFormat("{\"total\":%lld,\"queries\":[",
                                    static_cast<long long>(total));
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) out += ',';
    AppendQueryRow(snapshot.queries[static_cast<size_t>(i)], &out);
  }
  out += "]}";
  return out;
}

std::string RenderStreamzJson(const CostSnapshot& snapshot, int64_t top_k) {
  const int64_t total = static_cast<int64_t>(snapshot.streams.size());
  const int64_t shown = std::min(total, top_k);
  std::string out = util::StrFormat("{\"total\":%lld,\"streams\":[",
                                    static_cast<long long>(total));
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) out += ',';
    AppendStreamRow(snapshot.streams[static_cast<size_t>(i)], &out);
  }
  out += "]}";
  return out;
}

}  // namespace monitor
}  // namespace springdtw
