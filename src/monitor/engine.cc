#include "monitor/engine.h"

#include "util/codec.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace springdtw {
namespace monitor {

int64_t MonitorEngine::AddStream(std::string name, bool repair_missing) {
  StreamEntry entry;
  entry.name = std::move(name);
  entry.repair_missing = repair_missing;
  streams_.push_back(std::move(entry));
  return static_cast<int64_t>(streams_.size()) - 1;
}

util::StatusOr<int64_t> MonitorEngine::AddQuery(
    int64_t stream_id, std::string name, std::vector<double> query,
    const core::SpringOptions& options) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  if (query.empty()) {
    return util::InvalidArgumentError("empty query");
  }
  for (const double y : query) {
    if (ts::IsMissing(y)) {
      return util::InvalidArgumentError(
          "query contains missing values; repair it first");
    }
  }
  const int64_t query_id = static_cast<int64_t>(queries_.size());
  queries_.push_back(QueryEntry{stream_id, std::move(name),
                                core::SpringMatcher(std::move(query), options),
                                QueryStats{}});
  streams_[static_cast<size_t>(stream_id)].query_ids.push_back(query_id);
  return query_id;
}

void MonitorEngine::AddSink(MatchSink* sink) {
  SPRINGDTW_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void MonitorEngine::Dispatch(const QueryEntry& query,
                             const core::Match& match) {
  MatchOrigin origin;
  origin.stream_id = query.stream_id;
  origin.query_id = &query - queries_.data();
  origin.stream_name = streams_[static_cast<size_t>(query.stream_id)].name;
  origin.query_name = query.name;
  for (MatchSink* sink : sinks_) sink->OnMatch(origin, match);
}

util::StatusOr<int64_t> MonitorEngine::Push(int64_t stream_id, double value) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  StreamEntry& stream = streams_[static_cast<size_t>(stream_id)];
  if (stream.repair_missing) {
    if (!stream.repairer_seeded && !ts::IsMissing(value)) {
      stream.repairer = ts::StreamingRepairer(value);
      stream.repairer_seeded = true;
    }
    value = stream.repairer.Next(value);
  } else if (ts::IsMissing(value)) {
    return util::InvalidArgumentError(
        "missing value pushed to a stream with repair disabled");
  }

  util::Stopwatch stopwatch;
  int64_t reported = 0;
  core::Match match;
  for (const int64_t query_id : stream.query_ids) {
    QueryEntry& query = queries_[static_cast<size_t>(query_id)];
    ++query.stats.ticks;
    if (query.matcher.Update(value, &match)) {
      ++query.stats.matches;
      query.stats.output_delay.Add(
          static_cast<double>(match.report_time - match.end));
      Dispatch(query, match);
      ++reported;
    }
  }
  if (track_latency_) {
    push_latency_nanos_.Add(static_cast<double>(stopwatch.ElapsedNanos()));
  }
  return reported;
}

int64_t MonitorEngine::AddVectorStream(std::string name, int64_t dims) {
  SPRINGDTW_CHECK_GE(dims, 1);
  VectorStreamEntry entry;
  entry.name = std::move(name);
  entry.dims = dims;
  vector_streams_.push_back(std::move(entry));
  return static_cast<int64_t>(vector_streams_.size()) - 1;
}

util::StatusOr<int64_t> MonitorEngine::AddVectorQuery(
    int64_t stream_id, std::string name, ts::VectorSeries query,
    const core::SpringOptions& options) {
  if (stream_id < 0 || stream_id >= num_vector_streams()) {
    return util::NotFoundError(util::StrFormat(
        "no vector stream %lld", static_cast<long long>(stream_id)));
  }
  VectorStreamEntry& stream = vector_streams_[static_cast<size_t>(stream_id)];
  if (query.empty()) {
    return util::InvalidArgumentError("empty vector query");
  }
  if (query.dims() != stream.dims) {
    return util::InvalidArgumentError(util::StrFormat(
        "query has %lld channels, stream has %lld",
        static_cast<long long>(query.dims()),
        static_cast<long long>(stream.dims)));
  }
  for (const double v : query.data()) {
    if (ts::IsMissing(v)) {
      return util::InvalidArgumentError(
          "vector query contains missing values; repair it first");
    }
  }
  const int64_t query_id = static_cast<int64_t>(vector_queries_.size());
  vector_queries_.push_back(VectorQueryEntry{
      stream_id, std::move(name),
      core::VectorSpringMatcher(std::move(query), options), QueryStats{}});
  stream.query_ids.push_back(query_id);
  return query_id;
}

void MonitorEngine::DispatchVector(const VectorQueryEntry& query,
                                   const core::Match& match) {
  MatchOrigin origin;
  origin.stream_id = query.stream_id;
  origin.query_id = &query - vector_queries_.data();
  origin.stream_name =
      vector_streams_[static_cast<size_t>(query.stream_id)].name;
  origin.query_name = query.name;
  for (MatchSink* sink : sinks_) sink->OnMatch(origin, match);
}

util::StatusOr<int64_t> MonitorEngine::PushRow(int64_t stream_id,
                                               std::span<const double> row) {
  if (stream_id < 0 || stream_id >= num_vector_streams()) {
    return util::NotFoundError(util::StrFormat(
        "no vector stream %lld", static_cast<long long>(stream_id)));
  }
  VectorStreamEntry& stream = vector_streams_[static_cast<size_t>(stream_id)];
  if (static_cast<int64_t>(row.size()) != stream.dims) {
    return util::InvalidArgumentError(util::StrFormat(
        "row has %zu values, stream has %lld channels", row.size(),
        static_cast<long long>(stream.dims)));
  }
  for (const double v : row) {
    if (ts::IsMissing(v)) {
      return util::InvalidArgumentError(
          "vector streams do not repair missing values; row has NaN");
    }
  }

  util::Stopwatch stopwatch;
  int64_t reported = 0;
  core::Match match;
  for (const int64_t query_id : stream.query_ids) {
    VectorQueryEntry& query = vector_queries_[static_cast<size_t>(query_id)];
    ++query.stats.ticks;
    if (query.matcher.Update(row, &match)) {
      ++query.stats.matches;
      query.stats.output_delay.Add(
          static_cast<double>(match.report_time - match.end));
      DispatchVector(query, match);
      ++reported;
    }
  }
  if (track_latency_) {
    push_latency_nanos_.Add(static_cast<double>(stopwatch.ElapsedNanos()));
  }
  return reported;
}

const QueryStats& MonitorEngine::vector_stats(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_vector_queries());
  return vector_queries_[static_cast<size_t>(query_id)].stats;
}

int64_t MonitorEngine::FlushAll() {
  int64_t reported = 0;
  core::Match match;
  for (QueryEntry& query : queries_) {
    if (query.matcher.Flush(&match)) {
      ++query.stats.matches;
      query.stats.output_delay.Add(
          static_cast<double>(match.report_time - match.end));
      Dispatch(query, match);
      ++reported;
    }
  }
  for (VectorQueryEntry& query : vector_queries_) {
    if (query.matcher.Flush(&match)) {
      ++query.stats.matches;
      query.stats.output_delay.Add(
          static_cast<double>(match.report_time - match.end));
      DispatchVector(query, match);
      ++reported;
    }
  }
  return reported;
}

const QueryStats& MonitorEngine::stats(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  return queries_[static_cast<size_t>(query_id)].stats;
}

util::MemoryFootprint MonitorEngine::Footprint() const {
  util::MemoryFootprint fp;
  for (const QueryEntry& query : queries_) {
    fp.Merge(query.matcher.Footprint());
  }
  for (const VectorQueryEntry& query : vector_queries_) {
    fp.Merge(query.matcher.Footprint());
  }
  return fp;
}

namespace {

constexpr uint32_t kEngineMagic = 0x53505245;  // "SPRE"
constexpr uint32_t kEngineVersion = 1;

void WriteStats(util::ByteWriter* writer, const QueryStats& stats) {
  writer->WriteI64(stats.ticks);
  writer->WriteI64(stats.matches);
  stats.output_delay.SerializeTo(writer);
}

bool ReadStats(util::ByteReader* reader, QueryStats* stats) {
  return reader->ReadI64(&stats->ticks) &&
         reader->ReadI64(&stats->matches) &&
         stats->output_delay.DeserializeFrom(reader);
}

}  // namespace

std::vector<uint8_t> MonitorEngine::SerializeState() const {
  util::ByteWriter writer;
  writer.WriteU32(kEngineMagic);
  writer.WriteU32(kEngineVersion);

  writer.WriteU64(streams_.size());
  for (const StreamEntry& stream : streams_) {
    writer.WriteString(stream.name);
    writer.WriteBool(stream.repair_missing);
    writer.WriteBool(stream.repairer_seeded);
    writer.WriteDouble(stream.repairer.last());
  }
  writer.WriteU64(queries_.size());
  for (const QueryEntry& query : queries_) {
    writer.WriteI64(query.stream_id);
    writer.WriteString(query.name);
    const std::vector<uint8_t> snapshot = query.matcher.SerializeState();
    writer.WriteBytes(snapshot);
    WriteStats(&writer, query.stats);
  }

  writer.WriteU64(vector_streams_.size());
  for (const VectorStreamEntry& stream : vector_streams_) {
    writer.WriteString(stream.name);
    writer.WriteI64(stream.dims);
  }
  writer.WriteU64(vector_queries_.size());
  for (const VectorQueryEntry& query : vector_queries_) {
    writer.WriteI64(query.stream_id);
    writer.WriteString(query.name);
    const std::vector<uint8_t> snapshot = query.matcher.SerializeState();
    writer.WriteBytes(snapshot);
    WriteStats(&writer, query.stats);
  }
  return writer.Take();
}

util::Status MonitorEngine::RestoreState(std::span<const uint8_t> bytes) {
  if (num_streams() > 0 || num_queries() > 0 || num_vector_streams() > 0 ||
      num_vector_queries() > 0) {
    return util::FailedPreconditionError(
        "RestoreState requires a fresh engine");
  }
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kEngineMagic) {
    return util::InvalidArgumentError("not a MonitorEngine checkpoint");
  }
  if (version != kEngineVersion) {
    return util::InvalidArgumentError("unsupported checkpoint version");
  }

  uint64_t num_scalar_streams = 0;
  reader.ReadU64(&num_scalar_streams);
  for (uint64_t i = 0; reader.ok() && i < num_scalar_streams; ++i) {
    StreamEntry stream;
    double last = 0.0;
    reader.ReadString(&stream.name);
    reader.ReadBool(&stream.repair_missing);
    reader.ReadBool(&stream.repairer_seeded);
    reader.ReadDouble(&last);
    stream.repairer = ts::StreamingRepairer(last);
    streams_.push_back(std::move(stream));
  }

  uint64_t num_scalar_queries = 0;
  reader.ReadU64(&num_scalar_queries);
  for (uint64_t i = 0; reader.ok() && i < num_scalar_queries; ++i) {
    int64_t stream_id = 0;
    std::string name;
    std::vector<uint8_t> snapshot;
    uint64_t snapshot_size = 0;
    reader.ReadI64(&stream_id);
    reader.ReadString(&name);
    if (!reader.ReadU64(&snapshot_size) ||
        snapshot_size > bytes.size() - reader.position()) {
      return util::InvalidArgumentError("checkpoint truncated");
    }
    snapshot.assign(bytes.begin() + static_cast<ptrdiff_t>(reader.position()),
                    bytes.begin() + static_cast<ptrdiff_t>(
                                        reader.position() + snapshot_size));
    // Skip the bytes we just copied.
    for (uint64_t b = 0; b < snapshot_size; ++b) {
      uint8_t dummy = 0;
      reader.ReadU8(&dummy);
    }
    auto matcher = core::SpringMatcher::DeserializeState(snapshot);
    if (!matcher.ok()) return matcher.status();
    QueryStats stats;
    if (!ReadStats(&reader, &stats)) {
      return util::InvalidArgumentError("checkpoint stats truncated");
    }
    if (stream_id < 0 || stream_id >= num_streams()) {
      return util::InvalidArgumentError("checkpoint query has bad stream");
    }
    queries_.push_back(QueryEntry{stream_id, std::move(name),
                                  std::move(*matcher), stats});
    streams_[static_cast<size_t>(stream_id)].query_ids.push_back(
        static_cast<int64_t>(queries_.size()) - 1);
  }

  uint64_t num_vec_streams = 0;
  reader.ReadU64(&num_vec_streams);
  for (uint64_t i = 0; reader.ok() && i < num_vec_streams; ++i) {
    VectorStreamEntry stream;
    reader.ReadString(&stream.name);
    reader.ReadI64(&stream.dims);
    if (stream.dims < 1) {
      return util::InvalidArgumentError("checkpoint vector stream corrupt");
    }
    vector_streams_.push_back(std::move(stream));
  }

  uint64_t num_vec_queries = 0;
  reader.ReadU64(&num_vec_queries);
  for (uint64_t i = 0; reader.ok() && i < num_vec_queries; ++i) {
    int64_t stream_id = 0;
    std::string name;
    uint64_t snapshot_size = 0;
    reader.ReadI64(&stream_id);
    reader.ReadString(&name);
    if (!reader.ReadU64(&snapshot_size) ||
        snapshot_size > bytes.size() - reader.position()) {
      return util::InvalidArgumentError("checkpoint truncated");
    }
    std::vector<uint8_t> snapshot(
        bytes.begin() + static_cast<ptrdiff_t>(reader.position()),
        bytes.begin() +
            static_cast<ptrdiff_t>(reader.position() + snapshot_size));
    for (uint64_t b = 0; b < snapshot_size; ++b) {
      uint8_t dummy = 0;
      reader.ReadU8(&dummy);
    }
    auto matcher = core::VectorSpringMatcher::DeserializeState(snapshot);
    if (!matcher.ok()) return matcher.status();
    QueryStats stats;
    if (!ReadStats(&reader, &stats)) {
      return util::InvalidArgumentError("checkpoint stats truncated");
    }
    if (stream_id < 0 || stream_id >= num_vector_streams()) {
      return util::InvalidArgumentError("checkpoint query has bad stream");
    }
    if (matcher->dims() !=
        vector_streams_[static_cast<size_t>(stream_id)].dims) {
      return util::InvalidArgumentError("checkpoint dims mismatch");
    }
    vector_queries_.push_back(VectorQueryEntry{
        stream_id, std::move(name), std::move(*matcher), stats});
    vector_streams_[static_cast<size_t>(stream_id)].query_ids.push_back(
        static_cast<int64_t>(vector_queries_.size()) - 1);
  }

  if (!reader.ok()) {
    return util::InvalidArgumentError("checkpoint truncated");
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("checkpoint has trailing bytes");
  }
  return util::Status::Ok();
}

}  // namespace monitor
}  // namespace springdtw
