#include "monitor/engine.h"

#include <algorithm>
#include <utility>

#include "core/invariants.h"
#include "util/codec.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace springdtw {
namespace monitor {

namespace {

/// Metric names shared with docs/OBSERVABILITY.md — keep in sync.
constexpr char kMetricPushes[] = "spring_pushes_total";
constexpr char kMetricTicks[] = "spring_ticks_total";
constexpr char kMetricMatches[] = "spring_matches_total";
constexpr char kMetricCandidatesOpened[] = "spring_candidates_opened_total";
constexpr char kMetricCandidatesFlushed[] = "spring_candidates_flushed_total";
constexpr char kMetricBestImprovements[] = "spring_best_improvements_total";
constexpr char kMetricCellsPruned[] = "spring_cells_pruned_total";
constexpr char kMetricCandidatePending[] = "spring_candidate_pending";
constexpr char kMetricReportDelay[] = "spring_report_delay_ticks";
constexpr char kMetricPushLatency[] = "spring_push_latency_nanos";
constexpr char kMetricMemoryBytes[] = "spring_memory_bytes";
constexpr char kMetricStreams[] = "spring_streams";
constexpr char kMetricQueries[] = "spring_queries";
constexpr char kMetricCheckpointSaves[] = "spring_checkpoint_saves_total";
constexpr char kMetricCheckpointRestores[] =
    "spring_checkpoint_restores_total";
constexpr char kMetricTraceDropped[] = "spring_trace_dropped_total";

const char* SpaceName(bool vector_space) {
  return vector_space ? "vector" : "scalar";
}

}  // namespace

int64_t MonitorEngine::AddStream(std::string name, bool repair_missing) {
  StreamEntry entry;
  entry.name = std::move(name);
  entry.repair_missing = repair_missing;
  if (obs_ != nullptr) {
    entry.obs_pushes = ResolvePushCounter(entry.name, /*vector_space=*/false);
  }
  streams_.push_back(std::move(entry));
  if (obs_streams_ != nullptr) {
    obs_streams_->Set(
        static_cast<double>(num_streams() + num_vector_streams()));
  }
  return static_cast<int64_t>(streams_.size()) - 1;
}

util::StatusOr<int64_t> MonitorEngine::AddQuery(
    int64_t stream_id, std::string name, std::vector<double> query,
    const core::SpringOptions& options) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  if (query.empty()) {
    return util::InvalidArgumentError("empty query");
  }
  for (const double y : query) {
    if (ts::IsMissing(y)) {
      return util::InvalidArgumentError(
          "query contains missing values; repair it first");
    }
  }
  const int64_t query_id = static_cast<int64_t>(queries_.size());
  StreamEntry& stream = streams_[static_cast<size_t>(stream_id)];
  QueryEntry entry;
  entry.stream_id = stream_id;
  entry.name = std::move(name);
  if (options_.batch_queries) {
    entry.pool_index = stream.pool.AddQuery(std::move(query), options);
  } else {
    entry.matcher.emplace(std::move(query), options);
  }
  queries_.push_back(std::move(entry));
  stream.query_ids.push_back(query_id);
  if (obs_ != nullptr) {
    queries_.back().obs = ResolveQueryObs(stream.name, queries_.back().name,
                                          /*vector_space=*/false);
    obs_queries_->Set(
        static_cast<double>(num_active_queries() + num_vector_queries()));
  }
  return query_id;
}

util::StatusOr<int64_t> MonitorEngine::AddQueryFromSnapshot(
    int64_t stream_id, std::string name, std::span<const uint8_t> snapshot) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  auto matcher = core::SpringMatcher::DeserializeState(snapshot);
  if (!matcher.ok()) return matcher.status();
  const int64_t query_id = static_cast<int64_t>(queries_.size());
  StreamEntry& stream = streams_[static_cast<size_t>(stream_id)];
  QueryEntry entry;
  entry.stream_id = stream_id;
  entry.name = std::move(name);
  if (options_.batch_queries) {
    entry.pool_index = stream.pool.AdoptMatcher(*matcher);
  } else {
    entry.matcher = std::move(*matcher);
  }
  queries_.push_back(std::move(entry));
  stream.query_ids.push_back(query_id);
  if (obs_ != nullptr) {
    queries_.back().obs = ResolveQueryObs(stream.name, queries_.back().name,
                                          /*vector_space=*/false);
    obs_queries_->Set(
        static_cast<double>(num_active_queries() + num_vector_queries()));
  }
  return query_id;
}

std::vector<uint8_t> MonitorEngine::SerializeQueryState(
    int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  const QueryEntry& query = queries_[static_cast<size_t>(query_id)];
  SPRINGDTW_CHECK(!query.removed) << "query was removed";
  if (options_.batch_queries) {
    return streams_[static_cast<size_t>(query.stream_id)]
        .pool.ToMatcher(query.pool_index)
        .SerializeState();
  }
  return query.matcher->SerializeState();
}

void MonitorEngine::AddSink(MatchSink* sink) {
  SPRINGDTW_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

int64_t MonitorEngine::num_active_queries() const {
  int64_t active = 0;
  for (const QueryEntry& query : queries_) {
    if (!query.removed) ++active;
  }
  return active;
}

bool MonitorEngine::query_removed(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  return queries_[static_cast<size_t>(query_id)].removed;
}

util::StatusOr<int64_t> MonitorEngine::RemoveQuery(int64_t query_id) {
  if (query_id < 0 || query_id >= num_queries() ||
      queries_[static_cast<size_t>(query_id)].removed) {
    return util::NotFoundError(
        util::StrFormat("no query %lld", static_cast<long long>(query_id)));
  }
  QueryEntry& query = queries_[static_cast<size_t>(query_id)];
  StreamEntry& stream = streams_[static_cast<size_t>(query.stream_id)];

  core::Match match;
  bool has_flush = false;
  if (options_.batch_queries) {
    has_flush = stream.pool.RemoveQuery(query.pool_index, &match);
    // The pool compacted: every later slot shifted down by one, and
    // query_ids[k] must keep matching pool slot k (the erase below
    // preserves that alignment).
    for (const int64_t other_id : stream.query_ids) {
      QueryEntry& other = queries_[static_cast<size_t>(other_id)];
      if (other.pool_index > query.pool_index) --other.pool_index;
    }
  } else {
    const core::SpringMatcher& matcher = *query.matcher;
    if (matcher.has_pending_candidate() &&
        matcher.candidate_distance() <= matcher.options().epsilon) {
      // Same report-eligibility scan a tick would run (rows 1..m; the star
      // row d = 0 is exempt there too).
      const std::span<const double> d = matcher.LastRowDistances();
      const std::span<const int64_t> s = matcher.LastRowStarts();
      const double dmin = matcher.candidate_distance();
      const int64_t te = matcher.candidate_end();
      bool can_report = true;
      for (size_t i = 1; i < d.size(); ++i) {
        if (d[i] < dmin && s[i] <= te) {
          can_report = false;
          break;
        }
      }
      if (can_report) {
        match.start = matcher.candidate_start();
        match.end = te;
        match.distance = dmin;
        match.report_time = matcher.ticks_processed();
        match.group_start = matcher.candidate_group_start();
        match.group_end = matcher.candidate_group_end();
        has_flush = true;
      }
    }
  }

  int64_t flushed = 0;
  if (has_flush) {
    ++query.stats.matches;
    query.stats.output_delay.Add(
        static_cast<double>(match.report_time - match.end));
    if (obs_ != nullptr) {
      query.obs.candidates_flushed->Increment();
      ObserveMatch(query, query_id, obs::TraceSpace::kScalar, match,
                   obs::TraceEventKind::kCandidateFlushed);
    }
    Dispatch(query, match);
    flushed = 1;
  }

  // Tombstone rather than erase: ids stay stable for callers and sinks,
  // stats survive, only the matcher state goes away.
  std::vector<int64_t>& ids = stream.query_ids;
  ids.erase(std::find(ids.begin(), ids.end(), query_id));
  query.matcher.reset();
  query.pool_index = -1;
  query.removed = true;
  query.obs = QueryObs{};
  if (obs_queries_ != nullptr) {
    obs_queries_->Set(
        static_cast<double>(num_active_queries() + num_vector_queries()));
  }
  return flushed;
}

void MonitorEngine::Dispatch(const QueryEntry& query,
                             const core::Match& match) {
  MatchOrigin origin;
  origin.stream_id = query.stream_id;
  origin.query_id = &query - queries_.data();
  origin.stream_name = streams_[static_cast<size_t>(query.stream_id)].name;
  origin.query_name = query.name;
  for (MatchSink* sink : sinks_) sink->OnMatch(origin, match);
}

util::StatusOr<int64_t> MonitorEngine::Push(int64_t stream_id, double value) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  StreamEntry& stream = streams_[static_cast<size_t>(stream_id)];
  if (stream.repair_missing) {
    if (!stream.repairer_seeded && !ts::IsMissing(value)) {
      stream.repairer = ts::StreamingRepairer(value);
      stream.repairer_seeded = true;
    }
    value = stream.repairer.Next(value);
  } else if (ts::IsMissing(value)) {
    return util::InvalidArgumentError(
        "missing value pushed to a stream with repair disabled");
  }

  // Clock reads only when someone consumes them: the legacy latency
  // histogram or an attached observability bundle.
  const bool timed = track_latency_ || obs_ != nullptr;
  int64_t start_nanos = 0;
  if (timed) start_nanos = util::Stopwatch::NowNanos();
  const bool cost_sampled =
      options_.cost_sample_every > 0 &&
      (stream.cost_push_calls++ %
       static_cast<uint64_t>(options_.cost_sample_every)) == 0;
  int64_t cost_start = 0;
  if (cost_sampled) cost_start = util::Stopwatch::NowNanos();

  int64_t reported = 0;
  core::Match match;
  if (options_.batch_queries) {
    core::SpringBatchPool& pool = stream.pool;
    if (obs_ != nullptr) stream.obs_pushes->Increment();
    pre_update_scratch_.clear();
    for (const int64_t query_id : stream.query_ids) {
      QueryEntry& query = queries_[static_cast<size_t>(query_id)];
      ++query.stats.ticks;
      if (obs_ != nullptr) {
        query.obs.ticks->Increment();
        pre_update_scratch_.push_back(
            PreUpdate{pool.has_pending_candidate(query.pool_index),
                      pool.has_best(query.pool_index),
                      pool.best_distance(query.pool_index)});
      }
    }
    batch_reports_.clear();
    pool.Update(value, &batch_reports_);
    if (obs_ == nullptr) {
      for (const core::SpringBatchPool::Report& report : batch_reports_) {
        const int64_t query_id =
            stream.query_ids[static_cast<size_t>(report.query_index)];
        QueryEntry& query = queries_[static_cast<size_t>(query_id)];
        ++query.stats.matches;
        query.stats.output_delay.Add(static_cast<double>(
            report.match.report_time - report.match.end));
        Dispatch(query, report.match);
        ++reported;
      }
    } else {
      size_t next_report = 0;
      for (size_t k = 0; k < stream.query_ids.size(); ++k) {
        const int64_t query_id = stream.query_ids[k];
        QueryEntry& query = queries_[static_cast<size_t>(query_id)];
        const bool reported_here =
            next_report < batch_reports_.size() &&
            batch_reports_[next_report].query_index == query.pool_index;
        const PreUpdate& pre = pre_update_scratch_[k];
        ObserveUpdate(core::PoolQueryView(pool, query.pool_index), query,
                      query_id, obs::TraceSpace::kScalar, pre.had_candidate,
                      pre.had_best, pre.prev_best, reported_here);
        if (reported_here) {
          const core::Match& reported_match =
              batch_reports_[next_report++].match;
          ++query.stats.matches;
          query.stats.output_delay.Add(static_cast<double>(
              reported_match.report_time - reported_match.end));
          ObserveMatch(query, query_id, obs::TraceSpace::kScalar,
                       reported_match, obs::TraceEventKind::kMatchReported);
          Dispatch(query, reported_match);
          ++reported;
        }
      }
    }
  } else if (obs_ == nullptr) {
    for (const int64_t query_id : stream.query_ids) {
      QueryEntry& query = queries_[static_cast<size_t>(query_id)];
      ++query.stats.ticks;
      if (query.matcher->Update(value, &match)) {
        ++query.stats.matches;
        query.stats.output_delay.Add(
            static_cast<double>(match.report_time - match.end));
        Dispatch(query, match);
        ++reported;
      }
    }
  } else {
    stream.obs_pushes->Increment();
    for (const int64_t query_id : stream.query_ids) {
      QueryEntry& query = queries_[static_cast<size_t>(query_id)];
      ++query.stats.ticks;
      query.obs.ticks->Increment();
      const bool had_candidate = query.matcher->has_pending_candidate();
      const bool had_best = query.matcher->has_best();
      const double prev_best = query.matcher->best_distance();
      const bool reported_here = query.matcher->Update(value, &match);
      ObserveUpdate(*query.matcher, query, query_id, obs::TraceSpace::kScalar,
                    had_candidate, had_best, prev_best, reported_here);
      if (reported_here) {
        ++query.stats.matches;
        query.stats.output_delay.Add(
            static_cast<double>(match.report_time - match.end));
        ObserveMatch(query, query_id, obs::TraceSpace::kScalar, match,
                     obs::TraceEventKind::kMatchReported);
        Dispatch(query, match);
        ++reported;
      }
    }
  }

  if (cost_sampled) {
    AccumulateCost(stream, util::Stopwatch::NowNanos() - cost_start,
                   options_.cost_sample_every);
  }
  if (timed) {
    const double nanos =
        static_cast<double>(util::Stopwatch::NowNanos() - start_nanos);
    if (track_latency_) push_latency_nanos_.Add(nanos);
    if (obs_ != nullptr) obs_push_latency_->Observe(nanos);
  }
  if (obs_ != nullptr) MaybeReport();
  return reported;
}

util::StatusOr<int64_t> MonitorEngine::PushBatch(
    int64_t stream_id, std::span<const double> values) {
  if (stream_id < 0 || stream_id >= num_streams()) {
    return util::NotFoundError(
        util::StrFormat("no stream %lld", static_cast<long long>(stream_id)));
  }
  // Per-tick fallback: the only path in per-matcher mode, and the exact
  // path with a bundle attached (per-tick metrics and trace events) —
  // unless batch_with_obs keeps the pool run and trades the per-tick
  // candidate signals for throughput.
  if (!options_.batch_queries ||
      (obs_ != nullptr && !options_.batch_with_obs)) {
    int64_t reported = 0;
    for (const double value : values) {
      auto pushed = Push(stream_id, value);
      if (!pushed.ok()) return pushed;
      reported += *pushed;
    }
    return reported;
  }

  StreamEntry& stream = streams_[static_cast<size_t>(stream_id)];
  // Mirror the Push error contract: with repair disabled, values before the
  // first NaN are processed, then the push fails.
  size_t count = values.size();
  bool missing_error = false;
  if (!stream.repair_missing) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (ts::IsMissing(values[i])) {
        count = i;
        missing_error = true;
        break;
      }
    }
  }

  // Repair into the scratch buffer so the pool sees the post-repair stream.
  batch_values_.assign(values.begin(), values.begin() + count);
  if (stream.repair_missing) {
    for (double& value : batch_values_) {
      if (!stream.repairer_seeded && !ts::IsMissing(value)) {
        stream.repairer = ts::StreamingRepairer(value);
        stream.repairer_seeded = true;
      }
      value = stream.repairer.Next(value);
    }
  }

  // On the batched path the cost sampler times whole runs, 1 in every
  // cost_sample_every (the same per-stream counter the scalar path uses for
  // ticks), and attributes the measurement with that multiplier. Steady-
  // state batched ingest therefore pays for two clock reads only on sampled
  // runs. Without cost sampling, an attached bundle still times every run
  // so the push-latency histogram stays exact for metrics-only embedders.
  const bool cost_sampled =
      options_.cost_sample_every > 0 &&
      (stream.cost_push_calls++ %
       static_cast<uint64_t>(options_.cost_sample_every)) == 0;
  const bool timed =
      track_latency_ || cost_sampled ||
      (obs_ != nullptr && options_.cost_sample_every <= 0);
  int64_t start_nanos = 0;
  if (timed) start_nanos = util::Stopwatch::NowNanos();

  if (obs_ != nullptr && count > 0) {
    stream.obs_pushes->Increment(static_cast<int64_t>(count));
  }
  for (const int64_t query_id : stream.query_ids) {
    QueryEntry& query = queries_[static_cast<size_t>(query_id)];
    query.stats.ticks += static_cast<int64_t>(count);
    if (obs_ != nullptr && count > 0) {
      query.obs.ticks->Increment(static_cast<int64_t>(count));
    }
  }
  batch_reports_.clear();
  const int64_t reported = stream.pool.PushBatch(batch_values_,
                                                 &batch_reports_);
  for (const core::SpringBatchPool::Report& report : batch_reports_) {
    const int64_t query_id =
        stream.query_ids[static_cast<size_t>(report.query_index)];
    QueryEntry& query = queries_[static_cast<size_t>(query_id)];
    ++query.stats.matches;
    query.stats.output_delay.Add(
        static_cast<double>(report.match.report_time - report.match.end));
    if (obs_ != nullptr) {
      ObserveMatch(query, query_id, obs::TraceSpace::kScalar, report.match,
                   obs::TraceEventKind::kMatchReported);
    }
    Dispatch(query, report.match);
  }

  if (timed) {
    const int64_t elapsed = util::Stopwatch::NowNanos() - start_nanos;
    // One sample for the whole run; per-value latency is not observable on
    // the batched path.
    if (track_latency_) push_latency_nanos_.Add(static_cast<double>(elapsed));
    if (obs_ != nullptr) {
      obs_push_latency_->Observe(static_cast<double>(elapsed));
    }
    if (cost_sampled) {
      AccumulateCost(stream, elapsed, options_.cost_sample_every);
    }
  }
  if (missing_error) {
    return util::InvalidArgumentError(
        "missing value pushed to a stream with repair disabled");
  }
  return reported;
}

int64_t MonitorEngine::AddVectorStream(std::string name, int64_t dims) {
  SPRINGDTW_CHECK_GE(dims, 1);
  VectorStreamEntry entry;
  entry.name = std::move(name);
  entry.dims = dims;
  if (obs_ != nullptr) {
    entry.obs_pushes = ResolvePushCounter(entry.name, /*vector_space=*/true);
  }
  vector_streams_.push_back(std::move(entry));
  if (obs_streams_ != nullptr) {
    obs_streams_->Set(
        static_cast<double>(num_streams() + num_vector_streams()));
  }
  return static_cast<int64_t>(vector_streams_.size()) - 1;
}

util::StatusOr<int64_t> MonitorEngine::AddVectorQuery(
    int64_t stream_id, std::string name, ts::VectorSeries query,
    const core::SpringOptions& options) {
  if (stream_id < 0 || stream_id >= num_vector_streams()) {
    return util::NotFoundError(util::StrFormat(
        "no vector stream %lld", static_cast<long long>(stream_id)));
  }
  VectorStreamEntry& stream = vector_streams_[static_cast<size_t>(stream_id)];
  if (query.empty()) {
    return util::InvalidArgumentError("empty vector query");
  }
  if (query.dims() != stream.dims) {
    return util::InvalidArgumentError(util::StrFormat(
        "query has %lld channels, stream has %lld",
        static_cast<long long>(query.dims()),
        static_cast<long long>(stream.dims)));
  }
  for (const double v : query.data()) {
    if (ts::IsMissing(v)) {
      return util::InvalidArgumentError(
          "vector query contains missing values; repair it first");
    }
  }
  const int64_t query_id = static_cast<int64_t>(vector_queries_.size());
  vector_queries_.push_back(VectorQueryEntry{
      stream_id, std::move(name),
      core::VectorSpringMatcher(std::move(query), options), QueryStats{},
      QueryObs{}});
  stream.query_ids.push_back(query_id);
  if (obs_ != nullptr) {
    vector_queries_.back().obs = ResolveQueryObs(
        stream.name, vector_queries_.back().name, /*vector_space=*/true);
    obs_queries_->Set(
        static_cast<double>(num_active_queries() + num_vector_queries()));
  }
  return query_id;
}

void MonitorEngine::DispatchVector(const VectorQueryEntry& query,
                                   const core::Match& match) {
  MatchOrigin origin;
  origin.stream_id = query.stream_id;
  origin.query_id = &query - vector_queries_.data();
  origin.stream_name =
      vector_streams_[static_cast<size_t>(query.stream_id)].name;
  origin.query_name = query.name;
  for (MatchSink* sink : sinks_) sink->OnMatch(origin, match);
}

util::StatusOr<int64_t> MonitorEngine::PushRow(int64_t stream_id,
                                               std::span<const double> row) {
  if (stream_id < 0 || stream_id >= num_vector_streams()) {
    return util::NotFoundError(util::StrFormat(
        "no vector stream %lld", static_cast<long long>(stream_id)));
  }
  VectorStreamEntry& stream = vector_streams_[static_cast<size_t>(stream_id)];
  if (static_cast<int64_t>(row.size()) != stream.dims) {
    return util::InvalidArgumentError(util::StrFormat(
        "row has %zu values, stream has %lld channels", row.size(),
        static_cast<long long>(stream.dims)));
  }
  for (const double v : row) {
    if (ts::IsMissing(v)) {
      return util::InvalidArgumentError(
          "vector streams do not repair missing values; row has NaN");
    }
  }

  const bool timed = track_latency_ || obs_ != nullptr;
  int64_t start_nanos = 0;
  if (timed) start_nanos = util::Stopwatch::NowNanos();

  int64_t reported = 0;
  core::Match match;
  if (obs_ == nullptr) {
    for (const int64_t query_id : stream.query_ids) {
      VectorQueryEntry& query =
          vector_queries_[static_cast<size_t>(query_id)];
      ++query.stats.ticks;
      if (query.matcher.Update(row, &match)) {
        ++query.stats.matches;
        query.stats.output_delay.Add(
            static_cast<double>(match.report_time - match.end));
        DispatchVector(query, match);
        ++reported;
      }
    }
  } else {
    stream.obs_pushes->Increment();
    for (const int64_t query_id : stream.query_ids) {
      VectorQueryEntry& query =
          vector_queries_[static_cast<size_t>(query_id)];
      ++query.stats.ticks;
      query.obs.ticks->Increment();
      const bool had_candidate = query.matcher.has_pending_candidate();
      const bool had_best = query.matcher.has_best();
      const double prev_best = query.matcher.best_distance();
      const bool reported_here = query.matcher.Update(row, &match);
      ObserveUpdate(query.matcher, query, query_id, obs::TraceSpace::kVector,
                    had_candidate, had_best, prev_best, reported_here);
      if (reported_here) {
        ++query.stats.matches;
        query.stats.output_delay.Add(
            static_cast<double>(match.report_time - match.end));
        ObserveMatch(query, query_id, obs::TraceSpace::kVector, match,
                     obs::TraceEventKind::kMatchReported);
        DispatchVector(query, match);
        ++reported;
      }
    }
  }

  if (timed) {
    const double nanos =
        static_cast<double>(util::Stopwatch::NowNanos() - start_nanos);
    if (track_latency_) push_latency_nanos_.Add(nanos);
    if (obs_ != nullptr) obs_push_latency_->Observe(nanos);
  }
  if (obs_ != nullptr) MaybeReport();
  return reported;
}

const QueryStats& MonitorEngine::vector_stats(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_vector_queries());
  return vector_queries_[static_cast<size_t>(query_id)].stats;
}

int64_t MonitorEngine::FlushAll() {
  int64_t reported = 0;
  core::Match match;
  if (options_.batch_queries) {
    // Pools flush per stream; collect and re-order so sinks see the same
    // global query-id order the per-matcher loop produces.
    std::vector<std::pair<int64_t, core::Match>> flushed;
    for (StreamEntry& stream : streams_) {
      batch_reports_.clear();
      stream.pool.Flush(&batch_reports_);
      for (const core::SpringBatchPool::Report& report : batch_reports_) {
        flushed.emplace_back(
            stream.query_ids[static_cast<size_t>(report.query_index)],
            report.match);
      }
    }
    std::sort(flushed.begin(), flushed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [query_id, flushed_match] : flushed) {
      QueryEntry& query = queries_[static_cast<size_t>(query_id)];
      ++query.stats.matches;
      query.stats.output_delay.Add(
          static_cast<double>(flushed_match.report_time - flushed_match.end));
      if (obs_ != nullptr) {
        query.obs.candidates_flushed->Increment();
        ObserveMatch(query, query_id, obs::TraceSpace::kScalar, flushed_match,
                     obs::TraceEventKind::kCandidateFlushed);
      }
      Dispatch(query, flushed_match);
      ++reported;
    }
  } else {
    for (size_t i = 0; i < queries_.size(); ++i) {
      QueryEntry& query = queries_[i];
      if (query.removed) continue;
      if (query.matcher->Flush(&match)) {
        ++query.stats.matches;
        query.stats.output_delay.Add(
            static_cast<double>(match.report_time - match.end));
        if (obs_ != nullptr) {
          query.obs.candidates_flushed->Increment();
          ObserveMatch(query, static_cast<int64_t>(i),
                       obs::TraceSpace::kScalar, match,
                       obs::TraceEventKind::kCandidateFlushed);
        }
        Dispatch(query, match);
        ++reported;
      }
    }
  }
  for (size_t i = 0; i < vector_queries_.size(); ++i) {
    VectorQueryEntry& query = vector_queries_[i];
    if (query.matcher.Flush(&match)) {
      ++query.stats.matches;
      query.stats.output_delay.Add(
          static_cast<double>(match.report_time - match.end));
      if (obs_ != nullptr) {
        query.obs.candidates_flushed->Increment();
        ObserveMatch(query, static_cast<int64_t>(i),
                     obs::TraceSpace::kVector, match,
                     obs::TraceEventKind::kCandidateFlushed);
      }
      DispatchVector(query, match);
      ++reported;
    }
  }
  return reported;
}

void MonitorEngine::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    obs_push_latency_ = nullptr;
    obs_memory_bytes_ = nullptr;
    obs_streams_ = nullptr;
    obs_queries_ = nullptr;
    obs_checkpoint_saves_ = nullptr;
    obs_checkpoint_restores_ = nullptr;
    obs_trace_dropped_ = nullptr;
    for (StreamEntry& stream : streams_) stream.obs_pushes = nullptr;
    for (VectorStreamEntry& stream : vector_streams_) {
      stream.obs_pushes = nullptr;
    }
    for (QueryEntry& query : queries_) query.obs = QueryObs{};
    for (VectorQueryEntry& query : vector_queries_) query.obs = QueryObs{};
    return;
  }
  ResolveEngineObs();
  for (StreamEntry& stream : streams_) {
    stream.obs_pushes = ResolvePushCounter(stream.name, false);
  }
  for (VectorStreamEntry& stream : vector_streams_) {
    stream.obs_pushes = ResolvePushCounter(stream.name, true);
  }
  for (QueryEntry& query : queries_) {
    if (query.removed) continue;
    query.obs = ResolveQueryObs(
        streams_[static_cast<size_t>(query.stream_id)].name, query.name,
        false);
  }
  for (VectorQueryEntry& query : vector_queries_) {
    query.obs = ResolveQueryObs(
        vector_streams_[static_cast<size_t>(query.stream_id)].name,
        query.name, true);
  }
  obs_streams_->Set(static_cast<double>(num_streams() + num_vector_streams()));
  obs_queries_->Set(static_cast<double>(num_active_queries() + num_vector_queries()));
}

void MonitorEngine::ResolveEngineObs() {
  obs::MetricsRegistry& registry = obs_->registry();
  obs_push_latency_ = registry.GetHistogram(
      kMetricPushLatency, "Per-Push/PushRow ingest latency in nanoseconds.");
  obs_memory_bytes_ = registry.GetGauge(
      kMetricMemoryBytes,
      "Aggregate matcher working-set bytes (refresh-time).");
  obs_streams_ = registry.GetGauge(kMetricStreams,
                                   "Registered streams (scalar + vector).");
  obs_queries_ = registry.GetGauge(kMetricQueries,
                                   "Registered queries (scalar + vector).");
  obs_checkpoint_saves_ = registry.GetCounter(
      kMetricCheckpointSaves, "Engine checkpoints serialized.");
  obs_checkpoint_restores_ = registry.GetCounter(
      kMetricCheckpointRestores, "Engine checkpoints restored.");
  obs_trace_dropped_ = registry.GetCounter(
      kMetricTraceDropped,
      "Trace-ring events overwritten before an export could read them.");
}

obs::Counter* MonitorEngine::ResolvePushCounter(
    const std::string& stream_name, bool vector_space) {
  return obs_->registry().GetCounter(
      kMetricPushes, "Values ingested per stream (Push/PushRow calls).",
      obs::Labels{{"stream", stream_name},
                  {"space", SpaceName(vector_space)}});
}

MonitorEngine::QueryObs MonitorEngine::ResolveQueryObs(
    const std::string& stream_name, const std::string& query_name,
    bool vector_space) {
  obs::MetricsRegistry& registry = obs_->registry();
  const obs::Labels labels{{"stream", stream_name},
                           {"query", query_name},
                           {"space", SpaceName(vector_space)}};
  QueryObs handles;
  handles.ticks = registry.GetCounter(
      kMetricTicks, "Query-ticks processed (one per query per pushed value).",
      labels);
  handles.matches = registry.GetCounter(
      kMetricMatches, "Disjoint-query matches reported.", labels);
  handles.candidates_opened = registry.GetCounter(
      kMetricCandidatesOpened,
      "Qualifying candidates captured where none was pending.", labels);
  handles.candidates_flushed = registry.GetCounter(
      kMetricCandidatesFlushed,
      "Pending candidates emitted by an end-of-stream flush.", labels);
  handles.best_improvements = registry.GetCounter(
      kMetricBestImprovements,
      "Times the running best-match (Problem 1) improved.", labels);
  handles.cells_pruned = registry.GetCounter(
      kMetricCellsPruned,
      "STWM cells discarded by the max_match_length constraint "
      "(refresh-time).",
      labels);
  handles.report_delay = registry.GetHistogram(
      kMetricReportDelay,
      "Report delay t_report - t_e in ticks (the paper's output time).",
      labels);
  handles.candidate_pending = registry.GetGauge(
      kMetricCandidatePending,
      "1 while a qualifying candidate is pending (refresh-time).", labels);
  return handles;
}

template <typename MatcherLike, typename Entry>
void MonitorEngine::ObserveUpdate(const MatcherLike& matcher, Entry& query,
                                  int64_t query_id, obs::TraceSpace space,
                                  bool had_candidate, bool had_best,
                                  double prev_best, bool reported) {
  // A report clears the pending candidate mid-Update, so after a report any
  // pending candidate is a newly opened one.
  if ((!had_candidate || reported) && matcher.has_pending_candidate()) {
    query.obs.candidates_opened->Increment();
    if (obs_->trace().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kCandidateOpened;
      event.space = space;
      event.tick = matcher.ticks_processed() - 1;
      event.stream_id = query.stream_id;
      event.query_id = query_id;
      event.start = matcher.candidate_start();
      event.end = matcher.candidate_end();
      event.distance = matcher.candidate_distance();
      obs_->trace().Record(event);
    }
  }
  if (matcher.has_best() &&
      (!had_best || matcher.best_distance() < prev_best)) {
    query.obs.best_improvements->Increment();
    if (obs_->trace().enabled()) {
      const core::Match best = matcher.best();
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kBestImproved;
      event.space = space;
      event.tick = matcher.ticks_processed() - 1;
      event.stream_id = query.stream_id;
      event.query_id = query_id;
      event.start = best.start;
      event.end = best.end;
      event.distance = best.distance;
      obs_->trace().Record(event);
    }
  }
}

template <typename Entry>
void MonitorEngine::ObserveMatch(Entry& query, int64_t query_id,
                                 obs::TraceSpace space,
                                 const core::Match& match,
                                 obs::TraceEventKind kind) {
  const int64_t delay = match.report_time - match.end;
  query.obs.matches->Increment();
  query.obs.report_delay->Observe(static_cast<double>(delay));
  if (obs_->trace().enabled()) {
    obs::TraceEvent event;
    event.kind = kind;
    event.space = space;
    event.tick = match.report_time;
    event.stream_id = query.stream_id;
    event.query_id = query_id;
    event.start = match.start;
    event.end = match.end;
    event.distance = match.distance;
    event.report_delay = delay;
    obs_->trace().Record(event);
  }
}

void MonitorEngine::MaybeReport() {
  obs::StatsReporterSink* reporter = obs_->reporter();
  if (reporter == nullptr || !reporter->Tick()) return;
  RefreshObservabilityGauges();
  reporter->Report(obs_->registry().Snapshot());
}

void MonitorEngine::RefreshObservabilityGauges() {
  if (obs_ == nullptr) return;
  obs_memory_bytes_->Set(static_cast<double>(Footprint().TotalBytes()));
  obs_streams_->Set(static_cast<double>(num_streams() + num_vector_streams()));
  obs_queries_->Set(static_cast<double>(num_active_queries() + num_vector_queries()));
  if (obs_->trace().enabled()) {
    const int64_t dropped = obs_->trace().dropped();
    obs_trace_dropped_->Increment(dropped - trace_dropped_exported_);
    trace_dropped_exported_ = dropped;
  }
  const auto refresh = [](auto& query, const auto& matcher) {
    query.obs.candidate_pending->Set(
        matcher.has_pending_candidate() ? 1.0 : 0.0);
    const int64_t pruned = matcher.cells_pruned_total();
    query.obs.cells_pruned->Increment(pruned -
                                      query.obs.cells_pruned_exported);
    query.obs.cells_pruned_exported = pruned;
  };
  for (QueryEntry& query : queries_) {
    if (query.removed) continue;
    if (options_.batch_queries) {
      refresh(query, core::PoolQueryView(
                         streams_[static_cast<size_t>(query.stream_id)].pool,
                         query.pool_index));
    } else {
      refresh(query, *query.matcher);
    }
  }
  for (VectorQueryEntry& query : vector_queries_) {
    refresh(query, query.matcher);
  }
}

int64_t MonitorEngine::PendingCandidateCount() const {
  int64_t pending = 0;
  const auto count = [&pending](const auto& matcher) {
    if (matcher.has_pending_candidate()) ++pending;
  };
  for (const QueryEntry& query : queries_) {
    if (query.removed) continue;
    if (options_.batch_queries) {
      count(core::PoolQueryView(
          streams_[static_cast<size_t>(query.stream_id)].pool,
          query.pool_index));
    } else {
      count(*query.matcher);
    }
  }
  for (const VectorQueryEntry& query : vector_queries_) {
    count(query.matcher);
  }
  return pending;
}

const QueryStats& MonitorEngine::stats(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  return queries_[static_cast<size_t>(query_id)].stats;
}

void MonitorEngine::AccumulateCost(StreamEntry& stream, int64_t elapsed_nanos,
                                   int64_t multiplier) {
  if (elapsed_nanos <= 0 || stream.query_ids.empty()) return;
  // Attribute by query length: one tick costs O(m) STWM cells per query,
  // so a stream-level measurement splits across its queries as m_i / sum_m.
  const auto length_of = [&](const QueryEntry& query) {
    return options_.batch_queries
               ? stream.pool.query_length(query.pool_index)
               : query.matcher->query_length();
  };
  int64_t total_m = 0;
  for (const int64_t id : stream.query_ids) {
    total_m += length_of(queries_[static_cast<size_t>(id)]);
  }
  if (total_m <= 0) return;
  const double scaled = static_cast<double>(elapsed_nanos) *
                        static_cast<double>(multiplier);
  for (const int64_t id : stream.query_ids) {
    QueryEntry& query = queries_[static_cast<size_t>(id)];
    query.est_cpu_nanos += static_cast<int64_t>(
        scaled * static_cast<double>(length_of(query)) /
        static_cast<double>(total_m));
  }
}

int64_t MonitorEngine::QueryCellsComputed(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  const QueryEntry& query = queries_[static_cast<size_t>(query_id)];
  if (query.removed) return 0;
  if (options_.batch_queries) {
    return streams_[static_cast<size_t>(query.stream_id)]
        .pool.cells_computed_total(query.pool_index);
  }
  return query.matcher->cells_computed_total();
}

int64_t MonitorEngine::QueryEstCpuNanos(int64_t query_id) const {
  SPRINGDTW_CHECK(query_id >= 0 && query_id < num_queries());
  return queries_[static_cast<size_t>(query_id)].est_cpu_nanos;
}

util::MemoryFootprint MonitorEngine::Footprint() const {
  util::MemoryFootprint fp;
  if (options_.batch_queries) {
    for (const StreamEntry& stream : streams_) {
      fp.Merge(stream.pool.Footprint());
    }
  } else {
    for (const QueryEntry& query : queries_) {
      if (query.removed) continue;
      fp.Merge(query.matcher->Footprint());
    }
  }
  for (const VectorQueryEntry& query : vector_queries_) {
    fp.Merge(query.matcher.Footprint());
  }
  return fp;
}

namespace {

constexpr uint32_t kEngineMagic = 0x53505245;  // "SPRE"
// Version 2 appends the latency-tracking flag and the push-latency
// histogram, so latency history survives checkpoint/restore. Version 1
// checkpoints still restore (with an empty histogram).
constexpr uint32_t kEngineVersion = 2;

void WriteStats(util::ByteWriter* writer, const QueryStats& stats) {
  writer->WriteI64(stats.ticks);
  writer->WriteI64(stats.matches);
  stats.output_delay.SerializeTo(writer);
}

bool ReadStats(util::ByteReader* reader, QueryStats* stats) {
  return reader->ReadI64(&stats->ticks) &&
         reader->ReadI64(&stats->matches) &&
         stats->output_delay.DeserializeFrom(reader);
}

}  // namespace

std::vector<uint8_t> MonitorEngine::SerializeState() const {
  util::ByteWriter writer;
  writer.WriteU32(kEngineMagic);
  writer.WriteU32(kEngineVersion);

  writer.WriteU64(streams_.size());
  for (const StreamEntry& stream : streams_) {
    writer.WriteString(stream.name);
    writer.WriteBool(stream.repair_missing);
    writer.WriteBool(stream.repairer_seeded);
    writer.WriteDouble(stream.repairer.last());
  }
  // Tombstoned (removed) queries are omitted, so restore produces a dense
  // engine and serialize -> restore -> serialize is byte-identical.
  writer.WriteU64(static_cast<uint64_t>(num_active_queries()));
  for (size_t i = 0; i < queries_.size(); ++i) {
    const QueryEntry& query = queries_[i];
    if (query.removed) continue;
    writer.WriteI64(query.stream_id);
    writer.WriteString(query.name);
    // SerializeQueryState emits identical bytes in both engine modes, so
    // checkpoints are mode-portable.
    writer.WriteBytes(SerializeQueryState(static_cast<int64_t>(i)));
    WriteStats(&writer, query.stats);
  }

  writer.WriteU64(vector_streams_.size());
  for (const VectorStreamEntry& stream : vector_streams_) {
    writer.WriteString(stream.name);
    writer.WriteI64(stream.dims);
  }
  writer.WriteU64(vector_queries_.size());
  for (const VectorQueryEntry& query : vector_queries_) {
    writer.WriteI64(query.stream_id);
    writer.WriteString(query.name);
    const std::vector<uint8_t> snapshot = query.matcher.SerializeState();
    writer.WriteBytes(snapshot);
    WriteStats(&writer, query.stats);
  }

  writer.WriteBool(track_latency_);
  push_latency_nanos_.SerializeTo(&writer);

  if (obs_ != nullptr) {
    obs_checkpoint_saves_->Increment();
    if (obs_->trace().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kCheckpointSave;
      obs_->trace().Record(event);
    }
  }

#if SPRINGDTW_ENABLE_INVARIANT_CHECKS
  // Checkpoint round-trip equivalence: restoring the bytes into a fresh
  // engine and re-serializing must be byte-identical. The thread-local
  // guard stops the nested SerializeState from checking again.
  {
    static thread_local bool in_round_trip = false;
    if (!in_round_trip) {
      in_round_trip = true;
      MonitorEngine shadow;
      const util::Status restore = shadow.RestoreState(writer.buffer());
      SPRINGDTW_CHECK(restore.ok())
          << "engine checkpoint does not restore: " << restore.ToString();
      SPRINGDTW_CHECK(shadow.SerializeState() == writer.buffer())
          << "engine checkpoint round-trip not byte-identical";
      in_round_trip = false;
    }
  }
#endif
  return writer.Take();
}

util::Status MonitorEngine::RestoreState(std::span<const uint8_t> bytes) {
  if (num_streams() > 0 || num_queries() > 0 || num_vector_streams() > 0 ||
      num_vector_queries() > 0) {
    return util::FailedPreconditionError(
        "RestoreState requires a fresh engine");
  }
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kEngineMagic) {
    return util::InvalidArgumentError("not a MonitorEngine checkpoint");
  }
  if (version < 1 || version > kEngineVersion) {
    return util::InvalidArgumentError("unsupported checkpoint version");
  }

  uint64_t num_scalar_streams = 0;
  reader.ReadU64(&num_scalar_streams);
  for (uint64_t i = 0; reader.ok() && i < num_scalar_streams; ++i) {
    StreamEntry stream;
    double last = 0.0;
    reader.ReadString(&stream.name);
    reader.ReadBool(&stream.repair_missing);
    reader.ReadBool(&stream.repairer_seeded);
    reader.ReadDouble(&last);
    stream.repairer = ts::StreamingRepairer(last);
    streams_.push_back(std::move(stream));
  }

  uint64_t num_scalar_queries = 0;
  reader.ReadU64(&num_scalar_queries);
  for (uint64_t i = 0; reader.ok() && i < num_scalar_queries; ++i) {
    int64_t stream_id = 0;
    std::string name;
    std::span<const uint8_t> snapshot;
    reader.ReadI64(&stream_id);
    reader.ReadString(&name);
    if (!reader.ReadBytesSpan(&snapshot)) {
      return util::InvalidArgumentError("checkpoint truncated");
    }
    auto matcher = core::SpringMatcher::DeserializeState(snapshot);
    if (!matcher.ok()) return matcher.status();
    QueryStats stats;
    if (!ReadStats(&reader, &stats)) {
      return util::InvalidArgumentError("checkpoint stats truncated");
    }
    if (stream_id < 0 || stream_id >= num_streams()) {
      return util::InvalidArgumentError("checkpoint query has bad stream");
    }
    QueryEntry entry;
    entry.stream_id = stream_id;
    entry.name = std::move(name);
    entry.stats = stats;
    if (options_.batch_queries) {
      entry.pool_index =
          streams_[static_cast<size_t>(stream_id)].pool.AdoptMatcher(
              *matcher);
    } else {
      entry.matcher = std::move(*matcher);
    }
    queries_.push_back(std::move(entry));
    streams_[static_cast<size_t>(stream_id)].query_ids.push_back(
        static_cast<int64_t>(queries_.size()) - 1);
  }

  uint64_t num_vec_streams = 0;
  reader.ReadU64(&num_vec_streams);
  for (uint64_t i = 0; reader.ok() && i < num_vec_streams; ++i) {
    VectorStreamEntry stream;
    reader.ReadString(&stream.name);
    reader.ReadI64(&stream.dims);
    if (stream.dims < 1) {
      return util::InvalidArgumentError("checkpoint vector stream corrupt");
    }
    vector_streams_.push_back(std::move(stream));
  }

  uint64_t num_vec_queries = 0;
  reader.ReadU64(&num_vec_queries);
  for (uint64_t i = 0; reader.ok() && i < num_vec_queries; ++i) {
    int64_t stream_id = 0;
    std::string name;
    std::span<const uint8_t> snapshot;
    reader.ReadI64(&stream_id);
    reader.ReadString(&name);
    if (!reader.ReadBytesSpan(&snapshot)) {
      return util::InvalidArgumentError("checkpoint truncated");
    }
    auto matcher = core::VectorSpringMatcher::DeserializeState(snapshot);
    if (!matcher.ok()) return matcher.status();
    QueryStats stats;
    if (!ReadStats(&reader, &stats)) {
      return util::InvalidArgumentError("checkpoint stats truncated");
    }
    if (stream_id < 0 || stream_id >= num_vector_streams()) {
      return util::InvalidArgumentError("checkpoint query has bad stream");
    }
    if (matcher->dims() !=
        vector_streams_[static_cast<size_t>(stream_id)].dims) {
      return util::InvalidArgumentError("checkpoint dims mismatch");
    }
    vector_queries_.push_back(VectorQueryEntry{
        stream_id, std::move(name), std::move(*matcher), stats, QueryObs{}});
    vector_streams_[static_cast<size_t>(stream_id)].query_ids.push_back(
        static_cast<int64_t>(vector_queries_.size()) - 1);
  }

  if (version >= 2) {
    if (!reader.ReadBool(&track_latency_) ||
        !push_latency_nanos_.DeserializeFrom(&reader)) {
      return util::InvalidArgumentError("checkpoint latency state corrupt");
    }
  }

  if (!reader.ok()) {
    return util::InvalidArgumentError("checkpoint truncated");
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("checkpoint has trailing bytes");
  }

  if (obs_ != nullptr) {
    // Re-resolve per-stream/per-query handles for the restored topology.
    AttachObservability(obs_);
    obs_checkpoint_restores_->Increment();
    if (obs_->trace().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kCheckpointRestore;
      obs_->trace().Record(event);
    }
  }
  return util::Status::Ok();
}

}  // namespace monitor
}  // namespace springdtw
