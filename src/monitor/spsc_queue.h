#ifndef SPRINGDTW_MONITOR_SPSC_QUEUE_H_
#define SPRINGDTW_MONITOR_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/mutex.h"

namespace springdtw {
namespace monitor {

/// Bounded single-producer single-consumer queue (Lamport ring buffer) with
/// a busy/park hybrid wait, built for the ShardedMonitor's router→worker
/// tick channels.
///
/// Memory ordering (the contract docs/SCALEOUT.md documents): the producer
/// publishes a slot with a release store of `tail_`; the consumer's acquire
/// load of `tail_` therefore observes the fully written slot. Symmetrically
/// the consumer releases `head_` after moving a slot out, so the producer's
/// acquire load of `head_` knows the slot is free to reuse. Each side
/// caches the other's index and refreshes it only on apparent full/empty,
/// keeping the fast path to one relaxed load, one plain slot write/read,
/// and one release store.
///
/// Blocking waits spin briefly, then park on a mutex + condition variable.
/// Wakers notify the opposite side's condvar WITHOUT taking its mutex —
/// the success path of TryPush/TryPop can run while the caller holds its
/// own park mutex, so locking the opposite mutex there would be an ABBA
/// deadlock when both sides park at once (the tsan leg caught exactly
/// that). The un-synchronized parked-flag read and the lockless notify can
/// each lose a wakeup to a waiter that is just about to park; the bounded
/// `WaitForMillis` re-check (1ms) turns that lost wakeup into bounded
/// latency instead of a hang. This keeps the hot path free of fences and is
/// clean under TSan.
///
/// Exactly one producer thread and one consumer thread; the roles may be
/// taken by different threads over time only if the handoff itself is
/// synchronized (the ShardedMonitor's drain barrier provides this).
template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscQueue(size_t capacity) {
    size_t rounded = 2;
    while (rounded < capacity) rounded *= 2;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer: enqueues by move when space is available. On success `item`
  /// is moved from and the call returns true; on a full queue `item` is
  /// untouched and the call returns false.
  bool TryPush(T& item) {
    // order: relaxed — tail_ is producer-owned; only this thread writes it.
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      // order: acquire — pairs with the consumer's release store of head_;
      // proves the slot we are about to overwrite was fully moved out.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[static_cast<size_t>(tail) & mask_] = std::move(item);
    // order: release — publishes the slot write above to the consumer's
    // acquire load of tail_.
    tail_.store(tail + 1, std::memory_order_release);
    // Notify WITHOUT taking consumer_mu_: Pop holds its own mutex while
    // re-trying, and its success path lands here symmetrically — taking
    // the opposite lock from inside that region is an ABBA deadlock when
    // both sides park at once. The lockless notify can lose a wakeup to a
    // waiter that has not parked yet; the 1ms WaitForMillis bound absorbs
    // it.
    // order: relaxed — parked flag is a wake-up hint; a stale read costs at
    // most one 1ms wait slice, never correctness.
    if (consumer_parked_.load(std::memory_order_relaxed)) {
      consumer_cv_.NotifyOne();
    }
    return true;
  }

  /// Producer: blocking enqueue — spins, then parks in 1ms slices until a
  /// slot frees up.
  void Push(T item) {
    if (TryPush(item)) return;
    // Contention accounting for the introspection metrics: counted once per
    // blocked Push (ring full on first attempt), and once more if the spin
    // phase gives up and parks.
    // order: relaxed — monitoring counter, never synchronization.
    blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
    for (int spin = 1; spin < kSpinIterations; ++spin) {
      if (TryPush(item)) return;
    }
    // order: relaxed — monitoring counter, never synchronization.
    producer_parks_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(&producer_mu_);
    // order: relaxed — parked flag is a wake-up hint (see TryPop's notify);
    // the bounded wait below absorbs a missed store.
    producer_parked_.store(true, std::memory_order_relaxed);
    while (!TryPush(item)) {
      producer_cv_.WaitForMillis(producer_mu_, 1);
    }
    // order: relaxed — hint only; see above.
    producer_parked_.store(false, std::memory_order_relaxed);
  }

  /// Consumer: dequeues into `*out` if an item is ready.
  bool TryPop(T* out) {
    // order: relaxed — head_ is consumer-owned; only this thread writes it.
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // order: acquire — pairs with the producer's release store of tail_;
      // proves the slot we are about to read was fully written.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[static_cast<size_t>(head) & mask_]);
    // order: release — publishes the slot move-out above to the producer's
    // acquire load of head_, freeing the slot for reuse.
    head_.store(head + 1, std::memory_order_release);
    // Lockless notify; see TryPush.
    // order: relaxed — parked flag is a wake-up hint; see TryPush.
    if (producer_parked_.load(std::memory_order_relaxed)) {
      producer_cv_.NotifyOne();
    }
    return true;
  }

  /// Consumer: blocking dequeue — spins, then parks in 1ms slices until an
  /// item arrives. Termination is the caller's concern (the ShardedMonitor
  /// delivers stop as an in-band sentinel message).
  void Pop(T* out) {
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (TryPop(out)) return;
    }
    // order: relaxed — monitoring counter, never synchronization.
    consumer_parks_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(&consumer_mu_);
    // order: relaxed — parked flag is a wake-up hint (see TryPush's
    // notify); the bounded wait below absorbs a missed store.
    consumer_parked_.store(true, std::memory_order_relaxed);
    while (!TryPop(out)) {
      consumer_cv_.WaitForMillis(consumer_mu_, 1);
    }
    // order: relaxed — hint only; see above.
    consumer_parked_.store(false, std::memory_order_relaxed);
  }

  /// Pushes that found the ring full on their first attempt (producer had
  /// to spin or park). Any thread may read these estimates.
  uint64_t blocked_pushes() const {
    // order: relaxed — monitoring counter read; staleness is fine.
    return blocked_pushes_.load(std::memory_order_relaxed);
  }
  /// Times the producer exhausted its spin budget and parked.
  uint64_t producer_parks() const {
    // order: relaxed — monitoring counter read; staleness is fine.
    return producer_parks_.load(std::memory_order_relaxed);
  }
  /// Times the consumer exhausted its spin budget and parked.
  uint64_t consumer_parks() const {
    // order: relaxed — monitoring counter read; staleness is fine.
    return consumer_parks_.load(std::memory_order_relaxed);
  }

  /// Racy size estimate for metrics/backpressure heuristics only.
  size_t ApproxSize() const {
    // order: relaxed — racy estimate by contract; no ordering needed.
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    // order: relaxed — racy estimate by contract; no ordering needed.
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  static constexpr int kSpinIterations = 256;

  std::vector<T> slots_;
  size_t mask_ = 0;

  // Producer side: owns tail_, caches head.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;

  // Consumer side: owns head_, caches tail.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;

  // Contention counters (see accessors). Off the fast path: only touched
  // after a failed TryPush/TryPop spin.
  std::atomic<uint64_t> blocked_pushes_{0};
  std::atomic<uint64_t> producer_parks_{0};
  std::atomic<uint64_t> consumer_parks_{0};

  // Parking. The flags are hints (see class comment); the 1ms wait bound
  // makes a missed notify cost latency, never correctness. The park
  // mutexes guard NO data — the ring itself synchronizes via the
  // acquire/release index protocol — so they are deliberately not paired
  // with any GUARDED_BY member.
  std::atomic<bool> consumer_parked_{false};
  std::atomic<bool> producer_parked_{false};
  // springdtw-lint: allow(thread-annotation) — park-only, guards no data.
  util::Mutex consumer_mu_;
  util::CondVar consumer_cv_;
  // springdtw-lint: allow(thread-annotation) — park-only, guards no data.
  util::Mutex producer_mu_;
  util::CondVar producer_cv_;
};

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_SPSC_QUEUE_H_
