#include "monitor/sink.h"

namespace springdtw {
namespace monitor {

void OstreamSink::OnMatch(const MatchOrigin& origin,
                          const core::Match& match) {
  (*out_) << origin.stream_name << "/" << origin.query_name << ": "
          << match.ToString() << "\n";
}

}  // namespace monitor
}  // namespace springdtw
