#ifndef SPRINGDTW_MONITOR_ENGINE_H_
#define SPRINGDTW_MONITOR_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/spring.h"
#include "core/spring_batch.h"
#include "core/vector_spring.h"
#include "monitor/sink.h"
#include "obs/observability.h"
#include "ts/repair.h"
#include "util/memory.h"
#include "util/stats.h"
#include "util/status.h"

namespace springdtw {
namespace monitor {

/// Per-query counters maintained by the engine.
struct QueryStats {
  int64_t ticks = 0;
  int64_t matches = 0;
  /// Distribution of (report_time - end) — how many ticks after a match's
  /// end SPRING needed before it could commit to it (the paper's "output
  /// time" column in Table 2, relative to the match end).
  util::RunningStats output_delay;
};

/// Engine construction options.
struct EngineOptions {
  /// When true, each scalar stream advances all of its queries through a
  /// per-stream structure-of-arrays pool (core::SpringBatchPool) instead of
  /// one SpringMatcher object per query — a single cache-friendly pass per
  /// tick, and PushBatch() processes whole value runs query-major. Match
  /// output, per-query stats, and checkpoints are bit-for-bit identical in
  /// both modes (the differential oracle test enforces this); batching only
  /// changes the memory layout. Vector streams always use per-query
  /// matchers.
  bool batch_queries = false;

  /// Keep PushBatch on the SoA pool path even with an observability bundle
  /// attached. By default an attached bundle forces PushBatch through the
  /// per-tick path so every per-tick signal (candidate/best counters, trace
  /// events) stays exact; with this flag the batched run is preserved —
  /// tick/push/match counters, report-delay histograms, and match trace
  /// events stay exact (counted per run), cost accounting samples whole
  /// runs on its usual cadence, and the per-tick candidate/best-improvement
  /// signals are skipped for those runs. The
  /// sharded monitor sets this for its shard engines: under ingest load the
  /// per-tick fallback costs ~2x throughput, which no diagnostic counter is
  /// worth.
  bool batch_with_obs = false;

  /// CPU cost sampling for per-query cost accounting (/queryz): when > 0,
  /// every Nth Push to a stream times the full query pass and attributes
  /// the elapsed nanoseconds (scaled by N) across the stream's queries in
  /// proportion to query length — the O(m)-per-tick SPRING cost model — so
  /// QueryEstCpuNanos() converges on each query's true CPU share without
  /// per-tick clock reads. The batched PushBatch path samples whole runs on
  /// the same cadence (scaled by N). 0 (the default) disables sampling: no
  /// clock reads, no accounting. Estimates are diagnostic and are not
  /// serialized into checkpoints.
  int64_t cost_sample_every = 0;
};

/// Multi-stream, multi-query monitoring engine: the operational shell around
/// SpringMatcher for the paper's headline use case ("monitor multiple
/// numerical streams" against pattern queries). Register streams, attach any
/// number of queries to each, push values as they arrive; matches fan out to
/// the registered sinks.
///
/// Threading model: an engine instance is confined to one thread — no member
/// is synchronized, and Push mutates matcher rows, stats, and sinks in
/// place. Matchers on different engines share nothing, so the supported
/// scale-out shape is stream sharding: partition streams across N engines,
/// one ingest thread each. monitor::ShardedMonitor packages exactly that
/// (hash-partitioned ingest over SPSC queues with deterministic merged
/// output); see docs/SCALEOUT.md for the model and its memory-ordering
/// contract.
class MonitorEngine {
 public:
  MonitorEngine() = default;
  explicit MonitorEngine(const EngineOptions& options) : options_(options) {}

  MonitorEngine(const MonitorEngine&) = delete;
  MonitorEngine& operator=(const MonitorEngine&) = delete;

  /// Registers a stream; returns its id. `repair_missing` replays the last
  /// value over NaN inputs (see ts::StreamingRepairer).
  int64_t AddStream(std::string name, bool repair_missing = true);

  /// Attaches a disjoint-query matcher for `query` to stream `stream_id`.
  /// Returns the query id, or an error for an unknown stream / empty query.
  util::StatusOr<int64_t> AddQuery(int64_t stream_id, std::string name,
                                   std::vector<double> query,
                                   const core::SpringOptions& options);

  /// Registers a sink; not owned; must outlive the engine.
  void AddSink(MatchSink* sink);

  /// Feeds one value to every query of `stream_id`. Returns the number of
  /// matches reported at this tick, or an error for an unknown stream.
  util::StatusOr<int64_t> Push(int64_t stream_id, double value);

  /// Retires query `query_id` at the current stream position: its matcher
  /// state is released (batch mode: the pool slot is compacted away) and it
  /// never reports again. A pending candidate is flushed to the sinks iff
  /// it is already report-eligible under the Problem-2 rule — no current-
  /// row STWM cell holds d < d_min with s <= t_e — exactly the condition a
  /// subsequent tick would have required before committing it; a candidate
  /// that could still be beaten by an in-flight warping path is dropped.
  /// Returns the number of matches flushed (0 or 1).
  ///
  /// The query id is tombstoned, not recycled: other query ids stay valid,
  /// stats(query_id) keeps returning the final counters, and checkpoints
  /// simply omit the removed query (so a restored engine re-serializes to
  /// the same bytes). Scalar queries only.
  util::StatusOr<int64_t> RemoveQuery(int64_t query_id);

  /// True when `query_id` was retired by RemoveQuery. Requires a valid id.
  bool query_removed(int64_t query_id) const;

  /// Feeds a contiguous run of values to every query of `stream_id`;
  /// returns the total number of matches reported. Exactly equivalent to
  /// calling Push once per value (same matches, same sink order, same
  /// stats), but in batch mode (EngineOptions::batch_queries) without an
  /// observability bundle the run is processed query-major so each query's
  /// DP rows stay in L1 across the whole span. With a bundle attached the
  /// engine falls back to per-tick processing to keep per-tick metrics and
  /// trace events exact.
  util::StatusOr<int64_t> PushBatch(int64_t stream_id,
                                    std::span<const double> values);

  /// Registers a k-dimensional ("vector") stream, Section 5.3 style.
  /// Vector streams have their own id space, separate from scalar streams.
  int64_t AddVectorStream(std::string name, int64_t dims);

  /// Attaches a vector query (same dims as the stream) to vector stream
  /// `stream_id`. Vector query ids are likewise their own id space.
  util::StatusOr<int64_t> AddVectorQuery(int64_t stream_id, std::string name,
                                         ts::VectorSeries query,
                                         const core::SpringOptions& options);

  /// Feeds one tick (exactly dims() values) to every query of vector
  /// stream `stream_id`. Missing values are not repaired for vector
  /// streams; rows must be finite.
  util::StatusOr<int64_t> PushRow(int64_t stream_id,
                                  std::span<const double> row);

  int64_t num_vector_streams() const {
    return static_cast<int64_t>(vector_streams_.size());
  }
  int64_t num_vector_queries() const {
    return static_cast<int64_t>(vector_queries_.size());
  }

  /// Per-vector-query counters. Requires a valid vector query id.
  const QueryStats& vector_stats(int64_t query_id) const;

  /// Flushes pending candidates of every query (end-of-stream semantics).
  /// Returns the number of matches emitted.
  int64_t FlushAll();

  /// Number of registered streams / query ids ever allocated (tombstoned
  /// ids from RemoveQuery included, so ids index stably into [0,
  /// num_queries())).
  int64_t num_streams() const {
    return static_cast<int64_t>(streams_.size());
  }
  int64_t num_queries() const {
    return static_cast<int64_t>(queries_.size());
  }
  /// Queries still live (num_queries() minus tombstones).
  int64_t num_active_queries() const;

  /// Per-query counters. Requires a valid query id.
  const QueryStats& stats(int64_t query_id) const;

  /// STWM cells this scalar query has computed since registration (ticks x
  /// query length, minus constraint-pruned work). Exact count maintained by
  /// the matcher; 0 after RemoveQuery. Requires a valid query id.
  int64_t QueryCellsComputed(int64_t query_id) const;

  /// Estimated CPU nanoseconds attributed to this scalar query by cost
  /// sampling (EngineOptions::cost_sample_every); 0 when sampling is off.
  /// Requires a valid query id.
  int64_t QueryEstCpuNanos(int64_t query_id) const;

  /// Running per-Push latency distribution, in nanoseconds. Latency
  /// tracking is off by default (it adds two clock reads per Push).
  void EnableLatencyTracking(bool enabled) { track_latency_ = enabled; }
  const util::LogHistogram& push_latency_nanos() const {
    return push_latency_nanos_;
  }

  /// Attaches an observability bundle: per-query counters and report-delay
  /// histograms flow into its metrics registry, match-lifecycle events into
  /// its trace ring, and its periodic reporter (if configured) renders a
  /// summary line every N ingested ticks. The bundle is not owned and must
  /// outlive the engine (or a later AttachObservability(nullptr)).
  ///
  /// Cost model: with no bundle attached (the default) every Push pays one
  /// null-pointer branch — no clock reads, no allocations. With a bundle
  /// attached, Push adds two clock reads plus a handful of pointer-indirect
  /// counter increments; instrument handles are resolved once here and at
  /// AddQuery time, never on the hot path.
  void AttachObservability(obs::Observability* obs);
  obs::Observability* observability() const { return obs_; }

  /// Brings refresh-style gauges (memory bytes, pending candidates, pruned
  /// cells) up to date in the attached registry. Call before rendering an
  /// exposition; the periodic reporter calls it automatically. No-op when
  /// no bundle is attached.
  void RefreshObservabilityGauges();

  /// Aggregate working-set bytes across all matchers.
  util::MemoryFootprint Footprint() const;

  /// Queries (scalar + vector) whose matcher currently holds a pending
  /// candidate (d_m <= epsilon, not yet reported). O(queries); used by the
  /// introspection /statusz endpoint.
  int64_t PendingCandidateCount() const;

  /// Serializes the entire engine — streams, queries, matcher states,
  /// per-query counters — into a versioned checkpoint, so a monitoring
  /// process can restart and resume every stream without replaying
  /// history. Sinks are not serialized (re-add them after restore).
  std::vector<uint8_t> SerializeState() const;

  /// Restores a checkpoint into this engine. The engine must be freshly
  /// constructed (no streams or queries registered); sinks may already be
  /// attached. On error the engine is left unusable for matching — discard
  /// it. Checkpoints are mode-portable: a batch-mode engine restores a
  /// per-matcher checkpoint byte-exactly and vice versa.
  util::Status RestoreState(std::span<const uint8_t> bytes);

  /// Serializes one scalar query's live matcher state (the bytes of
  /// core::SpringMatcher::SerializeState, identical in both engine modes).
  /// Building block for topology-changing restores — e.g. resharding a
  /// ShardedMonitor checkpoint into a different worker count — where whole-
  /// engine checkpoints cannot be replayed. Requires a valid, live
  /// (non-removed) query id.
  std::vector<uint8_t> SerializeQueryState(int64_t query_id) const;

  /// Attaches a query whose matcher state comes from a
  /// SerializeQueryState / SpringMatcher::SerializeState snapshot, resuming
  /// that query mid-stream on this engine. Returns the new query id.
  util::StatusOr<int64_t> AddQueryFromSnapshot(
      int64_t stream_id, std::string name,
      std::span<const uint8_t> snapshot);

  const EngineOptions& options() const { return options_; }

 private:
  /// Pre-resolved instrument handles for one query, so the observed ingest
  /// path performs no name or label lookups.
  struct QueryObs {
    obs::Counter* ticks = nullptr;
    obs::Counter* matches = nullptr;
    obs::Counter* candidates_opened = nullptr;
    obs::Counter* candidates_flushed = nullptr;
    obs::Counter* best_improvements = nullptr;
    obs::Counter* cells_pruned = nullptr;
    obs::Histogram* report_delay = nullptr;
    obs::Gauge* candidate_pending = nullptr;
    /// cells_pruned counter value already exported (the matcher keeps a
    /// running total; the counter advances by deltas at refresh time).
    int64_t cells_pruned_exported = 0;
  };

  struct StreamEntry {
    std::string name;
    bool repair_missing = true;
    ts::StreamingRepairer repairer;
    bool repairer_seeded = false;
    std::vector<int64_t> query_ids;
    /// Batch mode only: the SoA pool holding this stream's matcher state.
    /// Pool slot k corresponds to query_ids[k]. Empty in per-matcher mode.
    core::SpringBatchPool pool;
    obs::Counter* obs_pushes = nullptr;
    /// Push calls seen, for cost-sampling cadence (not serialized).
    uint64_t cost_push_calls = 0;
  };

  struct QueryEntry {
    int64_t stream_id = 0;
    std::string name;
    /// Engaged in per-matcher mode; in batch mode the authoritative state
    /// lives in the stream's pool at `pool_index`.
    std::optional<core::SpringMatcher> matcher;
    int64_t pool_index = -1;
    /// RemoveQuery tombstone: the entry stays in place (ids are stable) but
    /// holds no matcher state and is skipped everywhere but stats().
    bool removed = false;
    QueryStats stats;
    QueryObs obs;
    /// Sampled CPU attribution (see EngineOptions::cost_sample_every);
    /// diagnostic only, not serialized.
    int64_t est_cpu_nanos = 0;
  };

  struct VectorStreamEntry {
    std::string name;
    int64_t dims = 0;
    std::vector<int64_t> query_ids;
    obs::Counter* obs_pushes = nullptr;
  };

  struct VectorQueryEntry {
    int64_t stream_id = 0;
    std::string name;
    core::VectorSpringMatcher matcher;
    QueryStats stats;
    QueryObs obs;
  };

  void Dispatch(const QueryEntry& query, const core::Match& match);
  void DispatchVector(const VectorQueryEntry& query,
                      const core::Match& match);

  /// Resolves metric handles against the attached registry.
  QueryObs ResolveQueryObs(const std::string& stream_name,
                           const std::string& query_name, bool vector_space);
  obs::Counter* ResolvePushCounter(const std::string& stream_name,
                                   bool vector_space);
  void ResolveEngineObs();

  /// Post-Update bookkeeping for candidate-churn and best-improvement
  /// metrics and trace events. `reported` is Update()'s return value (a
  /// report clears the pending candidate, so a still-pending candidate
  /// after a report is a fresh one). `matcher` is anything exposing
  /// SpringMatcher's observability accessors — a matcher itself or a
  /// core::PoolQueryView over a batch-pool slot.
  template <typename MatcherLike, typename Entry>
  void ObserveUpdate(const MatcherLike& matcher, Entry& query,
                     int64_t query_id, obs::TraceSpace space,
                     bool had_candidate, bool had_best, double prev_best,
                     bool reported);

  /// Records a match-report or flush event (metrics + trace).
  template <typename Entry>
  void ObserveMatch(Entry& query, int64_t query_id, obs::TraceSpace space,
                    const core::Match& match, obs::TraceEventKind kind);

  /// Runs the periodic reporter if one is attached and due.
  void MaybeReport();

  /// Distributes `elapsed_nanos * multiplier` of measured CPU across the
  /// stream's queries in proportion to query length (the O(m)/tick model).
  void AccumulateCost(StreamEntry& stream, int64_t elapsed_nanos,
                      int64_t multiplier);

  EngineOptions options_;
  std::vector<StreamEntry> streams_;
  std::vector<QueryEntry> queries_;
  std::vector<VectorStreamEntry> vector_streams_;
  std::vector<VectorQueryEntry> vector_queries_;
  std::vector<MatchSink*> sinks_;
  /// Pre-Update snapshot for one query, captured before a batched pool
  /// advance so observability can detect candidate/best transitions.
  struct PreUpdate {
    bool had_candidate = false;
    bool had_best = false;
    double prev_best = 0.0;
  };

  /// Hot-path scratch (batch mode), kept as members so Push never
  /// allocates in steady state.
  std::vector<core::SpringBatchPool::Report> batch_reports_;
  std::vector<double> batch_values_;
  std::vector<PreUpdate> pre_update_scratch_;
  bool track_latency_ = false;
  util::LogHistogram push_latency_nanos_;

  obs::Observability* obs_ = nullptr;
  obs::Histogram* obs_push_latency_ = nullptr;
  obs::Gauge* obs_memory_bytes_ = nullptr;
  obs::Gauge* obs_streams_ = nullptr;
  obs::Gauge* obs_queries_ = nullptr;
  obs::Counter* obs_checkpoint_saves_ = nullptr;
  obs::Counter* obs_checkpoint_restores_ = nullptr;
  obs::Counter* obs_trace_dropped_ = nullptr;
  /// Trace-ring dropped() value already exported (delta pattern, like
  /// QueryObs::cells_pruned_exported).
  int64_t trace_dropped_exported_ = 0;
};

}  // namespace monitor
}  // namespace springdtw

#endif  // SPRINGDTW_MONITOR_ENGINE_H_
