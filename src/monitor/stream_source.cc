#include "monitor/stream_source.h"

namespace springdtw {
namespace monitor {

SeriesSource::SeriesSource(ts::Series series, bool repair)
    : series_(std::move(series)), repair_(repair) {
  // Seed the repairer with the first observed value so a leading gap does
  // not replay a meaningless zero.
  for (int64_t i = 0; i < series_.size(); ++i) {
    if (!ts::IsMissing(series_[i])) {
      repairer_ = ts::StreamingRepairer(series_[i]);
      break;
    }
  }
}

bool SeriesSource::Next(double* value) {
  if (position_ >= series_.size()) return false;
  const double raw = series_[position_++];
  *value = repair_ ? repairer_.Next(raw) : raw;
  return true;
}

void SeriesSource::Reset() {
  position_ = 0;
  repairer_ = ts::StreamingRepairer(repairer_.last());
}

}  // namespace monitor
}  // namespace springdtw
