#ifndef SPRINGDTW_OBS_EXPOSITION_H_
#define SPRINGDTW_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

namespace springdtw {
namespace obs {

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): "# HELP" / "# TYPE" headers per family, one "name{labels} value"
/// line per series. Histograms render as Prometheus summaries (quantile
/// label + _sum/_count), using the exact sample sketch for the quantiles
/// while it is complete.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Renders a snapshot as a single JSON object:
///   {"metrics":[{"name":...,"type":"counter","help":...,
///                "series":[{"labels":{...},"value":...}]}, ...]}
/// Histogram series carry count/sum/min/max/mean/p50/p90/p99/exact instead
/// of "value". Non-finite values render as null so output always parses.
std::string RenderJson(const MetricsSnapshot& snapshot);

/// Renders a compact single-line summary of the snapshot — counter totals
/// per family and p50/p99 per histogram — for the periodic stats reporter
/// and log files. No trailing newline.
std::string RenderSummaryLine(const MetricsSnapshot& snapshot);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string EscapePrometheusLabel(const std::string& value);

/// Escapes a JSON string body (quotes, backslashes, control characters).
std::string EscapeJson(const std::string& value);

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_EXPOSITION_H_
