#ifndef SPRINGDTW_OBS_TRACE_H_
#define SPRINGDTW_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace springdtw {
namespace obs {

/// Match-lifecycle trace events, in the order a SPRING candidate typically
/// moves through them.
enum class TraceEventKind : uint8_t {
  /// A qualifying candidate (d_m <= epsilon) was captured where none was
  /// pending.
  kCandidateOpened,
  /// The matcher's running best-match (Problem 1) improved.
  kBestImproved,
  /// A disjoint-query match was reported from the streaming path;
  /// report_delay carries the paper's output time t_report - t_e.
  kMatchReported,
  /// A still-pending candidate was emitted by an end-of-stream flush.
  kCandidateFlushed,
  /// The engine serialized a checkpoint.
  kCheckpointSave,
  /// The engine restored from a checkpoint.
  kCheckpointRestore,
  /// An alert rule changed state (obs::AlertEngine); query_id carries the
  /// rule index, start/end the old/new obs::AlertState, distance the
  /// observed value at the transition.
  kAlertTransition,
};

/// Stable lowercase name, e.g. "match_reported".
std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent;

/// Renders one event as a single JSON object (no trailing newline), e.g.
///   {"event":"match_reported","space":"scalar","tick":42,"stream":0,
///    "query":1,"start":10,"end":20,"distance":1.5,"report_delay":2}
/// Shared by TraceRing::DumpJsonl and the introspection server's /tracez.
std::string TraceEventJson(const TraceEvent& event);

/// Which id space stream_id/query_id refer to.
enum class TraceSpace : uint8_t { kScalar, kVector };

/// One structured trace record. Fixed-size POD so the ring buffer never
/// allocates after construction; names are resolved via the metrics side.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCandidateOpened;
  TraceSpace space = TraceSpace::kScalar;
  /// Stream tick at which the event happened (the query's local clock).
  int64_t tick = 0;
  int64_t stream_id = -1;
  int64_t query_id = -1;
  /// Subsequence extent, where meaningful (candidate/best/match events).
  int64_t start = 0;
  int64_t end = 0;
  double distance = 0.0;
  /// kMatchReported / kCandidateFlushed only: t_report - t_e.
  int64_t report_delay = 0;
};

/// Bounded-memory ring buffer of TraceEvents. Capacity is fixed at
/// construction (0 = tracing disabled); once full, new events overwrite the
/// oldest and dropped() counts what was lost. Record() is O(1) and
/// allocation-free.
class TraceRing {
 public:
  explicit TraceRing(int64_t capacity = 0);

  bool enabled() const { return capacity_ > 0; }
  int64_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  int64_t size() const;
  /// Events ever recorded, including overwritten ones.
  int64_t total_recorded() const { return total_; }
  /// Events lost to wrap-around.
  int64_t dropped() const;

  void Record(const TraceEvent& event);
  void Clear();

  /// Held events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Writes one JSON object per line (JSONL), oldest first, e.g.
  ///   {"event":"match_reported","space":"scalar","tick":42,"stream":0,
  ///    "query":1,"start":10,"end":20,"distance":1.5,"report_delay":2}
  void DumpJsonl(std::ostream& out) const;

 private:
  std::vector<TraceEvent> ring_;
  int64_t capacity_ = 0;
  int64_t total_ = 0;  // ring_[total_ % capacity_] is the next write slot.
};

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_TRACE_H_
