#ifndef SPRINGDTW_OBS_TIMELINE_H_
#define SPRINGDTW_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace springdtw {
namespace obs {

/// One resolution tier of the timeline wheel: `slots` buckets of
/// `width_seconds` each, covering the most recent width*slots seconds.
struct TimelineTier {
  double width_seconds = 1.0;
  int64_t slots = 120;
};

struct TimelineOptions {
  /// Finest tier first. Every coarser tier's width must be an integer
  /// multiple of the finest tier's width so bucket boundaries nest and the
  /// downsampling fold is exact (validated at construction; offending
  /// tiers are dropped). Defaults: 1s x 120, 10s x 90, 60s x 120 — two
  /// minutes at 1s, fifteen at 10s, two hours at 1m, in fixed memory.
  std::vector<TimelineTier> tiers;
  /// Hard cap on tracked channels (a labeled series contributes 1 channel
  /// per scalar field: counters 1, gauges 1, histograms 5). Channels past
  /// the cap are counted in dropped_channels() and ignored — memory stays
  /// fixed no matter what the registry grows.
  int64_t max_channels = 512;
};

/// How samples of a channel fold into buckets (and buckets into coarser
/// buckets): counters accumulate deltas (sum-exact across tiers), gauges
/// keep last/min/max (the envelope nests exactly across tiers).
enum class ChannelAgg : uint8_t { kDelta, kGauge };

/// "delta" / "gauge".
std::string_view ChannelAggName(ChannelAgg agg);

/// One filled bucket of one channel in one tier, oldest first in queries.
struct TimelinePoint {
  /// Bucket start, in seconds on the recording clock (start = epoch *
  /// width; monotone increasing within a series).
  double start_seconds = 0.0;
  /// kDelta: counter increase inside the bucket. kGauge: last sample.
  double value = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// kDelta only: value / bucket width, per second.
  double rate = 0.0;
  /// Snapshots folded into this bucket.
  int64_t samples = 0;
};

/// One channel's series for a query response.
struct TimelineSeries {
  std::string metric;
  /// Scalar field within the metric: "" for counter/gauge values,
  /// "count"/"sum"/"p50"/"p90"/"p99" for histogram channels.
  std::string field;
  Labels labels;
  ChannelAgg agg = ChannelAgg::kDelta;
  std::vector<TimelinePoint> points;
};

/// Result of MetricsTimeline::Query: the chosen tier plus every matching
/// channel's points within the window.
struct TimelineWindow {
  TimelineTier tier;
  double window_seconds = 0.0;
  std::vector<TimelineSeries> series;
};

/// Fixed-memory multi-resolution metrics history — the recording-rule layer
/// between the publish-snapshot protocol and /timez (docs/OBSERVABILITY.md).
///
/// Record() consumes a published MetricsSnapshot and folds every series
/// into per-tier ring buffers ("wheel" of rings): counter families record
/// the delta versus the previous snapshot (sums are exact at every
/// resolution: a 10s bucket equals the sum of its ten 1s constituents),
/// gauge families record last/min/max (the min/max envelope nests exactly
/// across tiers), histogram families decompose into count/sum delta
/// channels plus p50/p90/p99 gauge channels (the registry quantiles are
/// cumulative-since-start, so quantile points are instantaneous readings,
/// aggregated as gauges).
///
/// Not thread-safe: single writer, readers must serialize externally (the
/// ShardedMonitor guards it with its timeline mutex). Record() allocates
/// only when a new channel or its rings are first created; steady-state
/// recording is allocation-free.
class MetricsTimeline {
 public:
  explicit MetricsTimeline(TimelineOptions options = {});

  const std::vector<TimelineTier>& tiers() const { return tiers_; }
  int64_t num_channels() const {
    return static_cast<int64_t>(channels_.size());
  }
  /// Channels ignored because max_channels was reached.
  int64_t dropped_channels() const { return dropped_channels_; }
  /// Snapshots recorded so far.
  int64_t records() const { return records_; }
  uint64_t last_record_nanos() const { return last_record_nanos_; }

  void Record(uint64_t now_nanos, const MetricsSnapshot& snapshot);

  /// Channel points for `metric` (and `field`; empty matches the value
  /// channel of counters/gauges) over the trailing `window_seconds`,
  /// served from the finest tier whose span covers the window (the
  /// coarsest tier serves anything beyond its span). Empty metric matches
  /// nothing. Points are oldest-first with strictly increasing
  /// start_seconds.
  TimelineWindow Query(std::string_view metric, std::string_view field,
                       double window_seconds) const;

  /// Sum of kDelta-channel values for `metric`+`field` over the trailing
  /// `window_seconds` (finest tier), across all labeled series. The alert
  /// engine's rate() input.
  double DeltaOver(std::string_view metric, std::string_view field,
                   double window_seconds) const;

  /// Most recent recorded value of the gauge channel `metric`+`field`
  /// summed across labeled series; false when the channel has never
  /// recorded.
  bool LatestGauge(std::string_view metric, std::string_view field,
                   double* out) const;

  /// Fraction of filled finest-tier buckets in the trailing
  /// `window_seconds` whose gauge `value` satisfies `above_threshold`
  /// (value > threshold). -1 when no bucket in the window has data — the
  /// alert engine's burn-rate input.
  double BadBucketFraction(std::string_view metric, std::string_view field,
                           double window_seconds, double threshold) const;

  /// Sorted unique metric names with their channel fields, for the /timez
  /// index document.
  struct CatalogEntry {
    std::string metric;
    std::string field;
    ChannelAgg agg = ChannelAgg::kDelta;
    int64_t series = 0;
  };
  std::vector<CatalogEntry> Catalog() const;

 private:
  struct Bucket {
    /// Absolute bucket index (floor(now / width)); -1 = never filled. The
    /// ring slot is epoch % slots, so a stale epoch marks a wrapped slot.
    int64_t epoch = -1;
    double value = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t samples = 0;
  };

  struct Channel {
    int64_t family = 0;  // Index into families_ (name/kind registry).
    std::string field;
    Labels labels;
    ChannelAgg agg = ChannelAgg::kDelta;
    /// Previous cumulative sample for kDelta channels.
    double prev = 0.0;
    bool has_prev = false;
    /// tiers_.size() rings of tiers_[i].slots buckets each.
    std::vector<std::vector<Bucket>> rings;
  };

  struct FamilyEntry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
  };

  void RecordSample(uint64_t now_nanos, Channel* channel, double cumulative_or_value);
  Channel* FindOrCreateChannel(int64_t family, std::string_view field,
                               const Labels& labels, ChannelAgg agg);
  int64_t FindOrCreateFamily(std::string_view name, MetricKind kind);

  /// Channels matching metric+field; empty field also matches the ""
  /// channel.
  std::vector<const Channel*> MatchChannels(std::string_view metric,
                                            std::string_view field) const;

  std::vector<TimelineTier> tiers_;
  int64_t max_channels_ = 0;
  std::vector<FamilyEntry> families_;
  std::vector<Channel> channels_;
  /// (family, field, labels) -> channels_ index, so Record() resolves each
  /// snapshot series in O(1). The key string is rebuilt into key_scratch_
  /// (capacity retained), keeping steady-state recording allocation-free.
  std::unordered_map<std::string, size_t> channel_index_;
  std::string key_scratch_;
  int64_t dropped_channels_ = 0;
  int64_t records_ = 0;
  uint64_t last_record_nanos_ = 0;
};

/// Parses an URL query string ("metric=a&window=30&field=p99") into
/// key=value pairs, in order. No %-decoding (metric names and fields are
/// plain identifiers); a key without '=' gets an empty value.
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query);

/// Renders the /timez response for `query` ("metric=...&window=...
/// [&field=...]"): with a metric, a TimelineWindow document; without, the
/// catalog of recorded channels. Shape is validated by
/// springdtw_metrics_check --timez.
std::string RenderTimezJson(const MetricsTimeline& timeline,
                            std::string_view query);

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_TIMELINE_H_
