#include "obs/alert.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "obs/exposition.h"
#include "util/string_util.h"

namespace springdtw {
namespace obs {
namespace {

constexpr double kNanosPerSecond = 1e9;

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  return util::StrFormat("%.17g", v);
}

bool Compare(AlertCmp cmp, double value, double threshold) {
  switch (cmp) {
    case AlertCmp::kGt:
      return value > threshold;
    case AlertCmp::kGe:
      return value >= threshold;
    case AlertCmp::kLt:
      return value < threshold;
    case AlertCmp::kLe:
      return value <= threshold;
  }
  return false;
}

/// One metric reference: name[{key=value}][:field].
struct MetricRef {
  std::string metric;
  std::string field;
  std::string label_key;
  std::string label_value;
};

util::StatusOr<MetricRef> ParseMetricRef(std::string_view text) {
  MetricRef ref;
  text = util::StripWhitespace(text);
  if (text.empty()) {
    return util::InvalidArgumentError("alert rule: empty metric reference");
  }
  const size_t brace = text.find('{');
  if (brace != std::string_view::npos) {
    const size_t close = text.find('}', brace);
    if (close == std::string_view::npos) {
      return util::InvalidArgumentError(
          "alert rule: unterminated label filter");
    }
    const std::string_view filter = text.substr(brace + 1, close - brace - 1);
    const size_t eq = filter.find('=');
    if (eq == std::string_view::npos) {
      return util::InvalidArgumentError(
          "alert rule: label filter must be {key=value}");
    }
    ref.label_key = std::string(util::StripWhitespace(filter.substr(0, eq)));
    ref.label_value =
        std::string(util::StripWhitespace(filter.substr(eq + 1)));
    ref.metric = std::string(text.substr(0, brace));
    text = text.substr(close + 1);
  } else {
    const size_t colon = text.find(':');
    ref.metric = std::string(
        colon == std::string_view::npos ? text : text.substr(0, colon));
    text = colon == std::string_view::npos ? std::string_view()
                                           : text.substr(colon);
  }
  if (!text.empty()) {
    if (text.front() != ':') {
      return util::InvalidArgumentError(
          "alert rule: garbage after label filter");
    }
    ref.field = std::string(util::StripWhitespace(text.substr(1)));
  }
  if (ref.metric.empty()) {
    return util::InvalidArgumentError("alert rule: empty metric name");
  }
  return ref;
}

/// Parses a "<N>s" / "<N>" duration in seconds.
bool ParseSeconds(std::string_view text, double* out) {
  text = util::StripWhitespace(text);
  if (!text.empty() && (text.back() == 's' || text.back() == 'S')) {
    text = text.substr(0, text.size() - 1);
  }
  return util::ParseDouble(text, out) && *out >= 0.0;
}

void AssignRef(const MetricRef& ref, std::string* metric, std::string* field,
               std::string* label_key, std::string* label_value) {
  *metric = ref.metric;
  *field = ref.field;
  *label_key = ref.label_key;
  *label_value = ref.label_value;
}

/// Reconstructs the display expression for /alertz.
std::string FormatExpr(const AlertRule& rule) {
  auto ref = [](const std::string& metric, const std::string& field,
                const std::string& key, const std::string& value) {
    std::string out = metric;
    if (!key.empty()) out += "{" + key + "=" + value + "}";
    if (!field.empty()) out += ":" + field;
    return out;
  };
  const std::string lhs =
      ref(rule.metric, rule.field, rule.label_key, rule.label_value);
  std::string expr;
  switch (rule.kind) {
    case AlertExprKind::kValue:
      expr = "value(" + lhs + ")";
      break;
    case AlertExprKind::kRatio:
      expr = "ratio(" + lhs + ", " +
             ref(rule.metric_b, rule.field_b, rule.label_key_b,
                 rule.label_value_b) +
             ")";
      break;
    case AlertExprKind::kRate:
      expr = "rate(" + lhs + ")";
      break;
    case AlertExprKind::kAbsent:
      expr = "absent(" + lhs + ")";
      break;
    case AlertExprKind::kBurnRate:
      expr = util::StrFormat("burn(%s, %.17g, %.17gs, %.17gs)", lhs.c_str(),
                             rule.budget, rule.fast_window_seconds,
                             rule.slow_window_seconds);
      break;
  }
  if (rule.kind != AlertExprKind::kAbsent) {
    expr += util::StrFormat(" %s %.17g",
                            std::string(AlertCmpName(rule.cmp)).c_str(),
                            rule.threshold);
  }
  if (rule.for_seconds > 0.0) {
    expr += util::StrFormat(" for %.17gs", rule.for_seconds);
  }
  return expr;
}

/// Instantaneous reading of one metric reference off the snapshot, summed
/// across matching series (histogram quantile fields take the max across
/// series instead — quantiles are not additive). Returns false when the
/// family (or any matching series) is absent.
bool SnapshotValue(const MetricsSnapshot& snapshot, const std::string& metric,
                   const std::string& field, const std::string& label_key,
                   const std::string& label_value, double* out) {
  const FamilySnapshot* family = snapshot.Find(metric);
  if (family == nullptr) return false;
  double sum = 0.0;
  double max_value = -std::numeric_limits<double>::infinity();
  bool any = false;
  const bool quantile_field =
      field == "p50" || field == "p90" || field == "p99" || field == "mean" ||
      field == "min" || field == "max";
  for (const SeriesSnapshot& series : family->series) {
    if (!label_key.empty()) {
      bool matched = false;
      for (const Label& label : series.labels) {
        if (label.key == label_key && label.value == label_value) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
    }
    double v = 0.0;
    switch (family->kind) {
      case MetricKind::kCounter:
        v = static_cast<double>(series.counter_value);
        break;
      case MetricKind::kGauge:
        v = series.gauge_value;
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = series.histogram;
        if (field == "count" || field.empty()) {
          v = static_cast<double>(h.count);
        } else if (field == "sum") {
          v = h.sum;
        } else if (field == "mean") {
          v = h.mean;
        } else if (field == "min") {
          v = h.min;
        } else if (field == "max") {
          v = h.max;
        } else if (field == "p50") {
          v = h.p50;
        } else if (field == "p90") {
          v = h.p90;
        } else if (field == "p99") {
          v = h.p99;
        } else {
          return false;
        }
        break;
      }
    }
    any = true;
    sum += v;
    max_value = std::max(max_value, v);
  }
  if (!any) return false;
  *out = (family->kind == MetricKind::kHistogram && quantile_field)
             ? max_value
             : sum;
  return true;
}

}  // namespace

std::string_view AlertSeverityName(AlertSeverity severity) {
  return severity == AlertSeverity::kPage ? "page" : "warn";
}

std::string_view AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

std::string_view AlertExprKindName(AlertExprKind kind) {
  switch (kind) {
    case AlertExprKind::kValue:
      return "value";
    case AlertExprKind::kRatio:
      return "ratio";
    case AlertExprKind::kRate:
      return "rate";
    case AlertExprKind::kAbsent:
      return "absent";
    case AlertExprKind::kBurnRate:
      return "burn";
  }
  return "unknown";
}

std::string_view AlertCmpName(AlertCmp cmp) {
  switch (cmp) {
    case AlertCmp::kGt:
      return ">";
    case AlertCmp::kGe:
      return ">=";
    case AlertCmp::kLt:
      return "<";
    case AlertCmp::kLe:
      return "<=";
  }
  return "?";
}

util::StatusOr<AlertRule> ParseAlertRule(std::string_view line) {
  std::string_view text = util::StripWhitespace(line);
  AlertRule rule;

  auto take_token = [&text]() {
    text = util::StripWhitespace(text);
    size_t end = 0;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    const std::string_view token = text.substr(0, end);
    text = text.substr(end);
    return token;
  };

  if (take_token() != "alert") {
    return util::InvalidArgumentError(
        "alert rule: line must start with `alert`");
  }
  const std::string_view name = take_token();
  if (name.empty()) {
    return util::InvalidArgumentError("alert rule: missing rule name");
  }
  rule.name = std::string(name);
  const std::string_view severity = take_token();
  if (severity == "warn") {
    rule.severity = AlertSeverity::kWarn;
  } else if (severity == "page") {
    rule.severity = AlertSeverity::kPage;
  } else {
    return util::InvalidArgumentError(
        "alert rule: severity must be `warn` or `page`");
  }

  // Optional trailing `for <N>s`.
  text = util::StripWhitespace(text);
  {
    const size_t for_pos = text.rfind(" for ");
    if (for_pos != std::string_view::npos) {
      const std::string_view tail =
          util::StripWhitespace(text.substr(for_pos + 5));
      double seconds = 0.0;
      if (ParseSeconds(tail, &seconds)) {
        rule.for_seconds = seconds;
        text = util::StripWhitespace(text.substr(0, for_pos));
      }
    }
  }

  // <func>(<args>) [<cmp> <num>]
  const size_t open = text.find('(');
  if (open == std::string_view::npos) {
    return util::InvalidArgumentError(
        "alert rule: expected <expr>(...) expression");
  }
  const size_t close = text.find(')', open);
  if (close == std::string_view::npos) {
    return util::InvalidArgumentError("alert rule: missing `)`");
  }
  const std::string_view func = util::StripWhitespace(text.substr(0, open));
  const std::string_view args = text.substr(open + 1, close - open - 1);
  std::string_view rest = util::StripWhitespace(text.substr(close + 1));

  if (func == "value") {
    rule.kind = AlertExprKind::kValue;
  } else if (func == "ratio") {
    rule.kind = AlertExprKind::kRatio;
  } else if (func == "rate") {
    rule.kind = AlertExprKind::kRate;
  } else if (func == "absent") {
    rule.kind = AlertExprKind::kAbsent;
  } else if (func == "burn") {
    rule.kind = AlertExprKind::kBurnRate;
  } else {
    return util::InvalidArgumentError(
        "alert rule: unknown expression `" + std::string(func) +
        "` (want value/ratio/rate/absent/burn)");
  }

  const std::vector<std::string> parts = util::Split(std::string(args), ',');
  switch (rule.kind) {
    case AlertExprKind::kValue:
    case AlertExprKind::kRate:
    case AlertExprKind::kAbsent: {
      if (parts.size() != 1) {
        return util::InvalidArgumentError(
            "alert rule: expression takes exactly one metric");
      }
      auto ref = ParseMetricRef(parts[0]);
      if (!ref.ok()) return ref.status();
      AssignRef(*ref, &rule.metric, &rule.field, &rule.label_key,
                &rule.label_value);
      break;
    }
    case AlertExprKind::kRatio: {
      if (parts.size() != 2) {
        return util::InvalidArgumentError(
            "alert rule: ratio(numerator, denominator)");
      }
      auto a = ParseMetricRef(parts[0]);
      if (!a.ok()) return a.status();
      auto b = ParseMetricRef(parts[1]);
      if (!b.ok()) return b.status();
      AssignRef(*a, &rule.metric, &rule.field, &rule.label_key,
                &rule.label_value);
      AssignRef(*b, &rule.metric_b, &rule.field_b, &rule.label_key_b,
                &rule.label_value_b);
      break;
    }
    case AlertExprKind::kBurnRate: {
      if (parts.size() != 4) {
        return util::InvalidArgumentError(
            "alert rule: burn(metric:field, budget, fast_s, slow_s)");
      }
      auto ref = ParseMetricRef(parts[0]);
      if (!ref.ok()) return ref.status();
      AssignRef(*ref, &rule.metric, &rule.field, &rule.label_key,
                &rule.label_value);
      if (!util::ParseDouble(util::StripWhitespace(parts[1]),
                             &rule.budget)) {
        return util::InvalidArgumentError("alert rule: bad burn budget");
      }
      if (!ParseSeconds(parts[2], &rule.fast_window_seconds) ||
          !ParseSeconds(parts[3], &rule.slow_window_seconds) ||
          rule.fast_window_seconds <= 0.0 ||
          rule.slow_window_seconds < rule.fast_window_seconds) {
        return util::InvalidArgumentError(
            "alert rule: burn windows must satisfy 0 < fast <= slow");
      }
      break;
    }
  }

  if (rule.kind == AlertExprKind::kAbsent) {
    if (!rest.empty()) {
      return util::InvalidArgumentError(
          "alert rule: absent() takes no comparison");
    }
    if (rule.for_seconds <= 0.0) {
      return util::InvalidArgumentError(
          "alert rule: absent() needs a `for <N>s` window");
    }
    return rule;
  }

  // <cmp> <num>
  if (util::StartsWith(rest, ">=")) {
    rule.cmp = AlertCmp::kGe;
    rest = rest.substr(2);
  } else if (util::StartsWith(rest, "<=")) {
    rule.cmp = AlertCmp::kLe;
    rest = rest.substr(2);
  } else if (util::StartsWith(rest, ">")) {
    rule.cmp = AlertCmp::kGt;
    rest = rest.substr(1);
  } else if (util::StartsWith(rest, "<")) {
    rule.cmp = AlertCmp::kLt;
    rest = rest.substr(1);
  } else {
    return util::InvalidArgumentError(
        "alert rule: expected comparison (> >= < <=) after expression");
  }
  if (!util::ParseDouble(util::StripWhitespace(rest), &rule.threshold)) {
    return util::InvalidArgumentError("alert rule: bad threshold number");
  }
  return rule;
}

util::StatusOr<std::vector<AlertRule>> ParseAlertRules(
    std::string_view text) {
  std::vector<AlertRule> rules;
  const std::vector<std::string> lines = util::Split(std::string(text), '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = util::StripWhitespace(line);
    if (line.empty()) continue;
    auto rule = ParseAlertRule(line);
    if (!rule.ok()) {
      return util::InvalidArgumentError(util::StrFormat(
          "line %zu: %s", i + 1, rule.status().message().c_str()));
    }
    rules.push_back(*std::move(rule));
  }
  return rules;
}

AlertRule MakeSloP99Rule(double p99_ms) {
  AlertRule rule;
  rule.name = "slo_e2e_p99_burn";
  rule.severity = AlertSeverity::kPage;
  rule.kind = AlertExprKind::kBurnRate;
  rule.metric = "spring_e2e_latency_nanos";
  rule.field = "p99";
  rule.label_key = "stage";
  rule.label_value = "total";
  rule.budget = p99_ms * 1e6;  // ms -> nanos, the histogram's unit.
  rule.fast_window_seconds = 60.0;
  rule.slow_window_seconds = 300.0;
  rule.cmp = AlertCmp::kGt;
  rule.threshold = 0.5;
  rule.for_seconds = 0.0;
  return rule;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules) {
  rules_.reserve(rules.size());
  for (AlertRule& rule : rules) {
    RuleState rs;
    rs.expr = FormatExpr(rule);
    rs.rule = std::move(rule);
    rules_.push_back(std::move(rs));
  }
}

bool AlertEngine::ConditionHolds(const RuleState& rs, uint64_t now_nanos,
                                 const MetricsSnapshot& snapshot,
                                 const MetricsTimeline& timeline,
                                 double* value) const {
  (void)now_nanos;
  const AlertRule& rule = rs.rule;
  *value = std::numeric_limits<double>::quiet_NaN();
  switch (rule.kind) {
    case AlertExprKind::kValue: {
      double v = 0.0;
      if (!SnapshotValue(snapshot, rule.metric, rule.field, rule.label_key,
                         rule.label_value, &v)) {
        return false;
      }
      *value = v;
      return Compare(rule.cmp, v, rule.threshold);
    }
    case AlertExprKind::kRatio: {
      double numerator = 0.0;
      double denominator = 0.0;
      if (!SnapshotValue(snapshot, rule.metric, rule.field, rule.label_key,
                         rule.label_value, &numerator) ||
          !SnapshotValue(snapshot, rule.metric_b, rule.field_b,
                         rule.label_key_b, rule.label_value_b,
                         &denominator) ||
          denominator == 0.0) {
        return false;
      }
      *value = numerator / denominator;
      return Compare(rule.cmp, *value, rule.threshold);
    }
    case AlertExprKind::kRate: {
      const double width = timeline.tiers().front().width_seconds;
      const double window = std::max(rule.for_seconds, width);
      const double delta = timeline.DeltaOver(rule.metric, rule.field, window);
      *value = delta / window;
      return Compare(rule.cmp, *value, rule.threshold);
    }
    case AlertExprKind::kAbsent: {
      const TimelineWindow window =
          timeline.Query(rule.metric, rule.field, rule.for_seconds);
      for (const TimelineSeries& series : window.series) {
        if (!series.points.empty()) return false;
      }
      return true;
    }
    case AlertExprKind::kBurnRate: {
      const double fast = timeline.BadBucketFraction(
          rule.metric, rule.field, rule.fast_window_seconds, rule.budget);
      const double slow = timeline.BadBucketFraction(
          rule.metric, rule.field, rule.slow_window_seconds, rule.budget);
      if (fast < 0.0 || slow < 0.0) return false;
      *value = fast;
      return Compare(rule.cmp, fast, rule.threshold) &&
             Compare(rule.cmp, slow, rule.threshold);
    }
  }
  return false;
}

void AlertEngine::Transition(RuleState* rs, AlertState next,
                             uint64_t now_nanos, TraceRing* trace) {
  const AlertState prev = rs->state;
  if (prev == next) return;
  rs->state = next;
  rs->since_nanos = now_nanos;
  switch (next) {
    case AlertState::kPending:
      ++rs->pending_count;
      break;
    case AlertState::kFiring:
      ++rs->firing_count;
      break;
    case AlertState::kResolved:
      ++rs->resolved_count;
      break;
    case AlertState::kInactive:
      break;
  }
  if (trace != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kAlertTransition;
    event.query_id = static_cast<int64_t>(rs - rules_.data());
    event.start = static_cast<int64_t>(prev);
    event.end = static_cast<int64_t>(next);
    event.distance = rs->last_value;
    trace->Record(event);
  }
}

void AlertEngine::Evaluate(uint64_t now_nanos,
                           const MetricsSnapshot& snapshot,
                           const MetricsTimeline& timeline,
                           TraceRing* trace) {
  bool firing_page = false;
  for (RuleState& rs : rules_) {
    double value = 0.0;
    const bool holds =
        ConditionHolds(rs, now_nanos, snapshot, timeline, &value);
    rs.last_value = value;
    switch (rs.state) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        if (holds) {
          rs.pending_since_nanos = now_nanos;
          if (rs.rule.for_seconds <= 0.0) {
            Transition(&rs, AlertState::kFiring, now_nanos, trace);
          } else {
            Transition(&rs, AlertState::kPending, now_nanos, trace);
          }
        }
        break;
      case AlertState::kPending:
        if (!holds) {
          Transition(&rs, AlertState::kInactive, now_nanos, trace);
        } else if (static_cast<double>(now_nanos - rs.pending_since_nanos) >=
                   rs.rule.for_seconds * kNanosPerSecond) {
          Transition(&rs, AlertState::kFiring, now_nanos, trace);
        }
        break;
      case AlertState::kFiring:
        if (!holds) {
          Transition(&rs, AlertState::kResolved, now_nanos, trace);
        }
        break;
    }
    if (rs.state == AlertState::kFiring &&
        rs.rule.severity == AlertSeverity::kPage) {
      firing_page = true;
    }
  }
  any_firing_page_ = firing_page;
}

std::vector<AlertStatus> AlertEngine::Statuses() const {
  std::vector<AlertStatus> statuses;
  statuses.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    AlertStatus status;
    status.name = rs.rule.name;
    status.severity = rs.rule.severity;
    status.kind = rs.rule.kind;
    status.state = rs.state;
    status.expr = rs.expr;
    status.value = rs.last_value;
    status.threshold = rs.rule.threshold;
    status.for_seconds = rs.rule.for_seconds;
    status.since_nanos = rs.since_nanos;
    status.pending_count = rs.pending_count;
    status.firing_count = rs.firing_count;
    status.resolved_count = rs.resolved_count;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

std::string RenderAlertzJson(const std::vector<AlertStatus>& statuses,
                             uint64_t now_nanos) {
  int64_t firing = 0;
  int64_t firing_page = 0;
  std::string out = "{\"rules\":[";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const AlertStatus& status = statuses[i];
    if (status.state == AlertState::kFiring) {
      ++firing;
      if (status.severity == AlertSeverity::kPage) ++firing_page;
    }
    if (i > 0) out.push_back(',');
    const double since_seconds_ago =
        status.since_nanos == 0
            ? -1.0
            : static_cast<double>(now_nanos - status.since_nanos) /
                  kNanosPerSecond;
    out += util::StrFormat(
        "{\"name\":\"%s\",\"severity\":\"%s\",\"kind\":\"%s\","
        "\"state\":\"%s\",\"expr\":\"%s\",\"value\":%s,\"threshold\":%s,"
        "\"for_seconds\":%s,\"since_seconds_ago\":%s,"
        "\"pending_count\":%lld,\"firing_count\":%lld,"
        "\"resolved_count\":%lld}",
        EscapeJson(status.name).c_str(),
        std::string(AlertSeverityName(status.severity)).c_str(),
        std::string(AlertExprKindName(status.kind)).c_str(),
        std::string(AlertStateName(status.state)).c_str(),
        EscapeJson(status.expr).c_str(), Num(status.value).c_str(),
        Num(status.threshold).c_str(), Num(status.for_seconds).c_str(),
        Num(since_seconds_ago).c_str(),
        static_cast<long long>(status.pending_count),
        static_cast<long long>(status.firing_count),
        static_cast<long long>(status.resolved_count));
  }
  out += util::StrFormat("],\"firing\":%lld,\"firing_page\":%lld}",
                         static_cast<long long>(firing),
                         static_cast<long long>(firing_page));
  return out;
}

}  // namespace obs
}  // namespace springdtw
