#include "obs/exposition.h"

#include <cmath>

#include "util/string_util.h"

namespace springdtw {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  // %.17g round-trips doubles; trim to a plain integer rendering when exact
  // so counters-as-gauges stay readable.
  if (std::isfinite(v) && std::abs(v) < 1e15 &&
      v == static_cast<double>(static_cast<int64_t>(v))) {
    return util::StrFormat("%lld", static_cast<long long>(v));
  }
  return util::StrFormat("%.17g", v);
}

/// JSON has no inf/nan literals; render those as null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return FormatDouble(v);
}

std::string PrometheusLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].key + "=\"" + EscapePrometheusLabel(labels[i].value) +
           "\"";
  }
  out += "}";
  return out;
}

/// Labels with one extra pair appended (for summary quantile lines).
Labels WithLabel(Labels labels, const std::string& key,
                 const std::string& value) {
  labels.push_back(Label{key, value});
  return labels;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + EscapeJson(labels[i].key) + "\":\"" +
           EscapeJson(labels[i].value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string EscapePrometheusLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const FamilySnapshot& family : snapshot.families) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " + family.help + "\n";
    }
    // Histograms are exposed as precomputed-quantile summaries.
    const std::string type =
        family.kind == MetricKind::kHistogram
            ? "summary"
            : std::string(MetricKindName(family.kind));
    out += "# TYPE " + family.name + " " + type + "\n";
    for (const SeriesSnapshot& series : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter:
          out += family.name + PrometheusLabels(series.labels) + " " +
                 util::StrFormat("%lld",
                                 static_cast<long long>(series.counter_value)) +
                 "\n";
          break;
        case MetricKind::kGauge:
          out += family.name + PrometheusLabels(series.labels) + " " +
                 FormatDouble(series.gauge_value) + "\n";
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot& h = series.histogram;
          out += family.name +
                 PrometheusLabels(
                     WithLabel(series.labels, "quantile", "0.5")) +
                 " " + FormatDouble(h.p50) + "\n";
          out += family.name +
                 PrometheusLabels(
                     WithLabel(series.labels, "quantile", "0.9")) +
                 " " + FormatDouble(h.p90) + "\n";
          out += family.name +
                 PrometheusLabels(
                     WithLabel(series.labels, "quantile", "0.99")) +
                 " " + FormatDouble(h.p99) + "\n";
          out += family.name + "_sum" + PrometheusLabels(series.labels) +
                 " " + FormatDouble(h.sum) + "\n";
          out += family.name + "_count" + PrometheusLabels(series.labels) +
                 " " + util::StrFormat("%lld",
                                       static_cast<long long>(h.count)) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const FamilySnapshot& family : snapshot.families) {
    if (!first_family) out += ",";
    first_family = false;
    out += "{\"name\":\"" + EscapeJson(family.name) + "\",\"type\":\"" +
           std::string(MetricKindName(family.kind)) + "\",\"help\":\"" +
           EscapeJson(family.help) + "\",\"series\":[";
    bool first_series = true;
    for (const SeriesSnapshot& series : family.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":" + JsonLabels(series.labels) + ",";
      switch (family.kind) {
        case MetricKind::kCounter:
          out += "\"value\":" +
                 util::StrFormat("%lld",
                                 static_cast<long long>(series.counter_value));
          break;
        case MetricKind::kGauge:
          out += "\"value\":" + JsonNumber(series.gauge_value);
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot& h = series.histogram;
          out += "\"count\":" +
                 util::StrFormat("%lld", static_cast<long long>(h.count)) +
                 ",\"sum\":" + JsonNumber(h.sum) +
                 ",\"min\":" + JsonNumber(h.min) +
                 ",\"max\":" + JsonNumber(h.max) +
                 ",\"mean\":" + JsonNumber(h.mean) +
                 ",\"p50\":" + JsonNumber(h.p50) +
                 ",\"p90\":" + JsonNumber(h.p90) +
                 ",\"p99\":" + JsonNumber(h.p99) +
                 ",\"exact\":" + (h.exact ? "true" : "false");
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string RenderSummaryLine(const MetricsSnapshot& snapshot) {
  std::string out = "[obs]";
  for (const FamilySnapshot& family : snapshot.families) {
    switch (family.kind) {
      case MetricKind::kCounter: {
        int64_t total = 0;
        for (const SeriesSnapshot& s : family.series) {
          total += s.counter_value;
        }
        out += util::StrFormat(" %s=%lld", family.name.c_str(),
                               static_cast<long long>(total));
        break;
      }
      case MetricKind::kGauge: {
        double total = 0.0;
        for (const SeriesSnapshot& s : family.series) total += s.gauge_value;
        out += " " + family.name + "=" + FormatDouble(total);
        break;
      }
      case MetricKind::kHistogram: {
        // Aggregate quantiles across series would need the raw data; report
        // the first series (typically the only one for engine latency).
        if (family.series.empty()) break;
        const HistogramSnapshot& h = family.series[0].histogram;
        out += " " + family.name + "{p50=" + FormatDouble(h.p50) +
               ",p99=" + FormatDouble(h.p99) +
               ",n=" + util::StrFormat("%lld",
                                       static_cast<long long>(h.count)) +
               "}";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace springdtw
