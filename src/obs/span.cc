#include "obs/span.h"

#include <algorithm>
#include <ostream>

#include "util/string_util.h"

namespace springdtw {
namespace obs {

std::string TickSpanJson(const TickSpan& s) {
  return util::StrFormat(
      "{\"seq\":%llu,\"stream\":%lld,\"client_send\":%llu,"
      "\"server_recv\":%llu,\"router_enqueue\":%llu,\"worker_pop\":%llu,"
      "\"worker_done\":%llu,\"delivered\":%llu,\"subscriber_write\":%llu,"
      "\"matches\":%lld}",
      static_cast<unsigned long long>(s.seq),
      static_cast<long long>(s.stream_id),
      static_cast<unsigned long long>(s.client_send_nanos),
      static_cast<unsigned long long>(s.server_recv_nanos),
      static_cast<unsigned long long>(s.router_enqueue_nanos),
      static_cast<unsigned long long>(s.worker_pop_nanos),
      static_cast<unsigned long long>(s.worker_done_nanos),
      static_cast<unsigned long long>(s.delivered_nanos),
      static_cast<unsigned long long>(s.subscriber_write_nanos),
      static_cast<long long>(s.matches));
}

SpanRing::SpanRing(int64_t capacity)
    : capacity_(std::max<int64_t>(capacity, 0)) {
  ring_.resize(static_cast<size_t>(capacity_));
}

int64_t SpanRing::size() const { return std::min(total_, capacity_); }

int64_t SpanRing::dropped() const { return total_ - size(); }

void SpanRing::Record(const TickSpan& span) {
  if (capacity_ == 0) return;
  ring_[static_cast<size_t>(total_ % capacity_)] = span;
  ++total_;
}

void SpanRing::Clear() { total_ = 0; }

std::vector<TickSpan> SpanRing::Spans() const {
  std::vector<TickSpan> spans;
  const int64_t n = size();
  spans.reserve(static_cast<size_t>(n));
  const int64_t first = total_ - n;
  for (int64_t i = 0; i < n; ++i) {
    spans.push_back(ring_[static_cast<size_t>((first + i) % capacity_)]);
  }
  return spans;
}

void SpanRing::DumpJsonl(std::ostream& out) const {
  for (const TickSpan& s : Spans()) {
    out << TickSpanJson(s) << '\n';
  }
}

std::string RenderSpanzJson(const SpanzReport& report) {
  std::string out = util::StrFormat(
      "{\"dropped\":%lld,\"spans\":[",
      static_cast<long long>(report.dropped));
  for (size_t i = 0; i < report.spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(TickSpanJson(report.spans[i]));
  }
  out.append("]}");
  return out;
}

}  // namespace obs
}  // namespace springdtw
