#include "obs/trace.h"

#include <algorithm>
#include <ostream>

#include "util/string_util.h"

namespace springdtw {
namespace obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCandidateOpened:
      return "candidate_opened";
    case TraceEventKind::kBestImproved:
      return "best_improved";
    case TraceEventKind::kMatchReported:
      return "match_reported";
    case TraceEventKind::kCandidateFlushed:
      return "candidate_flushed";
    case TraceEventKind::kCheckpointSave:
      return "checkpoint_save";
    case TraceEventKind::kCheckpointRestore:
      return "checkpoint_restore";
    case TraceEventKind::kAlertTransition:
      return "alert_transition";
  }
  return "unknown";
}

std::string TraceEventJson(const TraceEvent& e) {
  return util::StrFormat(
      "{\"event\":\"%s\",\"space\":\"%s\",\"tick\":%lld,"
      "\"stream\":%lld,\"query\":%lld,\"start\":%lld,\"end\":%lld,"
      "\"distance\":%.17g,\"report_delay\":%lld}",
      std::string(TraceEventKindName(e.kind)).c_str(),
      e.space == TraceSpace::kScalar ? "scalar" : "vector",
      static_cast<long long>(e.tick), static_cast<long long>(e.stream_id),
      static_cast<long long>(e.query_id), static_cast<long long>(e.start),
      static_cast<long long>(e.end), e.distance,
      static_cast<long long>(e.report_delay));
}

TraceRing::TraceRing(int64_t capacity) : capacity_(std::max<int64_t>(capacity, 0)) {
  ring_.resize(static_cast<size_t>(capacity_));
}

int64_t TraceRing::size() const { return std::min(total_, capacity_); }

int64_t TraceRing::dropped() const { return total_ - size(); }

void TraceRing::Record(const TraceEvent& event) {
  if (capacity_ == 0) return;
  ring_[static_cast<size_t>(total_ % capacity_)] = event;
  ++total_;
}

void TraceRing::Clear() { total_ = 0; }

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> events;
  const int64_t n = size();
  events.reserve(static_cast<size_t>(n));
  const int64_t first = total_ - n;
  for (int64_t i = 0; i < n; ++i) {
    events.push_back(ring_[static_cast<size_t>((first + i) % capacity_)]);
  }
  return events;
}

void TraceRing::DumpJsonl(std::ostream& out) const {
  for (const TraceEvent& e : Events()) {
    out << TraceEventJson(e) << '\n';
  }
}

}  // namespace obs
}  // namespace springdtw
