#ifndef SPRINGDTW_OBS_OBSERVABILITY_H_
#define SPRINGDTW_OBS_OBSERVABILITY_H_

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "obs/metrics.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"

namespace springdtw {
namespace obs {

struct ObservabilityOptions {
  /// Match-lifecycle trace ring capacity in events; 0 disables tracing
  /// (metrics still collected).
  int64_t trace_capacity = 0;
  /// Render a summary line to `report_out` every N ingested ticks; 0
  /// disables the periodic reporter.
  int64_t report_every_ticks = 0;
  /// Destination for periodic summary lines; must outlive the bundle.
  /// Required when report_every_ticks > 0.
  std::ostream* report_out = nullptr;
};

/// The observability bundle a MonitorEngine attaches to: a metrics
/// registry, an optional bounded trace ring, and an optional periodic
/// reporter. One bundle per engine (the registry hands out raw instrument
/// pointers, so it must outlive the engine it is attached to).
///
/// Everything is off by default on the engine side: an engine without an
/// attached bundle pays a single null-pointer branch per Push and performs
/// no clock reads and no allocations for observability.
class Observability {
 public:
  explicit Observability(const ObservabilityOptions& options = {})
      : trace_(options.trace_capacity),
        reporter_(options.report_every_ticks > 0
                      ? std::make_unique<StatsReporterSink>(
                            options.report_out, options.report_every_ticks)
                      : nullptr) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  /// Null when the periodic reporter is disabled.
  StatsReporterSink* reporter() { return reporter_.get(); }

 private:
  MetricsRegistry registry_;
  TraceRing trace_;
  std::unique_ptr<StatsReporterSink> reporter_;
};

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_OBSERVABILITY_H_
