#include "obs/stats_reporter.h"

#include <ostream>

#include "obs/exposition.h"
#include "util/logging.h"

namespace springdtw {
namespace obs {

StatsReporterSink::StatsReporterSink(std::ostream* out, int64_t every_n_ticks)
    : out_(out), every_n_ticks_(every_n_ticks) {
  SPRINGDTW_CHECK(out != nullptr);
  SPRINGDTW_CHECK_GE(every_n_ticks, 1);
}

void StatsReporterSink::Report(const MetricsSnapshot& snapshot) {
  *out_ << RenderSummaryLine(snapshot) << "\n";
  ++lines_reported_;
}

}  // namespace obs
}  // namespace springdtw
