#ifndef SPRINGDTW_OBS_STATS_REPORTER_H_
#define SPRINGDTW_OBS_STATS_REPORTER_H_

#include <cstdint>
#include <iosfwd>

#include "obs/metrics.h"

namespace springdtw {
namespace obs {

/// Periodic one-line metrics summary: the engine advances it once per
/// ingested tick (Push/PushRow), and every N ticks it renders
/// RenderSummaryLine() of the current registry state to an ostream. A
/// "sink" in the same spirit as monitor::MatchSink — it terminates the
/// metrics flow — but driven by ticks, not matches, so it lives in obs and
/// does not depend on the monitor layer.
class StatsReporterSink {
 public:
  /// `out` must outlive the sink; `every_n_ticks` >= 1.
  StatsReporterSink(std::ostream* out, int64_t every_n_ticks);

  /// Advances the tick counter; returns true when a summary line is due.
  /// Cheap (one increment + compare) so the engine can call it per tick.
  bool Tick() {
    if (++ticks_since_report_ < every_n_ticks_) return false;
    ticks_since_report_ = 0;
    return true;
  }

  /// Renders one summary line of `snapshot` to the output stream.
  void Report(const MetricsSnapshot& snapshot);

  int64_t every_n_ticks() const { return every_n_ticks_; }
  int64_t lines_reported() const { return lines_reported_; }

 private:
  std::ostream* out_;
  int64_t every_n_ticks_;
  int64_t ticks_since_report_ = 0;
  int64_t lines_reported_ = 0;
};

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_STATS_REPORTER_H_
