#ifndef SPRINGDTW_OBS_ALERT_H_
#define SPRINGDTW_OBS_ALERT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/status.h"

namespace springdtw {
namespace obs {

enum class AlertSeverity : uint8_t { kWarn, kPage };
std::string_view AlertSeverityName(AlertSeverity severity);

/// Rule lifecycle (docs/OBSERVABILITY.md): inactive -> pending (condition
/// true, hold running) -> firing (held for the rule's `for` duration) ->
/// resolved (condition cleared while firing; sticky display state that
/// re-arms like inactive). A pending rule whose condition clears before
/// the hold expires returns to inactive without ever firing.
enum class AlertState : uint8_t { kInactive, kPending, kFiring, kResolved };
std::string_view AlertStateName(AlertState state);

enum class AlertExprKind : uint8_t {
  /// value(metric[:field]) CMP threshold — instantaneous, straight off the
  /// published snapshot (summed across labeled series).
  kValue,
  /// ratio(metric_a, metric_b) CMP threshold — instantaneous quotient,
  /// e.g. spring_ring_occupancy / spring_ring_capacity.
  kRatio,
  /// rate(counter[:field]) CMP threshold — per-second increase over the
  /// rule's window (max(for, finest tier width)), from the timeline.
  kRate,
  /// absent(metric[:field]) — no sample recorded within the `for` window;
  /// the staleness rule for dead feeds and silent exporters.
  kAbsent,
  /// burn(metric:field, budget, fast, slow) CMP threshold — two-window SLO
  /// burn rate: fraction of timeline buckets whose value exceeds `budget`
  /// must satisfy CMP in BOTH windows to trip (fast window catches the
  /// spike, slow window filters noise).
  kBurnRate,
};
std::string_view AlertExprKindName(AlertExprKind kind);

enum class AlertCmp : uint8_t { kGt, kGe, kLt, kLe };
std::string_view AlertCmpName(AlertCmp cmp);

/// One parsed alert rule. Text form (one rule per line, '#' comments):
///
///   alert <name> <severity> <expr> [for <N>s]
///
/// with <severity> in {warn, page} and <expr> one of
///
///   value(metric[:field]) <cmp> <num>
///   ratio(metric_a, metric_b) <cmp> <num>
///   rate(metric[:field]) <cmp> <num>
///   absent(metric[:field])
///   burn(metric:field, <budget>, <fast>s, <slow>s) <cmp> <num>
///
/// where <cmp> is one of > >= < <=. Metric references accept an optional
/// single-label filter: metric{key=value}.
struct AlertRule {
  std::string name;
  AlertSeverity severity = AlertSeverity::kWarn;
  AlertExprKind kind = AlertExprKind::kValue;
  AlertCmp cmp = AlertCmp::kGt;
  double threshold = 0.0;
  /// Seconds the condition must hold before pending becomes firing.
  double for_seconds = 0.0;

  std::string metric;
  std::string field;
  /// Optional {key=value} series filter on `metric`.
  std::string label_key;
  std::string label_value;
  /// kRatio denominator.
  std::string metric_b;
  std::string field_b;
  std::string label_key_b;
  std::string label_value_b;
  /// kBurnRate parameters.
  double budget = 0.0;
  double fast_window_seconds = 60.0;
  double slow_window_seconds = 300.0;
};

/// Parses one rule line. Returns kInvalidArgument with a pointed message
/// on malformed input; blank/comment lines are the caller's concern.
util::StatusOr<AlertRule> ParseAlertRule(std::string_view line);

/// Parses a whole rules file (blank lines and '#' comments skipped).
/// Fails on the first malformed rule, naming its line number.
util::StatusOr<std::vector<AlertRule>> ParseAlertRules(std::string_view text);

/// Synthesizes the conventional SLO page rule for a p99 end-to-end latency
/// budget of `p99_ms` milliseconds: a two-window burn-rate rule over
/// spring_e2e_latency_nanos{stage=total}:p99 that pages when more than
/// half the timeline buckets blow the budget in both the fast (60s) and
/// slow (300s) windows.
AlertRule MakeSloP99Rule(double p99_ms);

/// Point-in-time status of one rule, for /alertz.
struct AlertStatus {
  std::string name;
  AlertSeverity severity = AlertSeverity::kWarn;
  AlertExprKind kind = AlertExprKind::kValue;
  AlertState state = AlertState::kInactive;
  /// Expression text reconstructed from the parse, for display.
  std::string expr;
  /// Last evaluated observation (rate, value, ratio, or burn fraction;
  /// NaN before the first evaluation or when inputs are absent).
  double value = 0.0;
  double threshold = 0.0;
  double for_seconds = 0.0;
  /// Monotonic stamp of the last state transition; 0 = never moved.
  uint64_t since_nanos = 0;
  /// Times the rule entered each state, ever — lets a poller prove a
  /// pending -> firing -> resolved walk happened without catching each
  /// phase in the act.
  int64_t pending_count = 0;
  int64_t firing_count = 0;
  int64_t resolved_count = 0;
};

/// Evaluates parsed rules against each published snapshot + the timeline,
/// runs the per-rule state machine, and records every transition as a
/// kAlertTransition trace event. Not thread-safe: single evaluator,
/// readers serialize externally (the ShardedMonitor's timeline mutex).
class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules);

  int64_t num_rules() const { return static_cast<int64_t>(rules_.size()); }

  /// One evaluation pass. `timeline` must already have Record()ed
  /// `snapshot` for rate/absent/burn rules to see it. Transitions are
  /// appended to `trace` when non-null.
  void Evaluate(uint64_t now_nanos, const MetricsSnapshot& snapshot,
                const MetricsTimeline& timeline, TraceRing* trace);

  /// True while any page-severity rule is firing — the /healthz 503 hook.
  bool AnyFiringPage() const { return any_firing_page_; }

  std::vector<AlertStatus> Statuses() const;

 private:
  struct RuleState {
    AlertRule rule;
    std::string expr;
    AlertState state = AlertState::kInactive;
    double last_value = 0.0;
    uint64_t since_nanos = 0;
    /// Stamp when the condition first went true for the current pending
    /// stretch.
    uint64_t pending_since_nanos = 0;
    int64_t pending_count = 0;
    int64_t firing_count = 0;
    int64_t resolved_count = 0;
  };

  /// Evaluates the rule's condition; false when inputs are missing
  /// (except kAbsent, where missing *is* the condition). Writes the
  /// observation to `value` (NaN when unavailable).
  bool ConditionHolds(const RuleState& rs, uint64_t now_nanos,
                      const MetricsSnapshot& snapshot,
                      const MetricsTimeline& timeline, double* value) const;

  void Transition(RuleState* rs, AlertState next, uint64_t now_nanos,
                  TraceRing* trace);

  std::vector<RuleState> rules_;
  bool any_firing_page_ = false;
};

/// Renders the /alertz document: every rule's status, state counters, and
/// last transition stamp. Shape is validated by springdtw_metrics_check
/// --alertz.
std::string RenderAlertzJson(const std::vector<AlertStatus>& statuses,
                             uint64_t now_nanos);

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_ALERT_H_
