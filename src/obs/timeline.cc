#include "obs/timeline.h"

#include <algorithm>
#include <cmath>

#include "obs/exposition.h"
#include "util/string_util.h"

namespace springdtw {
namespace obs {
namespace {

constexpr double kNanosPerSecond = 1e9;

/// Default wheel: two minutes at 1s, fifteen at 10s, two hours at 1m.
std::vector<TimelineTier> DefaultTiers() {
  return {{1.0, 120}, {10.0, 90}, {60.0, 120}};
}

/// Renders a double as JSON, "null" for non-finite (matching the
/// exposition layer's convention so output always parses).
std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  return util::StrFormat("%.17g", v);
}

int64_t EpochOf(uint64_t now_nanos, double width_seconds) {
  return static_cast<int64_t>(static_cast<double>(now_nanos) /
                              (width_seconds * kNanosPerSecond));
}

}  // namespace

std::string_view ChannelAggName(ChannelAgg agg) {
  switch (agg) {
    case ChannelAgg::kDelta:
      return "delta";
    case ChannelAgg::kGauge:
      return "gauge";
  }
  return "unknown";
}

MetricsTimeline::MetricsTimeline(TimelineOptions options)
    : max_channels_(std::max<int64_t>(options.max_channels, 0)) {
  std::vector<TimelineTier> requested =
      options.tiers.empty() ? DefaultTiers() : std::move(options.tiers);
  for (const TimelineTier& tier : requested) {
    if (tier.width_seconds <= 0.0 || tier.slots <= 0) continue;
    if (!tiers_.empty()) {
      // Coarser tiers must nest on the finest tier's boundaries so the
      // downsampling fold is exact; drop tiers that do not.
      const double ratio = tier.width_seconds / tiers_.front().width_seconds;
      if (ratio < 1.0 || std::abs(ratio - std::round(ratio)) > 1e-9) continue;
    }
    tiers_.push_back(tier);
  }
  if (tiers_.empty()) tiers_ = DefaultTiers();
}

int64_t MetricsTimeline::FindOrCreateFamily(std::string_view name,
                                            MetricKind kind) {
  for (size_t i = 0; i < families_.size(); ++i) {
    if (families_[i].name == name) return static_cast<int64_t>(i);
  }
  families_.push_back({std::string(name), kind});
  return static_cast<int64_t>(families_.size()) - 1;
}

MetricsTimeline::Channel* MetricsTimeline::FindOrCreateChannel(
    int64_t family, std::string_view field, const Labels& labels,
    ChannelAgg agg) {
  key_scratch_.clear();
  key_scratch_ += std::to_string(family);
  key_scratch_ += '\x1f';
  key_scratch_ += field;
  for (const Label& label : labels) {
    key_scratch_ += '\x1f';
    key_scratch_ += label.key;
    key_scratch_ += '\x1e';
    key_scratch_ += label.value;
  }
  const auto it = channel_index_.find(key_scratch_);
  if (it != channel_index_.end()) return &channels_[it->second];
  if (static_cast<int64_t>(channels_.size()) >= max_channels_) {
    ++dropped_channels_;
    return nullptr;
  }
  Channel channel;
  channel.family = family;
  channel.field = std::string(field);
  channel.labels = labels;
  channel.agg = agg;
  channel.rings.resize(tiers_.size());
  for (size_t i = 0; i < tiers_.size(); ++i) {
    channel.rings[i].resize(static_cast<size_t>(tiers_[i].slots));
  }
  channels_.push_back(std::move(channel));
  channel_index_.emplace(key_scratch_, channels_.size() - 1);
  return &channels_.back();
}

void MetricsTimeline::RecordSample(uint64_t now_nanos, Channel* channel,
                                   double sample) {
  double contribution = sample;
  if (channel->agg == ChannelAgg::kDelta) {
    if (channel->has_prev) {
      contribution = sample - channel->prev;
      // A cumulative value moving backwards means the source registry was
      // reset (restore, shard replacement); count the post-reset total as
      // the increase, like Prometheus increase().
      if (contribution < 0.0) contribution = sample;
    } else {
      // First sighting: the increase since "before" is unknowable.
      contribution = 0.0;
    }
    channel->prev = sample;
    channel->has_prev = true;
  }
  for (size_t i = 0; i < tiers_.size(); ++i) {
    const TimelineTier& tier = tiers_[i];
    const int64_t epoch = EpochOf(now_nanos, tier.width_seconds);
    Bucket& bucket =
        channel->rings[i][static_cast<size_t>(epoch % tier.slots)];
    if (bucket.epoch != epoch) {
      bucket.epoch = epoch;
      bucket.value = 0.0;
      bucket.min = contribution;
      bucket.max = contribution;
      bucket.samples = 0;
    }
    if (channel->agg == ChannelAgg::kDelta) {
      bucket.value += contribution;
    } else {
      bucket.value = contribution;
    }
    bucket.min = std::min(bucket.min, contribution);
    bucket.max = std::max(bucket.max, contribution);
    ++bucket.samples;
  }
}

void MetricsTimeline::Record(uint64_t now_nanos,
                             const MetricsSnapshot& snapshot) {
  ++records_;
  last_record_nanos_ = now_nanos;
  for (const FamilySnapshot& family : snapshot.families) {
    const int64_t family_id = FindOrCreateFamily(family.name, family.kind);
    for (const SeriesSnapshot& series : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter: {
          Channel* c = FindOrCreateChannel(family_id, "", series.labels,
                                           ChannelAgg::kDelta);
          if (c != nullptr) {
            RecordSample(now_nanos, c,
                         static_cast<double>(series.counter_value));
          }
          break;
        }
        case MetricKind::kGauge: {
          Channel* c = FindOrCreateChannel(family_id, "", series.labels,
                                           ChannelAgg::kGauge);
          if (c != nullptr) RecordSample(now_nanos, c, series.gauge_value);
          break;
        }
        case MetricKind::kHistogram: {
          const HistogramSnapshot& h = series.histogram;
          struct Field {
            const char* name;
            double value;
            ChannelAgg agg;
          };
          const Field fields[] = {
              {"count", static_cast<double>(h.count), ChannelAgg::kDelta},
              {"sum", h.sum, ChannelAgg::kDelta},
              {"p50", h.p50, ChannelAgg::kGauge},
              {"p90", h.p90, ChannelAgg::kGauge},
              {"p99", h.p99, ChannelAgg::kGauge},
          };
          for (const Field& field : fields) {
            Channel* c = FindOrCreateChannel(family_id, field.name,
                                             series.labels, field.agg);
            if (c != nullptr) RecordSample(now_nanos, c, field.value);
          }
          break;
        }
      }
    }
  }
}

std::vector<const MetricsTimeline::Channel*> MetricsTimeline::MatchChannels(
    std::string_view metric, std::string_view field) const {
  std::vector<const Channel*> matched;
  if (metric.empty()) return matched;
  for (const Channel& channel : channels_) {
    if (families_[static_cast<size_t>(channel.family)].name != metric) {
      continue;
    }
    if (channel.field != field) continue;
    matched.push_back(&channel);
  }
  return matched;
}

TimelineWindow MetricsTimeline::Query(std::string_view metric,
                                      std::string_view field,
                                      double window_seconds) const {
  TimelineWindow window;
  window.window_seconds = window_seconds > 0.0
                              ? window_seconds
                              : tiers_.front().width_seconds *
                                    static_cast<double>(tiers_.front().slots);
  size_t tier_index = tiers_.size() - 1;
  for (size_t i = 0; i < tiers_.size(); ++i) {
    const double span =
        tiers_[i].width_seconds * static_cast<double>(tiers_[i].slots);
    if (span >= window.window_seconds) {
      tier_index = i;
      break;
    }
  }
  const TimelineTier& tier = tiers_[tier_index];
  window.tier = tier;
  const int64_t epoch_hi = EpochOf(last_record_nanos_, tier.width_seconds);
  const int64_t buckets_wanted = std::min<int64_t>(
      tier.slots,
      static_cast<int64_t>(std::ceil(window.window_seconds /
                                     tier.width_seconds)));
  const int64_t epoch_lo = epoch_hi - buckets_wanted + 1;
  for (const Channel* channel : MatchChannels(metric, field)) {
    TimelineSeries series;
    series.metric = std::string(metric);
    series.field = channel->field;
    series.labels = channel->labels;
    series.agg = channel->agg;
    const std::vector<Bucket>& ring = channel->rings[tier_index];
    for (int64_t epoch = std::max<int64_t>(epoch_lo, 0); epoch <= epoch_hi;
         ++epoch) {
      const Bucket& bucket =
          ring[static_cast<size_t>(epoch % tier.slots)];
      if (bucket.epoch != epoch) continue;
      TimelinePoint point;
      point.start_seconds =
          static_cast<double>(epoch) * tier.width_seconds;
      point.value = bucket.value;
      point.min = bucket.min;
      point.max = bucket.max;
      point.rate = channel->agg == ChannelAgg::kDelta
                       ? bucket.value / tier.width_seconds
                       : 0.0;
      point.samples = bucket.samples;
      series.points.push_back(point);
    }
    window.series.push_back(std::move(series));
  }
  return window;
}

double MetricsTimeline::DeltaOver(std::string_view metric,
                                  std::string_view field,
                                  double window_seconds) const {
  const TimelineTier& tier = tiers_.front();
  const int64_t epoch_hi = EpochOf(last_record_nanos_, tier.width_seconds);
  const int64_t buckets = std::min<int64_t>(
      tier.slots,
      std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::ceil(window_seconds / tier.width_seconds))));
  const int64_t epoch_lo = std::max<int64_t>(epoch_hi - buckets + 1, 0);
  double total = 0.0;
  for (const Channel* channel : MatchChannels(metric, field)) {
    if (channel->agg != ChannelAgg::kDelta) continue;
    const std::vector<Bucket>& ring = channel->rings.front();
    for (int64_t epoch = epoch_lo; epoch <= epoch_hi; ++epoch) {
      const Bucket& bucket =
          ring[static_cast<size_t>(epoch % tier.slots)];
      if (bucket.epoch == epoch) total += bucket.value;
    }
  }
  return total;
}

bool MetricsTimeline::LatestGauge(std::string_view metric,
                                  std::string_view field,
                                  double* out) const {
  double total = 0.0;
  bool any = false;
  for (const Channel* channel : MatchChannels(metric, field)) {
    if (channel->agg != ChannelAgg::kGauge) continue;
    const std::vector<Bucket>& ring = channel->rings.front();
    const Bucket* newest = nullptr;
    for (const Bucket& bucket : ring) {
      if (bucket.epoch < 0) continue;
      if (newest == nullptr || bucket.epoch > newest->epoch) {
        newest = &bucket;
      }
    }
    if (newest != nullptr) {
      total += newest->value;
      any = true;
    }
  }
  if (any) *out = total;
  return any;
}

double MetricsTimeline::BadBucketFraction(std::string_view metric,
                                          std::string_view field,
                                          double window_seconds,
                                          double threshold) const {
  const TimelineTier& tier = tiers_.front();
  const int64_t epoch_hi = EpochOf(last_record_nanos_, tier.width_seconds);
  const int64_t buckets = std::min<int64_t>(
      tier.slots,
      std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::ceil(window_seconds / tier.width_seconds))));
  const int64_t epoch_lo = std::max<int64_t>(epoch_hi - buckets + 1, 0);
  const std::vector<const Channel*> matched = MatchChannels(metric, field);
  int64_t filled = 0;
  int64_t bad = 0;
  for (int64_t epoch = epoch_lo; epoch <= epoch_hi; ++epoch) {
    bool epoch_filled = false;
    bool epoch_bad = false;
    for (const Channel* channel : matched) {
      const Bucket& bucket =
          channel->rings.front()[static_cast<size_t>(epoch % tier.slots)];
      if (bucket.epoch != epoch) continue;
      epoch_filled = true;
      if (bucket.value > threshold) epoch_bad = true;
    }
    if (epoch_filled) {
      ++filled;
      if (epoch_bad) ++bad;
    }
  }
  if (filled == 0) return -1.0;
  return static_cast<double>(bad) / static_cast<double>(filled);
}

std::vector<MetricsTimeline::CatalogEntry> MetricsTimeline::Catalog() const {
  std::vector<CatalogEntry> catalog;
  for (const Channel& channel : channels_) {
    const std::string& name =
        families_[static_cast<size_t>(channel.family)].name;
    CatalogEntry* entry = nullptr;
    for (CatalogEntry& existing : catalog) {
      if (existing.metric == name && existing.field == channel.field) {
        entry = &existing;
        break;
      }
    }
    if (entry == nullptr) {
      catalog.push_back({name, channel.field, channel.agg, 0});
      entry = &catalog.back();
    }
    ++entry->series;
  }
  std::sort(catalog.begin(), catalog.end(),
            [](const CatalogEntry& a, const CatalogEntry& b) {
              return a.metric != b.metric ? a.metric < b.metric
                                          : a.field < b.field;
            });
  return catalog;
}

std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(std::string(pair), std::string());
      } else {
        params.emplace_back(std::string(pair.substr(0, eq)),
                            std::string(pair.substr(eq + 1)));
      }
    }
    pos = amp + 1;
  }
  return params;
}

namespace {

void AppendLabelsJson(const Labels& labels, std::string* out) {
  out->push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append(util::StrFormat("\"%s\":\"%s\"",
                                EscapeJson(labels[i].key).c_str(),
                                EscapeJson(labels[i].value).c_str()));
  }
  out->push_back('}');
}

}  // namespace

std::string RenderTimezJson(const MetricsTimeline& timeline,
                            std::string_view query) {
  std::string metric;
  std::string field;
  double window_seconds = 60.0;
  for (const auto& [key, value] : ParseQueryParams(query)) {
    if (key == "metric") {
      metric = value;
    } else if (key == "field") {
      field = value;
    } else if (key == "window") {
      double parsed = 0.0;
      if (util::ParseDouble(value, &parsed) && parsed > 0.0) {
        window_seconds = parsed;
      }
    }
  }

  std::string out;
  if (metric.empty()) {
    // Catalog document: what is recorded, at which resolutions.
    out += "{\"tiers\":[";
    for (size_t i = 0; i < timeline.tiers().size(); ++i) {
      const TimelineTier& tier = timeline.tiers()[i];
      if (i > 0) out.push_back(',');
      out += util::StrFormat(
          "{\"width_seconds\":%s,\"slots\":%lld}",
          Num(tier.width_seconds).c_str(),
          static_cast<long long>(tier.slots));
    }
    out += util::StrFormat("],\"records\":%lld,\"dropped_channels\":%lld,",
                           static_cast<long long>(timeline.records()),
                           static_cast<long long>(
                               timeline.dropped_channels()));
    out += "\"channels\":[";
    const auto catalog = timeline.Catalog();
    for (size_t i = 0; i < catalog.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += util::StrFormat(
          "{\"metric\":\"%s\",\"field\":\"%s\",\"agg\":\"%s\","
          "\"series\":%lld}",
          EscapeJson(catalog[i].metric).c_str(),
          EscapeJson(catalog[i].field).c_str(),
          std::string(ChannelAggName(catalog[i].agg)).c_str(),
          static_cast<long long>(catalog[i].series));
    }
    out += "]}";
    return out;
  }

  const TimelineWindow window =
      timeline.Query(metric, field, window_seconds);
  out += util::StrFormat(
      "{\"metric\":\"%s\",\"field\":\"%s\",\"window_seconds\":%s,"
      "\"tier\":{\"width_seconds\":%s,\"slots\":%lld},\"series\":[",
      EscapeJson(metric).c_str(), EscapeJson(field).c_str(),
      Num(window.window_seconds).c_str(),
      Num(window.tier.width_seconds).c_str(),
      static_cast<long long>(window.tier.slots));
  for (size_t i = 0; i < window.series.size(); ++i) {
    const TimelineSeries& series = window.series[i];
    if (i > 0) out.push_back(',');
    out += "{\"labels\":";
    AppendLabelsJson(series.labels, &out);
    out += util::StrFormat(",\"agg\":\"%s\",\"points\":[",
                           std::string(ChannelAggName(series.agg)).c_str());
    for (size_t p = 0; p < series.points.size(); ++p) {
      const TimelinePoint& point = series.points[p];
      if (p > 0) out.push_back(',');
      out += util::StrFormat(
          "{\"t\":%s,\"value\":%s,\"min\":%s,\"max\":%s,\"rate\":%s,"
          "\"samples\":%lld}",
          Num(point.start_seconds).c_str(), Num(point.value).c_str(),
          Num(point.min).c_str(), Num(point.max).c_str(),
          Num(point.rate).c_str(), static_cast<long long>(point.samples));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace springdtw
