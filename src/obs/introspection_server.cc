#include "obs/introspection_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "obs/exposition.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace springdtw {
namespace obs {

namespace {

/// JSON number or null when non-finite, mirroring RenderJson's convention.
std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  return util::StrFormat("%.17g", value);
}

const char* JsonBool(bool value) { return value ? "true" : "false"; }

void AppendWorkerHealth(std::string* out, const WorkerHealth& worker) {
  out->append(util::StrFormat(
      "{\"worker\":%lld,\"state\":\"%s\",\"healthy\":%s,"
      "\"lag_messages\":%llu,\"ms_since_progress\":%s}",
      static_cast<long long>(worker.worker),
      EscapeJson(worker.state).c_str(), JsonBool(worker.healthy),
      static_cast<unsigned long long>(worker.lag_messages),
      JsonDouble(worker.ms_since_progress).c_str()));
}

void AppendWorkerStatus(std::string* out, const WorkerStatus& worker) {
  out->append(util::StrFormat(
      "{\"worker\":%lld,\"state\":\"%s\",\"messages_produced\":%llu,"
      "\"messages_consumed\":%llu,\"ticks\":%lld,\"streams\":%lld,"
      "\"queries\":%lld,\"pending_candidates\":%lld,"
      "\"ring_occupancy\":%llu,\"ring_capacity\":%llu,"
      "\"ring_blocked_pushes\":%llu,\"ring_producer_parks\":%llu,"
      "\"ring_consumer_parks\":%llu}",
      static_cast<long long>(worker.worker),
      EscapeJson(worker.state).c_str(),
      static_cast<unsigned long long>(worker.messages_produced),
      static_cast<unsigned long long>(worker.messages_consumed),
      static_cast<long long>(worker.ticks),
      static_cast<long long>(worker.streams),
      static_cast<long long>(worker.queries),
      static_cast<long long>(worker.pending_candidates),
      static_cast<unsigned long long>(worker.ring_occupancy),
      static_cast<unsigned long long>(worker.ring_capacity),
      static_cast<unsigned long long>(worker.ring_blocked_pushes),
      static_cast<unsigned long long>(worker.ring_producer_parks),
      static_cast<unsigned long long>(worker.ring_consumer_parks)));
}

}  // namespace

std::string RenderHealthJson(const HealthReport& report) {
  std::string out = util::StrFormat(
      "{\"healthy\":%s,\"state\":\"%s\",\"staleness_budget_ms\":%s,"
      "\"workers\":[",
      JsonBool(report.healthy), EscapeJson(report.state).c_str(),
      JsonDouble(report.staleness_budget_ms).c_str());
  for (size_t i = 0; i < report.workers.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendWorkerHealth(&out, report.workers[i]);
  }
  out.append("]}");
  return out;
}

std::string RenderStatusJson(const StatusReport& report) {
  std::string out = util::StrFormat(
      "{\"role\":\"%s\",\"started\":%s,\"uptime_seconds\":%s,"
      "\"num_workers\":%lld,\"num_streams\":%lld,\"num_queries\":%lld,"
      "\"ticks_ingested\":%lld,\"matches_delivered\":%lld,"
      "\"checkpoint_age_seconds\":%s,\"workers\":[",
      EscapeJson(report.role).c_str(), JsonBool(report.started),
      JsonDouble(report.uptime_seconds).c_str(),
      static_cast<long long>(report.num_workers),
      static_cast<long long>(report.num_streams),
      static_cast<long long>(report.num_queries),
      static_cast<long long>(report.ticks_ingested),
      static_cast<long long>(report.matches_delivered),
      JsonDouble(report.checkpoint_age_seconds).c_str());
  for (size_t i = 0; i < report.workers.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendWorkerStatus(&out, report.workers[i]);
  }
  out.append("]}");
  return out;
}

std::string RenderTracezJson(const TracezReport& report) {
  std::string out = util::StrFormat(
      "{\"dropped\":%lld,\"events\":[",
      static_cast<long long>(report.dropped));
  for (size_t i = 0; i < report.events.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(TraceEventJson(report.events[i]));
  }
  out.append("]}");
  return out;
}

IntrospectionServer::IntrospectionServer(
    const IntrospectionServerOptions& options, IntrospectionHandlers handlers)
    : options_(options), handlers_(std::move(handlers)) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

util::Status IntrospectionServer::Start() {
  // order: relaxed ×2 — Start/Stop are caller-serialized by contract; the
  // flags only guard against misuse, not cross-thread data.
  if (running_.load(std::memory_order_relaxed)) {
    return util::FailedPreconditionError("server already running");
  }
  if (stop_.load(std::memory_order_relaxed)) {
    return util::FailedPreconditionError("server cannot restart after Stop");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::InternalError(
        util::StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  addr.sin_addr.s_addr =
      options_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message =
        util::StrFormat("bind(port %d): %s", options_.port,
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::InternalError(message);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string message =
        util::StrFormat("listen(): %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::InternalError(message);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = options_.port;
  }
  // order: relaxed — the std::thread constructor below is the
  // happens-before edge to the serving thread; the flag is advisory.
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&IntrospectionServer::ServeLoop, this);
  return util::Status::Ok();
}

void IntrospectionServer::Stop() {
  // order: relaxed — stop_ carries no payload; the serving thread only
  // needs to eventually observe it (bounded by the 50ms poll slice), and
  // the join below is the synchronization edge for everything else.
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // order: relaxed — advisory flag; see Start().
  running_.store(false, std::memory_order_relaxed);
}

void IntrospectionServer::ServeLoop() {
  // Poll with a short timeout instead of a blocking accept so Stop() only
  // ever waits one poll slice for the thread to notice the flag.
  // order: relaxed — see Stop(); the flag carries no payload.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    HandleConnection(client_fd);
    ::close(client_fd);
  }
}

void IntrospectionServer::HandleConnection(int client_fd) {
  // Bound both directions so a stalled client cannot wedge the serve loop
  // for more than a few seconds.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  constexpr size_t kMaxRequestBytes = 8192;
  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // malformed; just drop

  Response response;
  const std::string request_line = request.substr(0, line_end);
  if (request_line.compare(0, 4, "GET ") != 0) {
    response.code = 405;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "method not allowed\n";
  } else {
    std::string path = request_line.substr(4);
    const size_t path_end = path.find(' ');
    if (path_end != std::string::npos) path.resize(path_end);
    std::string query;
    const size_t query_start = path.find('?');
    if (query_start != std::string::npos) {
      query = path.substr(query_start + 1);
      path.resize(query_start);
    }
    response = Dispatch(path, query);
  }

  const char* reason = "OK";
  switch (response.code) {
    case 200:
      reason = "OK";
      break;
    case 404:
      reason = "Not Found";
      break;
    case 405:
      reason = "Method Not Allowed";
      break;
    case 503:
      reason = "Service Unavailable";
      break;
    default:
      reason = "Internal Server Error";
      break;
  }
  std::string reply = util::StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %llu\r\n"
      "Connection: close\r\n\r\n",
      response.code, reason, response.content_type.c_str(),
      static_cast<unsigned long long>(response.body.size()));
  reply.append(response.body);

  size_t sent = 0;
  while (sent < reply.size()) {
    const ssize_t n = ::send(client_fd, reply.data() + sent,
                             reply.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  // order: relaxed — diagnostic counter; never synchronization.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

IntrospectionServer::Response IntrospectionServer::Dispatch(
    const std::string& path, const std::string& query) const {
  Response response;
  if (path == "/metrics" && handlers_.metrics) {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(handlers_.metrics());
    return response;
  }
  if (path == "/metrics.json" && handlers_.metrics) {
    response.content_type = "application/json";
    response.body = RenderJson(handlers_.metrics());
    response.body.push_back('\n');
    return response;
  }
  if (path == "/healthz" && handlers_.health) {
    const HealthReport health = handlers_.health();
    response.code = health.healthy ? 200 : 503;
    response.content_type = "application/json";
    response.body = RenderHealthJson(health);
    response.body.push_back('\n');
    return response;
  }
  if (path == "/statusz" && handlers_.status) {
    response.content_type = "application/json";
    response.body = RenderStatusJson(handlers_.status());
    response.body.push_back('\n');
    return response;
  }
  if (path == "/tracez" && handlers_.traces) {
    response.content_type = "application/json";
    response.body = RenderTracezJson(handlers_.traces());
    response.body.push_back('\n');
    return response;
  }
  if (path == "/spanz" && handlers_.spans) {
    response.content_type = "application/json";
    response.body = RenderSpanzJson(handlers_.spans());
    response.body.push_back('\n');
    return response;
  }
  if (path == "/queryz" && handlers_.queryz_json) {
    response.content_type = "application/json";
    response.body = handlers_.queryz_json();
    response.body.push_back('\n');
    return response;
  }
  if (path == "/streamz" && handlers_.streamz_json) {
    response.content_type = "application/json";
    response.body = handlers_.streamz_json();
    response.body.push_back('\n');
    return response;
  }
  if (path == "/timez" && handlers_.timez_json) {
    response.content_type = "application/json";
    response.body = handlers_.timez_json(query);
    response.body.push_back('\n');
    return response;
  }
  if (path == "/alertz" && handlers_.alertz_json) {
    response.content_type = "application/json";
    response.body = handlers_.alertz_json();
    response.body.push_back('\n');
    return response;
  }
  if (path == "/" || path == "/index.html") {
    response.content_type = "text/plain; charset=utf-8";
    response.body =
        "springdtw introspection\n"
        "  /metrics       Prometheus exposition\n"
        "  /metrics.json  metrics as JSON\n"
        "  /healthz       liveness + per-worker staleness\n"
        "  /statusz       pipeline snapshot\n"
        "  /tracez        recent match-lifecycle traces\n"
        "  /spanz         recent end-to-end tick spans\n"
        "  /queryz        per-query cost accounting (top-K)\n"
        "  /streamz       per-stream cost accounting (top-K)\n"
        "  /timez         metrics timeline series "
        "(?metric=...&window=...&field=...)\n"
        "  /alertz        alert rule states + transition counters\n";
    return response;
  }
  response.code = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "not found\n";
  return response;
}

}  // namespace obs
}  // namespace springdtw
