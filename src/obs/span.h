#ifndef SPRINGDTW_OBS_SPAN_H_
#define SPRINGDTW_OBS_SPAN_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace springdtw {
namespace obs {

/// One end-to-end tick span: the monotonic timestamps a sampled tick
/// collected while moving through the ingest pipeline, from the client's
/// send stamp (optional wire trailer) to the subscriber fan-out write.
/// Fixed-size POD so the ring buffer never allocates after construction.
///
/// Timestamps are util::Stopwatch::NowNanos() readings. A stage that did
/// not happen for this tick is 0: client_send_nanos is 0 for ticks pushed
/// in-process (no wire trailer), subscriber_write_nanos is 0 when no
/// network server fanned the delivery out. All nonzero stages are monotone
/// in pipeline order — every stamp is taken on the same monotonic clock,
/// each stage strictly after the previous one (client stamps come from the
/// same clock only for in-process/loopback clients; a remote client's
/// stamp is comparable only as far as its clock is).
struct TickSpan {
  /// Global ingest sequence number of the sampled tick.
  uint64_t seq = 0;
  int64_t stream_id = -1;
  /// Client's send stamp from the TICK/TICK_BATCH trailer; 0 when absent.
  uint64_t client_send_nanos = 0;
  /// Router accepted the tick (ingest edge).
  uint64_t server_recv_nanos = 0;
  /// Router finished pushing the carrying message into the worker ring.
  uint64_t router_enqueue_nanos = 0;
  /// Worker popped the carrying message.
  uint64_t worker_pop_nanos = 0;
  /// Worker finished the matcher pass over the carrying message.
  uint64_t worker_done_nanos = 0;
  /// Router delivered the message's matches to sinks at a drain barrier.
  uint64_t delivered_nanos = 0;
  /// Network server finished appending the fan-out frames; 0 off-wire.
  uint64_t subscriber_write_nanos = 0;
  /// Matches reported at exactly this tick's sequence number.
  int64_t matches = 0;
};

/// Renders one span as a single JSON object (no trailing newline). Shared
/// by SpanRing::DumpJsonl and the introspection server's /spanz.
std::string TickSpanJson(const TickSpan& span);

/// Bounded-memory ring buffer of TickSpans, mirroring TraceRing: capacity
/// is fixed at construction (0 = span collection disabled); once full, new
/// spans overwrite the oldest and dropped() counts what was lost. Record()
/// is O(1) and allocation-free.
class SpanRing {
 public:
  explicit SpanRing(int64_t capacity = 0);

  bool enabled() const { return capacity_ > 0; }
  int64_t capacity() const { return capacity_; }
  /// Spans currently held (<= capacity).
  int64_t size() const;
  /// Spans ever recorded, including overwritten ones.
  int64_t total_recorded() const { return total_; }
  /// Spans lost to wrap-around.
  int64_t dropped() const;

  void Record(const TickSpan& span);
  void Clear();

  /// Held spans, oldest first.
  std::vector<TickSpan> Spans() const;

  /// Writes one JSON object per line (JSONL), oldest first.
  void DumpJsonl(std::ostream& out) const;

 private:
  std::vector<TickSpan> ring_;
  int64_t capacity_ = 0;
  int64_t total_ = 0;  // ring_[total_ % capacity_] is the next write slot.
};

/// Payload for /spanz: recent completed tick spans plus how many were lost
/// to ring wrap-around.
struct SpanzReport {
  std::vector<TickSpan> spans;
  int64_t dropped = 0;
};

std::string RenderSpanzJson(const SpanzReport& report);

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_SPAN_H_
