#ifndef SPRINGDTW_OBS_METRICS_H_
#define SPRINGDTW_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace springdtw {
namespace obs {

/// One key=value metric label. A series within a family is identified by
/// its full label list; callers should pass labels in a consistent key
/// order (the registry matches them positionally, it does not sort).
struct Label {
  std::string key;
  std::string value;
  bool operator==(const Label&) const = default;
};
using Labels = std::vector<Label>;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// "counter" / "gauge" / "histogram".
std::string_view MetricKindName(MetricKind kind);

/// Monotonically increasing integer metric. Handles returned by the
/// registry are plain pointers with stable addresses; incrementing is a
/// single add — cheap enough for per-tick ingest paths.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Point-in-time double metric.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution metric. Backed by the existing util accumulators:
/// util::LogHistogram for O(1) bucketed quantiles, util::RunningStats for
/// exact moments, and util::QuantileSketch for exact quantiles. The sketch
/// stores one double per observation up to kMaxExactSamples; past that it
/// stops growing and quantiles degrade to the log-bucket approximation
/// (Snapshot marks this via `exact`).
class Histogram {
 public:
  static constexpr int64_t kMaxExactSamples = 1 << 20;

  void Observe(double v) {
    log_.Add(v);
    stats_.Add(v);
    if (sketch_.count() < kMaxExactSamples) sketch_.Add(v);
  }

  int64_t count() const { return stats_.count(); }
  double sum() const { return stats_.sum(); }

  /// True while every observation is still held by the exact sketch.
  bool exact() const { return stats_.count() == sketch_.count(); }

  /// Exact quantile while exact(), log-bucket upper edge afterwards.
  double Quantile(double q) const {
    return exact() ? sketch_.Quantile(q) : log_.Quantile(q);
  }

  const util::RunningStats& stats() const { return stats_; }
  const util::LogHistogram& log() const { return log_; }
  const util::QuantileSketch& sketch() const { return sketch_; }

  void Reset() {
    log_ = util::LogHistogram();
    stats_.Reset();
    sketch_.Reset();
  }

 private:
  util::LogHistogram log_;
  util::RunningStats stats_;
  util::QuantileSketch sketch_;
};

/// Point-in-time copy of one histogram series, for exposition.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// True when the quantiles above are exact (sample set fully retained).
  bool exact = true;
};

/// Point-in-time copy of one series. Which value field is meaningful
/// depends on the owning family's kind.
struct SeriesSnapshot {
  Labels labels;
  int64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramSnapshot histogram;
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// Consistent point-in-time copy of a whole registry. Plain data — safe to
/// hand to a renderer or another thread while ingest continues.
struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  /// Family by name; nullptr when absent.
  const FamilySnapshot* Find(std::string_view name) const;
};

/// Merges per-shard registry snapshots into one fleet-wide view (e.g. the
/// N worker registries of a monitor::ShardedMonitor). Families and series
/// are unioned by (name, labels), keeping first-seen order. Counters and
/// gauges sum — every engine gauge (memory bytes, stream/query counts,
/// pending candidates) is an extensive quantity, so summation is the
/// correct fleet aggregate. Histograms merge count / sum / min / max
/// exactly and recompute the mean; quantiles are count-weighted averages
/// of the shard quantiles, and `exact` is cleared whenever more than one
/// non-empty shard contributed (cross-shard quantiles cannot be recovered
/// from summaries).
MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& shards);

/// Named metric families (counter / gauge / histogram), each with any
/// number of labeled series. Designed for the engine's single-threaded
/// ingest path: Get* resolves (or creates) a series once at registration
/// time and returns a stable pointer, so the hot path touches no maps, no
/// locks, and no strings — just the instrument itself. Readers take a
/// Snapshot() copy and render that.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // Instrument pointers escape; the registry must stay put.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter series `name{labels}`, creating the family and/or
  /// series on first use. `help` is recorded on first use and ignored
  /// afterwards. Requesting an existing name with a different kind is a
  /// programming error (CHECK-fails).
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          Labels labels = {});

  MetricsSnapshot Snapshot() const;

  int64_t num_families() const {
    return static_cast<int64_t>(families_.size());
  }

 private:
  struct Series {
    Labels labels;
    // Exactly one is non-null, matching the family kind. unique_ptr keeps
    // the instrument's address stable across vector growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<Series> series;
  };

  Family* FindOrCreateFamily(std::string_view name, std::string_view help,
                             MetricKind kind);
  Series* FindOrCreateSeries(Family* family, Labels labels);

  std::vector<Family> families_;  // In registration order.
};

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_METRICS_H_
