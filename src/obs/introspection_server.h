#ifndef SPRINGDTW_OBS_INTROSPECTION_SERVER_H_
#define SPRINGDTW_OBS_INTROSPECTION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace springdtw {
namespace obs {

/// Health verdict for one pipeline worker, as reported by /healthz.
/// Staleness semantics (docs/OBSERVABILITY.md): a worker that has processed
/// traffic before but has not advanced for longer than the staleness budget
/// is "stale" — this covers both a stuck worker (backlog it cannot drain)
/// and a dead feed (silence beyond the budget on a stream that is expected
/// to tick continuously).
struct WorkerHealth {
  int64_t worker = 0;
  /// "idle" (never saw traffic), "ok", "stale", or "stopped".
  std::string state = "idle";
  bool healthy = true;
  /// Messages routed to this worker but not yet fully processed.
  uint64_t lag_messages = 0;
  /// Milliseconds since the worker last finished a message; < 0 = never.
  double ms_since_progress = -1.0;
};

struct HealthReport {
  bool healthy = true;
  /// "ok", "stale", "stopped", or "disabled" (introspection not attached).
  std::string state = "ok";
  double staleness_budget_ms = 0.0;
  std::vector<WorkerHealth> workers;
};

/// One worker's row in /statusz.
struct WorkerStatus {
  int64_t worker = 0;
  std::string state = "idle";
  uint64_t messages_produced = 0;
  uint64_t messages_consumed = 0;
  int64_t ticks = 0;
  int64_t streams = 0;
  int64_t queries = 0;
  /// Candidates currently pending (d_m <= epsilon, not yet reported), as of
  /// the worker's last published snapshot.
  int64_t pending_candidates = 0;
  uint64_t ring_occupancy = 0;
  uint64_t ring_capacity = 0;
  uint64_t ring_blocked_pushes = 0;
  uint64_t ring_producer_parks = 0;
  uint64_t ring_consumer_parks = 0;
};

struct StatusReport {
  /// "engine" (single MonitorEngine) or "sharded_monitor".
  std::string role = "engine";
  bool started = false;
  double uptime_seconds = 0.0;
  int64_t num_workers = 0;
  int64_t num_streams = 0;
  int64_t num_queries = 0;
  int64_t ticks_ingested = 0;
  int64_t matches_delivered = 0;
  /// Seconds since the last checkpoint was serialized; < 0 = never.
  double checkpoint_age_seconds = -1.0;
  std::vector<WorkerStatus> workers;
};

/// Payload for /tracez: recent match-lifecycle events plus how many were
/// lost to ring wrap-around.
struct TracezReport {
  std::vector<TraceEvent> events;
  int64_t dropped = 0;
};

std::string RenderHealthJson(const HealthReport& report);
std::string RenderStatusJson(const StatusReport& report);
std::string RenderTracezJson(const TracezReport& report);

/// Endpoint data sources. Every handler runs on the server thread and must
/// be thread-safe against the monitored pipeline; a null handler turns its
/// endpoint into a 404.
struct IntrospectionHandlers {
  std::function<MetricsSnapshot()> metrics;
  std::function<HealthReport()> health;
  std::function<StatusReport()> status;
  std::function<TracezReport()> traces;
  std::function<SpanzReport()> spans;
  /// Cost-accounting endpoints return pre-rendered JSON so the obs layer
  /// stays ignorant of the monitor's accounting types (the provider ranks
  /// and renders; see monitor/cost_accounting.h).
  std::function<std::string()> queryz_json;
  std::function<std::string()> streamz_json;
  /// /timez: metrics-timeline series, pre-rendered (see obs/timeline.h's
  /// RenderTimezJson). Receives the raw URL query string after '?'
  /// ("metric=...&window=...&field=..."), empty for the catalog document.
  std::function<std::string(const std::string& query)> timez_json;
  /// /alertz: alert rule states, pre-rendered (obs/alert.h).
  std::function<std::string()> alertz_json;
};

struct IntrospectionServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Bind 127.0.0.1 only (the default); false binds all interfaces.
  bool loopback_only = true;
};

/// Dependency-free HTTP/1.1 introspection server: a blocking accept loop on
/// one dedicated thread, plain POSIX sockets, GET-only, one request per
/// connection (Connection: close). Endpoints (docs/OBSERVABILITY.md):
///
///   /metrics       Prometheus text exposition 0.0.4
///   /metrics.json  the same snapshot as JSON
///   /healthz       liveness + per-worker staleness verdict (503 when any
///                  worker is stale)
///   /statusz       pipeline snapshot: per-worker ticks, ring occupancy,
///                  pending candidates, checkpoint age, uptime
///   /tracez        recent match-lifecycle trace events
///   /spanz         recent end-to-end tick spans (sampled ingest tracing)
///   /queryz        per-query cost accounting, ranked top-K by cost
///   /streamz       per-stream cost accounting, ranked top-K by cost
///   /timez         metrics-timeline series (?metric=&window=&field=)
///   /alertz        alert rule states + transition counters
///
/// Requests are served serially; handlers produce small bounded payloads,
/// so a slow scraper can delay the next scrape but never the pipeline.
class IntrospectionServer {
 public:
  IntrospectionServer(const IntrospectionServerOptions& options,
                      IntrospectionHandlers handlers);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Binds, listens, and spawns the serving thread. Fails on bind/listen
  /// errors (e.g. port in use). Not restartable after Stop().
  util::Status Start();

  /// Stops the serving thread and closes the listening socket. Idempotent;
  /// also run by the destructor.
  void Stop();

  bool running() const {
    // order: relaxed — advisory flag; Start()/Stop() synchronize via the
    // serving thread's spawn/join, not this load.
    return running_.load(std::memory_order_relaxed);
  }
  /// The bound port (the actual one when options.port was 0), or -1 before
  /// a successful Start().
  int port() const { return port_; }
  /// Requests answered so far (any status code).
  int64_t requests_served() const {
    // order: relaxed — diagnostic counter; staleness is fine.
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Response {
    int code = 200;
    std::string content_type;
    std::string body;
  };

  void ServeLoop();
  void HandleConnection(int client_fd);
  Response Dispatch(const std::string& path, const std::string& query) const;

  IntrospectionServerOptions options_;
  IntrospectionHandlers handlers_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_served_{0};
  std::thread thread_;
};

/// Thread-safe published-snapshot store for single-threaded pipelines: the
/// ingest thread publishes periodic snapshots, the server thread reads the
/// latest. Handlers() binds the cache to an IntrospectionHandlers bundle;
/// the cache must outlive the server using it.
class IntrospectionCache {
 public:
  void PublishMetrics(MetricsSnapshot snapshot) {
    util::MutexLock lock(&mu_);
    metrics_ = std::move(snapshot);
  }
  void PublishHealth(HealthReport health) {
    util::MutexLock lock(&mu_);
    health_ = std::move(health);
  }
  void PublishStatus(StatusReport status) {
    util::MutexLock lock(&mu_);
    status_ = std::move(status);
  }
  void PublishTraces(TracezReport traces) {
    util::MutexLock lock(&mu_);
    traces_ = std::move(traces);
  }

  MetricsSnapshot Metrics() const {
    util::MutexLock lock(&mu_);
    return metrics_;
  }
  HealthReport Health() const {
    util::MutexLock lock(&mu_);
    return health_;
  }
  StatusReport Status() const {
    util::MutexLock lock(&mu_);
    return status_;
  }
  TracezReport Traces() const {
    util::MutexLock lock(&mu_);
    return traces_;
  }

  IntrospectionHandlers Handlers() {
    IntrospectionHandlers handlers;
    handlers.metrics = [this] { return Metrics(); };
    handlers.health = [this] { return Health(); };
    handlers.status = [this] { return Status(); };
    handlers.traces = [this] { return Traces(); };
    return handlers;
  }

 private:
  mutable util::Mutex mu_;
  MetricsSnapshot metrics_ SPRINGDTW_GUARDED_BY(mu_);
  HealthReport health_ SPRINGDTW_GUARDED_BY(mu_);
  StatusReport status_ SPRINGDTW_GUARDED_BY(mu_);
  TracezReport traces_ SPRINGDTW_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace springdtw

#endif  // SPRINGDTW_OBS_INTROSPECTION_SERVER_H_
