#include "obs/metrics.h"

#include "util/logging.h"

namespace springdtw {
namespace obs {

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const FamilySnapshot* MetricsSnapshot::Find(std::string_view name) const {
  for (const FamilySnapshot& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

MetricsRegistry::Family* MetricsRegistry::FindOrCreateFamily(
    std::string_view name, std::string_view help, MetricKind kind) {
  for (Family& family : families_) {
    if (family.name == name) {
      SPRINGDTW_CHECK(family.kind == kind)
          << "metric family '" << family.name << "' registered as "
          << std::string(MetricKindName(family.kind)) << ", requested as "
          << std::string(MetricKindName(kind));
      return &family;
    }
  }
  Family family;
  family.name = std::string(name);
  family.help = std::string(help);
  family.kind = kind;
  families_.push_back(std::move(family));
  return &families_.back();
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreateSeries(Family* family,
                                                             Labels labels) {
  for (Series& series : family->series) {
    if (series.labels == labels) return &series;
  }
  Series series;
  series.labels = std::move(labels);
  switch (family->kind) {
    case MetricKind::kCounter:
      series.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      series.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      series.histogram = std::make_unique<Histogram>();
      break;
  }
  family->series.push_back(std::move(series));
  return &family->series.back();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, Labels labels) {
  Family* family = FindOrCreateFamily(name, help, MetricKind::kCounter);
  return FindOrCreateSeries(family, std::move(labels))->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 Labels labels) {
  Family* family = FindOrCreateFamily(name, help, MetricKind::kGauge);
  return FindOrCreateSeries(family, std::move(labels))->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         Labels labels) {
  Family* family = FindOrCreateFamily(name, help, MetricKind::kHistogram);
  return FindOrCreateSeries(family, std::move(labels))->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.families.reserve(families_.size());
  for (const Family& family : families_) {
    FamilySnapshot fs;
    fs.name = family.name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.series.reserve(family.series.size());
    for (const Series& series : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.counter_value = series.counter->value();
          break;
        case MetricKind::kGauge:
          ss.gauge_value = series.gauge->value();
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *series.histogram;
          ss.histogram.count = h.count();
          ss.histogram.sum = h.sum();
          ss.histogram.min = h.stats().min();
          ss.histogram.max = h.stats().max();
          ss.histogram.mean = h.stats().mean();
          ss.histogram.p50 = h.Quantile(0.5);
          ss.histogram.p90 = h.Quantile(0.9);
          ss.histogram.p99 = h.Quantile(0.99);
          ss.histogram.exact = h.exact();
          break;
        }
      }
      fs.series.push_back(std::move(ss));
    }
    snapshot.families.push_back(std::move(fs));
  }
  return snapshot;
}

}  // namespace obs
}  // namespace springdtw
