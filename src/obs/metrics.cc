#include "obs/metrics.h"

#include "util/logging.h"

namespace springdtw {
namespace obs {

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const FamilySnapshot* MetricsSnapshot::Find(std::string_view name) const {
  for (const FamilySnapshot& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

namespace {

void MergeHistogram(const HistogramSnapshot& in, HistogramSnapshot* out) {
  if (in.count == 0) return;
  if (out->count == 0) {
    *out = in;
    return;
  }
  const double w_out = static_cast<double>(out->count);
  const double w_in = static_cast<double>(in.count);
  const double total = w_out + w_in;
  out->min = in.min < out->min ? in.min : out->min;
  out->max = in.max > out->max ? in.max : out->max;
  out->sum += in.sum;
  out->count += in.count;
  out->mean = out->sum / total;
  // Count-weighted quantile blend: not exact, but monotone and bounded by
  // the shard extremes, which is the most a summary merge can promise.
  out->p50 = (out->p50 * w_out + in.p50 * w_in) / total;
  out->p90 = (out->p90 * w_out + in.p90 * w_in) / total;
  out->p99 = (out->p99 * w_out + in.p99 * w_in) / total;
  out->exact = false;
}

}  // namespace

MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& shards) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& shard : shards) {
    for (const FamilySnapshot& family : shard.families) {
      FamilySnapshot* target = nullptr;
      for (FamilySnapshot& existing : merged.families) {
        if (existing.name == family.name) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        FamilySnapshot fresh;
        fresh.name = family.name;
        fresh.help = family.help;
        fresh.kind = family.kind;
        merged.families.push_back(std::move(fresh));
        target = &merged.families.back();
      } else {
        SPRINGDTW_CHECK(target->kind == family.kind)
            << "metric family '" << family.name
            << "' has conflicting kinds across shards";
      }
      for (const SeriesSnapshot& series : family.series) {
        SeriesSnapshot* slot = nullptr;
        for (SeriesSnapshot& existing : target->series) {
          if (existing.labels == series.labels) {
            slot = &existing;
            break;
          }
        }
        if (slot == nullptr) {
          SeriesSnapshot fresh;
          fresh.labels = series.labels;
          // Histogram fields merge via MergeHistogram below so `exact`
          // stays meaningful; scalar fields start at zero and accumulate.
          target->series.push_back(std::move(fresh));
          slot = &target->series.back();
        }
        switch (family.kind) {
          case MetricKind::kCounter:
            slot->counter_value += series.counter_value;
            break;
          case MetricKind::kGauge:
            slot->gauge_value += series.gauge_value;
            break;
          case MetricKind::kHistogram:
            MergeHistogram(series.histogram, &slot->histogram);
            break;
        }
      }
    }
  }
  return merged;
}

MetricsRegistry::Family* MetricsRegistry::FindOrCreateFamily(
    std::string_view name, std::string_view help, MetricKind kind) {
  for (Family& family : families_) {
    if (family.name == name) {
      SPRINGDTW_CHECK(family.kind == kind)
          << "metric family '" << family.name << "' registered as "
          << std::string(MetricKindName(family.kind)) << ", requested as "
          << std::string(MetricKindName(kind));
      return &family;
    }
  }
  Family family;
  family.name = std::string(name);
  family.help = std::string(help);
  family.kind = kind;
  families_.push_back(std::move(family));
  return &families_.back();
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreateSeries(Family* family,
                                                             Labels labels) {
  for (Series& series : family->series) {
    if (series.labels == labels) return &series;
  }
  Series series;
  series.labels = std::move(labels);
  switch (family->kind) {
    case MetricKind::kCounter:
      series.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      series.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      series.histogram = std::make_unique<Histogram>();
      break;
  }
  family->series.push_back(std::move(series));
  return &family->series.back();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, Labels labels) {
  Family* family = FindOrCreateFamily(name, help, MetricKind::kCounter);
  return FindOrCreateSeries(family, std::move(labels))->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 Labels labels) {
  Family* family = FindOrCreateFamily(name, help, MetricKind::kGauge);
  return FindOrCreateSeries(family, std::move(labels))->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         Labels labels) {
  Family* family = FindOrCreateFamily(name, help, MetricKind::kHistogram);
  return FindOrCreateSeries(family, std::move(labels))->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.families.reserve(families_.size());
  for (const Family& family : families_) {
    FamilySnapshot fs;
    fs.name = family.name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.series.reserve(family.series.size());
    for (const Series& series : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.counter_value = series.counter->value();
          break;
        case MetricKind::kGauge:
          ss.gauge_value = series.gauge->value();
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *series.histogram;
          ss.histogram.count = h.count();
          ss.histogram.sum = h.sum();
          ss.histogram.min = h.stats().min();
          ss.histogram.max = h.stats().max();
          ss.histogram.mean = h.stats().mean();
          ss.histogram.p50 = h.Quantile(0.5);
          ss.histogram.p90 = h.Quantile(0.9);
          ss.histogram.p99 = h.Quantile(0.99);
          ss.histogram.exact = h.exact();
          break;
        }
      }
      fs.series.push_back(std::move(ss));
    }
    snapshot.families.push_back(std::move(fs));
  }
  return snapshot;
}

}  // namespace obs
}  // namespace springdtw
