#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace springdtw {
namespace net {

StreamClient::StreamClient(const StreamClientOptions& options)
    : options_(options) {}

StreamClient::~StreamClient() { Close(); }

void StreamClient::SetMatchCallback(MatchCallback callback) {
  match_callback_ = std::move(callback);
}

void StreamClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  negotiated_version_ = 0;
  send_buffer_.clear();
  recv_buffer_.clear();
}

uint64_t StreamClient::TickSendStamp() const {
  if (!options_.stamp_send_times || negotiated_version_ < 2) return 0;
  return static_cast<uint64_t>(util::Stopwatch::NowNanos());
}

util::Status StreamClient::ConnectOnce() {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return util::IoError(util::StrFormat("socket: %s", strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return util::InvalidArgumentError(
        util::StrFormat("bad host '%s' (IPv4 literals only)",
                        options_.host.c_str()));
  }
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const util::Status status =
        util::IoError(util::StrFormat("connect %s:%d: %s",
                                      options_.host.c_str(), options_.port,
                                      strerror(errno)));
    Close();
    return status;
  }
  const int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.io_timeout_ms > 0) {
    timeval tv{};
    const auto micros = static_cast<int64_t>(options_.io_timeout_ms * 1000.0);
    tv.tv_sec = static_cast<time_t>(micros / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(micros % 1000000);
    (void)setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return util::Status::Ok();
}

util::Status StreamClient::Connect() {
  if (connected()) return util::Status::Ok();
  util::Status status = util::InternalError("no connect attempt made");
  double backoff_ms = options_.retry_backoff_ms;
  for (int attempt = 0; attempt < std::max(1, options_.connect_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff_ms));
      backoff_ms *= 2;
    }
    status = ConnectOnce();
    if (status.ok()) break;
  }
  SPRINGDTW_RETURN_IF_ERROR(status);

  HelloPayload hello;
  hello.version = kProtocolVersion;
  hello.peer_name = options_.peer_name;
  std::vector<uint8_t> bytes;
  AppendPayloadFrame(FrameType::kHello, hello, &bytes);
  status = WriteAll(bytes);
  if (!status.ok()) {
    Close();
    return status;
  }
  Frame frame;
  status = ReadFrame(&frame);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (frame.type == FrameType::kError) {
    ErrorPayload error;
    if (DecodePayload(frame.payload, &error).ok()) {
      Close();
      return error.ToStatus();
    }
  }
  if (frame.type != FrameType::kHelloAck) {
    Close();
    return util::InternalError(
        util::StrFormat("expected HELLO_ACK, got %s",
                        std::string(FrameTypeName(frame.type)).c_str()));
  }
  HelloAckPayload ack;
  status = DecodePayload(frame.payload, &ack);
  if (!status.ok()) {
    Close();
    return status;
  }
  // The server acks min(client, server); a server claiming more than we
  // offered is broken (we would emit trailers it cannot have meant).
  if (ack.version > kProtocolVersion || ack.version < kMinProtocolVersion) {
    Close();
    return util::InternalError(
        util::StrFormat("server acked protocol version %u", ack.version));
  }
  negotiated_version_ = ack.version;
  return util::Status::Ok();
}

util::Status StreamClient::WriteAll(std::span<const uint8_t> bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + offset, bytes.size() - offset,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::IoError(util::StrFormat("send: %s", strerror(errno)));
    }
    offset += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::Status StreamClient::ReadFrame(Frame* frame) {
  while (true) {
    size_t consumed = 0;
    SPRINGDTW_RETURN_IF_ERROR(CutFrame(recv_buffer_, options_.max_frame_bytes,
                                       frame, &consumed));
    if (consumed > 0) {
      recv_buffer_.erase(recv_buffer_.begin(),
                         recv_buffer_.begin() +
                             static_cast<ptrdiff_t>(consumed));
      return util::Status::Ok();
    }
    uint8_t chunk[64 * 1024];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      recv_buffer_.insert(recv_buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return util::IoError("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::IoError("timed out waiting for a frame");
    }
    return util::IoError(util::StrFormat("recv: %s", strerror(errno)));
  }
}

template <typename Request, typename Response>
util::Status StreamClient::Call(FrameType request_type, const Request& request,
                                uint64_t request_id, FrameType response_type,
                                Response* response) {
  if (!connected()) return util::FailedPreconditionError("not connected");
  AppendPayloadFrame(request_type, request, &send_buffer_);
  SPRINGDTW_RETURN_IF_ERROR(Flush());
  while (true) {
    Frame frame;
    SPRINGDTW_RETURN_IF_ERROR(ReadFrame(&frame));
    if (frame.type == FrameType::kMatchEvent) {
      MatchEventPayload event;
      SPRINGDTW_RETURN_IF_ERROR(DecodePayload(frame.payload, &event));
      if (match_callback_) match_callback_(event);
      continue;
    }
    if (frame.type == FrameType::kError) {
      ErrorPayload error;
      SPRINGDTW_RETURN_IF_ERROR(DecodePayload(frame.payload, &error));
      return error.ToStatus();
    }
    if (frame.type != response_type) {
      return util::InternalError(util::StrFormat(
          "expected %s, got %s",
          std::string(FrameTypeName(response_type)).c_str(),
          std::string(FrameTypeName(frame.type)).c_str()));
    }
    SPRINGDTW_RETURN_IF_ERROR(DecodePayload(frame.payload, response));
    if (response->request_id != request_id) {
      return util::InternalError(util::StrFormat(
          "response for request %llu, expected %llu",
          static_cast<unsigned long long>(response->request_id),
          static_cast<unsigned long long>(request_id)));
    }
    return util::Status::Ok();
  }
}

util::StatusOr<int64_t> StreamClient::OpenStream(const std::string& name) {
  OpenStreamPayload request;
  request.request_id = next_request_id_++;
  request.name = name;
  StreamOpenedPayload response;
  SPRINGDTW_RETURN_IF_ERROR(Call(FrameType::kOpenStream, request,
                                 request.request_id, FrameType::kStreamOpened,
                                 &response));
  last_stream_ticks_ = response.ticks;
  return response.stream_id;
}

util::StatusOr<int64_t> StreamClient::AddQuery(
    int64_t stream_id, const std::string& name,
    const std::vector<double>& values, const core::SpringOptions& options) {
  AddQueryPayload request;
  request.request_id = next_request_id_++;
  request.stream_id = stream_id;
  request.name = name;
  request.values = values;
  request.epsilon = options.epsilon;
  request.local_distance = static_cast<uint8_t>(options.local_distance);
  request.max_match_length = options.max_match_length;
  request.min_match_length = options.min_match_length;
  QueryAddedPayload response;
  SPRINGDTW_RETURN_IF_ERROR(Call(FrameType::kAddQuery, request,
                                 request.request_id, FrameType::kQueryAdded,
                                 &response));
  return response.query_id;
}

util::StatusOr<int64_t> StreamClient::RemoveQuery(int64_t query_id) {
  RemoveQueryPayload request;
  request.request_id = next_request_id_++;
  request.query_id = query_id;
  QueryRemovedPayload response;
  SPRINGDTW_RETURN_IF_ERROR(Call(FrameType::kRemoveQuery, request,
                                 request.request_id, FrameType::kQueryRemoved,
                                 &response));
  return response.flushed_matches;
}

util::StatusOr<std::vector<QueryListPayload::Entry>>
StreamClient::ListQueries(bool with_stats) {
  ListQueriesPayload request;
  request.request_id = next_request_id_++;
  request.want_stats = with_stats && negotiated_version_ >= 2;
  QueryListPayload response;
  SPRINGDTW_RETURN_IF_ERROR(Call(FrameType::kListQueries, request,
                                 request.request_id, FrameType::kQueryList,
                                 &response));
  return std::move(response.entries);
}

util::Status StreamClient::SubscribeMatches() {
  SubscribeMatchesPayload request;
  request.request_id = next_request_id_++;
  SubscribedPayload response;
  return Call(FrameType::kSubscribeMatches, request, request.request_id,
              FrameType::kSubscribed, &response);
}

util::Status StreamClient::Tick(int64_t stream_id, double value) {
  if (!connected()) return util::FailedPreconditionError("not connected");
  TickPayload tick;
  tick.stream_id = stream_id;
  tick.value = value;
  tick.send_nanos = TickSendStamp();
  AppendPayloadFrame(FrameType::kTick, tick, &send_buffer_);
  if (send_buffer_.size() >= options_.tick_flush_bytes) return Flush();
  return util::Status::Ok();
}

util::Status StreamClient::TickBatch(int64_t stream_id,
                                     std::span<const double> values) {
  if (!connected()) return util::FailedPreconditionError("not connected");
  // Leave generous header room under the cap; each value is 8 bytes.
  const size_t max_per_frame =
      (static_cast<size_t>(options_.max_frame_bytes) - 64) / sizeof(double);
  for (size_t offset = 0; offset < values.size();) {
    const size_t count = std::min(max_per_frame, values.size() - offset);
    TickBatchPayload batch;
    batch.stream_id = stream_id;
    batch.values.assign(values.begin() + static_cast<ptrdiff_t>(offset),
                        values.begin() + static_cast<ptrdiff_t>(offset + count));
    batch.send_nanos = TickSendStamp();
    AppendPayloadFrame(FrameType::kTickBatch, batch, &send_buffer_);
    offset += count;
    if (send_buffer_.size() >= options_.tick_flush_bytes) {
      SPRINGDTW_RETURN_IF_ERROR(Flush());
    }
  }
  return util::Status::Ok();
}

util::Status StreamClient::Flush() {
  if (send_buffer_.empty()) return util::Status::Ok();
  const util::Status status = WriteAll(send_buffer_);
  send_buffer_.clear();
  return status;
}

util::StatusOr<uint64_t> StreamClient::Drain() {
  DrainPayload request;
  request.request_id = next_request_id_++;
  DrainAckPayload response;
  SPRINGDTW_RETURN_IF_ERROR(Call(FrameType::kDrain, request,
                                 request.request_id, FrameType::kDrainAck,
                                 &response));
  return response.ticks_applied;
}

util::StatusOr<uint64_t> StreamClient::Checkpoint() {
  CheckpointPayload request;
  request.request_id = next_request_id_++;
  CheckpointedPayload response;
  SPRINGDTW_RETURN_IF_ERROR(Call(FrameType::kCheckpoint, request,
                                 request.request_id, FrameType::kCheckpointed,
                                 &response));
  return response.state_bytes;
}

}  // namespace net
}  // namespace springdtw
