#ifndef SPRINGDTW_NET_SERVER_H_
#define SPRINGDTW_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "wal/wal.h"

namespace springdtw {
namespace net {

/// A match reconstructed by WAL replay whose delivery was not yet
/// watermarked before the crash. The server re-fans these out to each new
/// subscriber (see SetRecoveredMatches).
struct RecoveredMatch {
  monitor::MatchOrigin origin;
  core::Match match;
};

struct StreamServerOptions {
  /// Bind address; loopback by default — this is an in-datacenter ingest
  /// protocol with no auth layer.
  std::string bind_address = "127.0.0.1";
  /// Listening port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Accepted connections beyond this are refused (accepted + closed).
  int64_t max_connections = 64;
  /// Frame cap enforced by CutFrame before payload buffering.
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Slow-subscriber policy: a connection whose unsent output exceeds this
  /// many bytes is disconnected (bounded queue, then disconnect) rather
  /// than allowed to stall ingest or grow without bound.
  uint64_t max_output_buffer_bytes = uint64_t{4} << 20;
  /// Connections idle (no bytes in either direction) longer than this are
  /// closed; 0 disables the idle timeout.
  double idle_timeout_ms = 0.0;
  /// poll() tick, which also bounds Stop() latency and the cadence of
  /// periodic duties (idle sweep, checkpoint, metrics publish).
  double poll_interval_ms = 50.0;
  /// Periodic checkpoint cadence; 0 disables. Requires a checkpoint
  /// callback (SetCheckpointFn). Checkpoints run on the event-loop thread
  /// between frames, so they are barrier-consistent.
  double checkpoint_period_ms = 0.0;
  /// Metrics publish throttle for MetricsSnapshot().
  double publish_interval_ms = 100.0;
  /// Advertised in HELLO_ACK.
  std::string server_name = "springdtw_serve";
};

/// TCP serving layer that turns a ShardedMonitor into a long-running
/// daemon speaking the net/protocol.h wire format.
///
/// ## Threading model
///
/// One event-loop thread runs a poll() loop over the listening socket and
/// every connection, and that thread IS the monitor's single router thread
/// for the server's lifetime: every Push/Drain/AddQuery/RemoveQuery/
/// SerializeState lands there, so the monitor's single-caller contract
/// holds with no extra locking. Consequences:
///
///  * The embedder must Start() the monitor before Start()ing the server
///    and must not touch the monitor (except the thread-safe introspection
///    methods) until after Stop() returns — the join inside Stop() is the
///    happens-before edge that hands the router role back to the caller.
///  * Checkpoints requested over the wire (and the periodic checkpoint)
///    run on the loop thread via the SetCheckpointFn callback.
///
/// ## Match fan-out
///
/// The server registers a sink on the monitor; sinks fire on the router
/// thread at drain barriers in the engine's deterministic (seq, query id)
/// order, and the server appends one MATCH_EVENT frame per match to every
/// subscribed connection in that order. The loop drains the monitor after
/// every poll round that routed ticks, and synchronously inside DRAIN
/// handling — so on one connection, all matches caused by ticks preceding
/// a DRAIN are delivered before its DRAIN_ACK (TCP ordering makes the
/// end-to-end byte stream deterministic).
///
/// ## Error policy
///
/// Admin requests that fail (bad stream/query id, invalid options) get an
/// ERROR frame echoing their request_id; the connection stays usable.
/// Session violations — frame before HELLO, version skew, unknown frame
/// type, framing errors, a TICK for an unknown stream (fire-and-forget, so
/// nothing weaker is visible to the peer) — get an ERROR with request_id 0
/// and the connection is closed after the write flushes.
class StreamServer {
 public:
  /// Writes a checkpoint (implementation-defined destination) and returns
  /// the serialized byte count. Runs on the event-loop thread, which holds
  /// the router role — it may call monitor->SerializeState() directly.
  using CheckpointFn = std::function<util::StatusOr<uint64_t>()>;

  /// `monitor` is not owned and must outlive the server.
  StreamServer(monitor::ShardedMonitor* monitor,
               const StreamServerOptions& options);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Set before Start(); enables CHECKPOINT frames and the periodic
  /// checkpoint.
  void SetCheckpointFn(CheckpointFn fn);

  /// Set before Start(); not owned, must outlive the server. Enables
  /// durable ingest (docs/DURABILITY.md): every accepted TICK/TICK_BATCH
  /// is appended to the WAL *before* it reaches the monitor, delivery
  /// watermarks are logged once subscriber sockets are flushed, every
  /// successful admin mutation forces a checkpoint (so the WAL tail always
  /// postdates a checkpoint that already contains the topology), and WAL
  /// truncation rides checkpoints — deferred until all subscribed
  /// connections have fully flushed, so no match inside an about-to-die
  /// output buffer loses its replayability. Requires SetCheckpointFn.
  void SetWal(wal::WalWriter* wal);

  /// Set before Start(): matches WAL replay reconstructed above the
  /// delivery watermark. Fanned out (in order, once per session) to every
  /// connection right after its SUBSCRIBE_MATCHES is acked, so a
  /// reconnecting subscriber resumes with exactly the matches whose
  /// pre-crash delivery was not confirmed. Held for this server
  /// generation only.
  void SetRecoveredMatches(std::vector<RecoveredMatch> matches);

  /// Binds, listens, and spawns the event-loop thread. The monitor must
  /// already be started.
  util::Status Start();

  /// Signals the loop, closes every connection, joins the thread.
  /// Idempotent. After return the calling thread owns the router role.
  void Stop();

  bool running() const {
    // order: acquire — pairs with the loop thread's release store on
    // startup/exit so a caller that observes running_ == true also sees
    // the bound port and loop state written before it.
    return running_.load(std::memory_order_acquire);
  }

  /// Bound port (valid after Start), -1 before.
  int port() const { return port_; }

  /// Latest published copy of the server's metric families
  /// (spring_net_*). Thread-safe; wire into
  /// ShardedMonitor::SetAuxMetricsProvider to splice these into /metrics.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// Loop-thread counters for tests (racy reads are fine post-Stop).
  int64_t total_connections() const {
    // order: relaxed — test/diagnostic counter; exact reads only matter
    // post-Stop, where the join is the synchronization edge.
    return total_connections_.load(std::memory_order_relaxed);
  }
  int64_t slow_disconnects() const {
    // order: relaxed — test/diagnostic counter; see total_connections().
    return slow_disconnects_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;
    /// Bytes of `out` already written to the socket.
    size_t out_offset = 0;
    bool hello_done = false;
    /// Version agreed in HELLO: min(client, server), in
    /// [kMinProtocolVersion, kProtocolVersion]. 0 before HELLO.
    uint32_t negotiated_version = 0;
    bool subscribed = false;
    /// Flush remaining output, then close (set on fatal session errors).
    bool closing = false;
    uint64_t last_activity_nanos = 0;
  };

  void LoopThread();
  void AcceptPending(uint64_t now_nanos);
  /// Reads available bytes; returns false when the connection is done.
  bool ReadAndProcess(Connection* conn, uint64_t now_nanos);
  /// Writes buffered output; returns false when the connection is done.
  bool WritePending(Connection* conn);
  /// Dispatches one decoded frame; returns false on session-fatal errors
  /// (an ERROR frame has been queued and `closing` set).
  bool HandleFrame(Connection* conn, const Frame& frame);
  void SendFrame(Connection* conn, FrameType type,
                 std::span<const uint8_t> payload);
  template <typename Payload>
  void Send(Connection* conn, FrameType type, const Payload& payload) {
    util::ByteWriter writer;
    payload.EncodeTo(&writer);
    SendFrame(conn, type, writer.buffer());
  }
  /// Queues an ERROR frame; request_id 0 + closing for session-fatal.
  void SendError(Connection* conn, uint64_t request_id,
                 const util::Status& status, bool fatal);
  /// Drains the monitor if any ticks were routed since the last barrier
  /// (sink fan-out happens inside).
  void DrainIfDirty();
  /// Sink callback: fans one match out to all subscribers.
  void OnMatch(const monitor::MatchOrigin& origin, const core::Match& match);
  /// Appends one fully framed byte run to `conn`, enforcing the
  /// slow-subscriber cap.
  void AppendEncoded(Connection* conn, std::span<const uint8_t> frame);
  /// Encodes one MATCH_EVENT and appends it to every subscribed
  /// connection, or to `only` alone (recovery-buffer fan-out). Encodes the
  /// v3 trailer only for v3 peers.
  void FanOutMatch(const monitor::MatchOrigin& origin,
                   const core::Match& match, Connection* only);
  /// Logs ticks accepted for `stream_id` before they enter the monitor.
  util::Status AppendWalTicks(int64_t stream_id,
                              std::span<const double> values);
  /// Drains, runs the checkpoint callback, and (with a WAL) schedules
  /// truncation.
  util::StatusOr<uint64_t> RunCheckpoint();
  /// After a successful admin mutation with a WAL: checkpoint so the WAL
  /// tail never refers to unpersisted topology. On failure the session is
  /// killed (`fatal` error to `conn`) and false returned — durability
  /// cannot be promised past this point.
  bool CheckpointAfterAdmin(Connection* conn, uint64_t request_id);
  /// Appends a delivery mark once every subscribed connection has fully
  /// flushed everything fanned out so far.
  void MaybeLogDeliveryMark();
  /// Runs a scheduled WAL truncation once subscribers are flushed.
  void MaybeTruncateWal();
  bool AllSubscribersFlushed() const;
  void CloseConnection(Connection* conn);
  void PublishMetrics(uint64_t now_nanos, bool force);
  void MaybePeriodicCheckpoint(uint64_t now_nanos);
  obs::Counter* FrameCounter(FrameType type);

  monitor::ShardedMonitor* monitor_;
  StreamServerOptions options_;
  CheckpointFn checkpoint_fn_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  /// Event-loop state (loop thread only once Start() returns).
  std::vector<std::unique_ptr<Connection>> connections_;
  std::unique_ptr<monitor::CallbackSink> sink_;
  bool sink_registered_ = false;
  uint64_t delivery_seq_ = 0;
  /// Values routed into the monitor over this server's lifetime; echoed in
  /// DRAIN_ACK.
  uint64_t ticks_routed_ = 0;
  bool ticks_dirty_ = false;
  /// Arrival stamp of the oldest un-drained tick, for the ingest-to-report
  /// latency histogram.
  uint64_t oldest_tick_nanos_ = 0;
  uint64_t last_checkpoint_nanos_ = 0;
  std::vector<uint8_t> frame_scratch_;
  /// Second MATCH_EVENT encoding for pre-v3 subscribers (no match_seq
  /// trailer), built lazily per match.
  std::vector<uint8_t> legacy_frame_scratch_;

  /// Durable ingest state (loop thread only; null/empty when disabled).
  wal::WalWriter* wal_ = nullptr;
  std::vector<RecoveredMatch> recovered_matches_;
  /// Highest (seq, query id) fanned out to subscriber buffers, pending a
  /// delivery-mark append once the sockets flush.
  bool mark_pending_ = false;
  uint64_t mark_seq_ = 0;
  int64_t mark_query_ = 0;
  /// A checkpoint succeeded; truncate the WAL at the next all-flushed
  /// point.
  bool truncate_pending_ = false;

  /// Metrics: registry mutated on the loop thread only; published copies
  /// guarded by the mutex for any-thread reads.
  obs::MetricsRegistry registry_;
  obs::Gauge* connections_gauge_ = nullptr;
  obs::Counter* bytes_rx_ = nullptr;
  obs::Counter* bytes_tx_ = nullptr;
  obs::Counter* slow_disconnects_counter_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Histogram* ingest_report_latency_ms_ = nullptr;
  std::vector<obs::Counter*> frame_counters_;
  uint64_t last_publish_nanos_ = 0;
  mutable util::Mutex publish_mu_;
  obs::MetricsSnapshot published_metrics_ SPRINGDTW_GUARDED_BY(publish_mu_);

  std::atomic<int64_t> total_connections_{0};
  std::atomic<int64_t> slow_disconnects_{0};
};

}  // namespace net
}  // namespace springdtw

#endif  // SPRINGDTW_NET_SERVER_H_
