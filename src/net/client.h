#ifndef SPRINGDTW_NET_CLIENT_H_
#define SPRINGDTW_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/spring.h"
#include "net/protocol.h"
#include "util/status.h"

namespace springdtw {
namespace net {

struct StreamClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Connect attempts (>= 1); the delay between attempts starts at
  /// `retry_backoff_ms` and doubles each retry.
  int connect_attempts = 5;
  double retry_backoff_ms = 100.0;
  /// Receive timeout per blocking read; expiring mid-call fails the call
  /// with kIoError. 0 means block forever.
  double io_timeout_ms = 30000.0;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Ticks are pipelined: buffered locally and written once the buffer
  /// passes this threshold (or on Flush/any request).
  size_t tick_flush_bytes = size_t{64} << 10;
  /// Sent in HELLO, for server logs.
  std::string peer_name = "springdtw_client";
  /// Stamp a monotonic send time into TICK/TICK_BATCH frames (v2 trailer)
  /// so the server's span tracer can measure the client_to_server stage.
  /// Only effective when the negotiated protocol version is >= 2; costs
  /// one clock read and 8 wire bytes per frame.
  bool stamp_send_times = true;
};

/// Synchronous, single-threaded client for the springdtw wire protocol.
///
/// All methods must be called from one thread. Requests are blocking;
/// ticks are pipelined (see StreamClientOptions::tick_flush_bytes) so a
/// feeder pays one syscall per ~64 KiB, not per tick. MATCH_EVENT frames
/// can interleave with any response; they are dispatched to the match
/// callback from inside whichever call is reading the connection, in
/// server delivery order.
class StreamClient {
 public:
  using MatchCallback = std::function<void(const MatchEventPayload&)>;

  explicit StreamClient(const StreamClientOptions& options);
  ~StreamClient();

  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  /// Invoked for every MATCH_EVENT (set before SubscribeMatches).
  void SetMatchCallback(MatchCallback callback);

  /// Connects (with retry/backoff) and runs the HELLO handshake.
  util::Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Protocol version negotiated in the HELLO exchange (min of client and
  /// server); 0 before Connect() succeeds.
  uint32_t negotiated_version() const { return negotiated_version_; }

  /// Creates (or finds, by name — OPEN_STREAM is idempotent) a stream.
  util::StatusOr<int64_t> OpenStream(const std::string& name);

  /// Tick count the server reported for the stream in the last successful
  /// OpenStream (v3 servers; -1 otherwise). Nonzero means the stream
  /// already has history — the hook feeders use to resume a partially
  /// ingested series after a server restart instead of re-sending it.
  int64_t last_stream_ticks() const { return last_stream_ticks_; }

  /// Registers a query; returns the server's query id.
  util::StatusOr<int64_t> AddQuery(int64_t stream_id, const std::string& name,
                                   const std::vector<double>& values,
                                   const core::SpringOptions& options);

  /// Retires a query; returns the number of matches the removal flushed.
  util::StatusOr<int64_t> RemoveQuery(int64_t query_id);

  /// With `with_stats` (v2 servers only) each entry additionally carries
  /// the per-query cost columns (cells, last_match_seq, est_cpu_nanos).
  util::StatusOr<std::vector<QueryListPayload::Entry>> ListQueries(
      bool with_stats = false);

  /// Starts MATCH_EVENT fan-out to this connection.
  util::Status SubscribeMatches();

  /// Queues one tick (pipelined; see class comment).
  util::Status Tick(int64_t stream_id, double value);

  /// Queues a run of ticks, split into frames under the frame cap.
  util::Status TickBatch(int64_t stream_id, std::span<const double> values);

  /// Writes out any buffered ticks.
  util::Status Flush();

  /// Barrier: all previously sent ticks applied server-side, and — when
  /// subscribed — every match they caused has been dispatched to the
  /// callback before this returns. Returns total ticks the server applied.
  util::StatusOr<uint64_t> Drain();

  /// Asks the server to checkpoint; returns the serialized byte count.
  util::StatusOr<uint64_t> Checkpoint();

 private:
  util::Status ConnectOnce();
  /// Appends a request frame, flushes, and reads until `response_type`
  /// (dispatching interleaved MATCH_EVENTs); ERROR with our request id
  /// becomes the returned status.
  template <typename Request, typename Response>
  util::Status Call(FrameType request_type, const Request& request,
                    uint64_t request_id, FrameType response_type,
                    Response* response);
  util::Status WriteAll(std::span<const uint8_t> bytes);
  /// Blocking read of one frame (fills from the socket as needed).
  util::Status ReadFrame(Frame* frame);

  /// Send stamp for the v2 tick trailer: now, or 0 when stamping is off or
  /// the session negotiated v1 (the trailer must then stay off the wire).
  uint64_t TickSendStamp() const;

  StreamClientOptions options_;
  MatchCallback match_callback_;
  int fd_ = -1;
  uint32_t negotiated_version_ = 0;
  int64_t last_stream_ticks_ = -1;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> send_buffer_;
  std::vector<uint8_t> recv_buffer_;
};

}  // namespace net
}  // namespace springdtw

#endif  // SPRINGDTW_NET_CLIENT_H_
