#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace springdtw {
namespace net {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(util::Stopwatch::NowNanos());
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

StreamServer::StreamServer(monitor::ShardedMonitor* monitor,
                           const StreamServerOptions& options)
    : monitor_(monitor), options_(options) {
  connections_gauge_ =
      registry_.GetGauge("spring_net_connections", "Open connections");
  bytes_rx_ = registry_.GetCounter("spring_net_bytes_total",
                                   "Bytes moved over the wire",
                                   {{"direction", "rx"}});
  bytes_tx_ = registry_.GetCounter("spring_net_bytes_total",
                                   "Bytes moved over the wire",
                                   {{"direction", "tx"}});
  slow_disconnects_counter_ = registry_.GetCounter(
      "spring_net_slow_disconnects_total",
      "Subscribers dropped for exceeding the output buffer cap");
  protocol_errors_ = registry_.GetCounter(
      "spring_net_protocol_errors_total",
      "Framing/session violations that closed a connection");
  ingest_report_latency_ms_ = registry_.GetHistogram(
      "spring_net_ingest_report_latency_ms",
      "Milliseconds from tick arrival to match fan-out");
  const auto first = static_cast<uint8_t>(FrameType::kHello);
  const auto last = static_cast<uint8_t>(FrameType::kError);
  for (uint8_t t = first; t <= last; ++t) {
    frame_counters_.push_back(registry_.GetCounter(
        "spring_net_frames_total", "Frames received by type",
        {{"type", std::string(FrameTypeName(static_cast<FrameType>(t)))}}));
  }
}

StreamServer::~StreamServer() { Stop(); }

void StreamServer::SetCheckpointFn(CheckpointFn fn) {
  SPRINGDTW_CHECK(!running()) << "SetCheckpointFn before Start()";
  checkpoint_fn_ = std::move(fn);
}

void StreamServer::SetWal(wal::WalWriter* wal) {
  SPRINGDTW_CHECK(!running()) << "SetWal before Start()";
  wal_ = wal;
}

void StreamServer::SetRecoveredMatches(std::vector<RecoveredMatch> matches) {
  SPRINGDTW_CHECK(!running()) << "SetRecoveredMatches before Start()";
  recovered_matches_ = std::move(matches);
}

util::Status StreamServer::Start() {
  if (running()) return util::Status::Ok();
  if (!monitor_->started()) {
    return util::FailedPreconditionError(
        "Start() the monitor before the server");
  }
  if (wal_ != nullptr && !checkpoint_fn_) {
    // Admin mutations must checkpoint so the WAL tail never references
    // topology that exists only in memory.
    return util::FailedPreconditionError(
        "durable ingest (SetWal) requires a checkpoint destination "
        "(SetCheckpointFn)");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::IoError(util::StrFormat("socket: %s", strerror(errno)));
  }
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return util::InvalidArgumentError(
        util::StrFormat("bad bind address '%s'", options_.bind_address.c_str()));
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, 128) != 0 || !SetNonBlocking(listen_fd_)) {
    const util::Status status =
        util::IoError(util::StrFormat("bind/listen: %s", strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    const util::Status status =
        util::IoError(util::StrFormat("getsockname: %s", strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  if (!sink_registered_) {
    // The sink fires on the router thread (= the loop thread while the
    // server runs); after Stop() any embedder-triggered flush hits the
    // subscriber-less path and the matches are simply not fanned out.
    sink_ = std::make_unique<monitor::CallbackSink>(
        [this](const monitor::MatchOrigin& origin, const core::Match& match) {
          OnMatch(origin, match);
        });
    monitor_->AddSink(sink_.get());
    sink_registered_ = true;
  }
  // Sampled-tick spans finalize on the router thread (= loop thread) at the
  // drain barrier, after OnMatch appended this barrier's MATCH_EVENT frames
  // to subscriber buffers — so the stamp covers serialization + fan-out.
  monitor_->SetSpanFinalizer([this](obs::TickSpan* span) {
    span->subscriber_write_nanos = NowNanos();
  });

  // order: release ×2 — pairs with running()'s acquire: a caller that sees
  // running_ == true also sees the bound port and loop state above.
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  const uint64_t now = NowNanos();
  last_checkpoint_nanos_ = now;
  last_publish_nanos_ = 0;
  PublishMetrics(now, /*force=*/true);
  loop_thread_ = std::thread([this] { LoopThread(); });
  return util::Status::Ok();
}

void StreamServer::Stop() {
  if (!running()) return;
  // order: release — pairs with the loop's acquire load of stop_; the loop
  // observes every write made before Stop() was called.
  stop_.store(true, std::memory_order_release);
  if (loop_thread_.joinable()) loop_thread_.join();
  // The join handed the router role back; later embedder drains should not
  // stamp subscriber_write on spans the server never saw.
  monitor_->SetSpanFinalizer(nullptr);
  // order: release — pairs with running()'s acquire; the join above is the
  // real synchronization edge, the flag just reports it.
  running_.store(false, std::memory_order_release);
}

obs::MetricsSnapshot StreamServer::MetricsSnapshot() const {
  util::MutexLock lock(&publish_mu_);
  return published_metrics_;
}

obs::Counter* StreamServer::FrameCounter(FrameType type) {
  const size_t index =
      static_cast<size_t>(type) - static_cast<size_t>(FrameType::kHello);
  return frame_counters_[index];
}

void StreamServer::LoopThread() {
  std::vector<pollfd> fds;
  // order: acquire — pairs with Stop()'s release store; see Stop().
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    pollfd listen_entry{};
    listen_entry.fd = listen_fd_;
    listen_entry.events = POLLIN;
    fds.push_back(listen_entry);
    for (const auto& conn : connections_) {
      pollfd entry{};
      entry.fd = conn->fd;
      entry.events = POLLIN;
      if (conn->out.size() > conn->out_offset) entry.events |= POLLOUT;
      fds.push_back(entry);
    }
    (void)poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(options_.poll_interval_ms));
    const uint64_t now = NowNanos();

    if ((fds[0].revents & POLLIN) != 0) AcceptPending(now);

    // fds[i + 1] maps to connections_[i]; connections accepted this round
    // sit past the pollfd list and simply wait for the next poll.
    const size_t polled = fds.size() - 1;
    for (size_t i = 0; i < polled; ++i) {
      Connection* conn = connections_[i].get();
      const short revents = fds[i + 1].revents;
      if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        if (!ReadAndProcess(conn, now)) {
          CloseConnection(conn);
          continue;
        }
      }
    }

    // Deliver matches caused by this round's ticks before writing, so the
    // fan-out frames ride the same flush.
    DrainIfDirty();

    for (const auto& conn : connections_) {
      if (conn->fd < 0) continue;
      if (!WritePending(conn.get())) CloseConnection(conn.get());
    }

    // Durability duties, after the write pass so "flushed" is current:
    // watermark what subscribers now have, truncate behind a completed
    // checkpoint, and honor the interval fsync policy.
    if (wal_ != nullptr) {
      MaybeLogDeliveryMark();
      MaybeTruncateWal();
      const util::Status synced = wal_->MaybeSync(now);
      if (!synced.ok()) {
        SPRINGDTW_LOG(Error) << "WAL interval sync failed: "
                             << synced.ToString();
      }
    }

    if (options_.idle_timeout_ms > 0) {
      const uint64_t budget =
          static_cast<uint64_t>(options_.idle_timeout_ms * 1e6);
      for (const auto& conn : connections_) {
        if (conn->fd >= 0 && now - conn->last_activity_nanos > budget) {
          CloseConnection(conn.get());
        }
      }
    }

    std::erase_if(connections_,
                  [](const std::unique_ptr<Connection>& c) { return c->fd < 0; });
    connections_gauge_->Set(static_cast<double>(connections_.size()));

    MaybePeriodicCheckpoint(now);
    PublishMetrics(now, /*force=*/false);
    // Keep the metrics timeline and alert state machine advancing through
    // idle stretches (absence rules and firing->resolved transitions need
    // evaluation passes, not traffic). No-op when the timeline is off;
    // throttled to the monitor's publish interval.
    monitor_->PollTimeline();
  }

  for (const auto& conn : connections_) {
    if (conn->fd >= 0) {
      (void)WritePending(conn.get());  // best-effort final flush
      CloseConnection(conn.get());
    }
  }
  connections_.clear();
  connections_gauge_->Set(0.0);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  PublishMetrics(NowNanos(), /*force=*/true);
}

void StreamServer::AcceptPending(uint64_t now_nanos) {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    if (static_cast<int64_t>(connections_.size()) >= options_.max_connections ||
        !SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_nanos = now_nanos;
    connections_.push_back(std::move(conn));
    // order: relaxed — test/diagnostic counter; never synchronization.
    total_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool StreamServer::ReadAndProcess(Connection* conn, uint64_t now_nanos) {
  uint8_t chunk[64 * 1024];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in.insert(conn->in.end(), chunk, chunk + n);
      bytes_rx_->Increment(n);
      conn->last_activity_nanos = now_nanos;
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // hard socket error
  }

  size_t offset = 0;
  bool session_ok = true;
  while (session_ok && !conn->closing) {
    Frame frame;
    size_t consumed = 0;
    const util::Status status =
        CutFrame(std::span<const uint8_t>(conn->in).subspan(offset),
                 options_.max_frame_bytes, &frame, &consumed);
    if (!status.ok()) {
      protocol_errors_->Increment();
      SendError(conn, 0, status, /*fatal=*/true);
      break;
    }
    if (consumed == 0) break;
    offset += consumed;
    session_ok = HandleFrame(conn, frame);
  }
  if (offset > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(offset));
  }
  // A half-closed peer that sent a complete trailing request still gets
  // its response attempt; the write path discovers the close.
  if (peer_closed && conn->in.empty() && conn->out.size() == conn->out_offset) {
    return false;
  }
  if (peer_closed) conn->closing = true;
  return true;
}

bool StreamServer::HandleFrame(Connection* conn, const Frame& frame) {
  const uint8_t raw_type = static_cast<uint8_t>(frame.type);
  if (!KnownFrameType(raw_type)) {
    protocol_errors_->Increment();
    SendError(conn, 0,
              util::InvalidArgumentError(
                  util::StrFormat("unknown frame type %u", raw_type)),
              /*fatal=*/true);
    return false;
  }
  FrameCounter(frame.type)->Increment();

  if (!conn->hello_done && frame.type != FrameType::kHello) {
    protocol_errors_->Increment();
    SendError(conn, 0,
              util::FailedPreconditionError(util::StrFormat(
                  "%s before HELLO",
                  std::string(FrameTypeName(frame.type)).c_str())),
              /*fatal=*/true);
    return false;
  }

  // Decode + dispatch. Decode failures on known types are session-fatal:
  // the peer speaks the right version, so a malformed payload means a
  // broken or hostile peer, not a request worth retrying.
  auto fatal_decode = [&](const util::Status& status) {
    protocol_errors_->Increment();
    SendError(conn, 0, status, /*fatal=*/true);
    return false;
  };

  switch (frame.type) {
    case FrameType::kHello: {
      HelloPayload hello;
      util::Status status = DecodePayload(frame.payload, &hello);
      if (!status.ok()) return fatal_decode(status);
      // Min-negotiation: a v1 client gets a v1 ack and a v1 session (no
      // trailers on either side); clients newer than the server settle on
      // the server's version.
      if (hello.version < kMinProtocolVersion ||
          hello.version > kProtocolVersion) {
        SendError(conn, 0,
                  util::FailedPreconditionError(util::StrFormat(
                      "protocol version %u, server speaks %u..%u",
                      hello.version, kMinProtocolVersion, kProtocolVersion)),
                  /*fatal=*/true);
        return false;
      }
      conn->hello_done = true;
      conn->negotiated_version = std::min(hello.version, kProtocolVersion);
      HelloAckPayload ack;
      ack.version = conn->negotiated_version;
      ack.server_name = options_.server_name;
      Send(conn, FrameType::kHelloAck, ack);
      return true;
    }
    case FrameType::kOpenStream: {
      OpenStreamPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      if (req.name.empty()) {
        SendError(conn, req.request_id,
                  util::InvalidArgumentError("stream name is empty"),
                  /*fatal=*/false);
        return true;
      }
      StreamOpenedPayload resp;
      resp.request_id = req.request_id;
      resp.stream_id = monitor_->FindStream(req.name);
      if (resp.stream_id < 0) {
        resp.stream_id = monitor_->AddStream(req.name);
        // New topology must be on disk before the WAL logs ticks against
        // it. A crash before the checkpoint loses the stream AND this
        // ack, so the client's retry re-creates it: exactly-once admin.
        if (!CheckpointAfterAdmin(conn, req.request_id)) return false;
      }
      // v3 trailer: the stream's durable position, so a resuming producer
      // knows how much of its input the server already holds.
      if (conn->negotiated_version >= 3) {
        resp.ticks = monitor_->stream_ticks(resp.stream_id);
      }
      Send(conn, FrameType::kStreamOpened, resp);
      return true;
    }
    case FrameType::kAddQuery: {
      AddQueryPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      util::StatusOr<core::SpringOptions> options = req.ToSpringOptions();
      if (!options.ok()) {
        SendError(conn, req.request_id, options.status(), /*fatal=*/false);
        return true;
      }
      if (req.stream_id < 0 || req.stream_id >= monitor_->num_streams()) {
        SendError(conn, req.request_id,
                  util::NotFoundError(util::StrFormat(
                      "no stream %lld",
                      static_cast<long long>(req.stream_id))),
                  /*fatal=*/false);
        return true;
      }
      util::StatusOr<int64_t> query_id = monitor_->AddQuery(
          req.stream_id, req.name, req.values, *options);
      if (!query_id.ok()) {
        SendError(conn, req.request_id, query_id.status(), /*fatal=*/false);
        return true;
      }
      if (!CheckpointAfterAdmin(conn, req.request_id)) return false;
      QueryAddedPayload resp;
      resp.request_id = req.request_id;
      resp.query_id = *query_id;
      Send(conn, FrameType::kQueryAdded, resp);
      return true;
    }
    case FrameType::kRemoveQuery: {
      RemoveQueryPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      // Removal drains internally; a flushed candidate fans out to
      // subscribers (including this connection) before the response below.
      util::StatusOr<int64_t> flushed = monitor_->RemoveQuery(req.query_id);
      if (!flushed.ok()) {
        SendError(conn, req.request_id, flushed.status(), /*fatal=*/false);
        return true;
      }
      if (!CheckpointAfterAdmin(conn, req.request_id)) return false;
      QueryRemovedPayload resp;
      resp.request_id = req.request_id;
      resp.query_id = req.query_id;
      resp.flushed_matches = *flushed;
      Send(conn, FrameType::kQueryRemoved, resp);
      return true;
    }
    case FrameType::kListQueries: {
      ListQueriesPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      QueryListPayload resp;
      resp.request_id = req.request_id;
      // Stats ride a barrier: draining first makes the cached cost columns
      // exact as of every tick this loop has routed.
      if (req.want_stats) DrainIfDirty();
      for (const auto& entry : monitor_->ListQueries()) {
        QueryListPayload::Entry out;
        out.query_id = entry.query_id;
        out.stream_id = entry.stream_id;
        out.name = entry.name;
        out.stream_name = entry.stream_name;
        out.ticks = entry.ticks;
        out.matches = entry.matches;
        out.cells = entry.cells;
        out.last_match_seq = entry.last_match_seq;
        out.est_cpu_nanos = entry.est_cpu_nanos;
        resp.entries.push_back(std::move(out));
      }
      resp.has_stats = req.want_stats && conn->negotiated_version >= 2;
      Send(conn, FrameType::kQueryList, resp);
      return true;
    }
    case FrameType::kSubscribeMatches: {
      SubscribeMatchesPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      conn->subscribed = true;
      SubscribedPayload resp;
      resp.request_id = req.request_id;
      Send(conn, FrameType::kSubscribed, resp);
      // Recovery buffer: matches replayed past the pre-crash delivery
      // watermark are re-offered to every new subscriber, right behind
      // the SUBSCRIBED ack so they precede any live match.
      for (const RecoveredMatch& recovered : recovered_matches_) {
        FanOutMatch(recovered.origin, recovered.match, conn);
      }
      return true;
    }
    case FrameType::kTick: {
      TickPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      // Write-ahead: the tick is logged (and, under every_record, synced)
      // before the monitor sees it, so anything that influences delivered
      // output is replayable.
      status = AppendWalTicks(req.stream_id,
                              std::span<const double>(&req.value, 1));
      if (!status.ok()) {
        SendError(conn, 0, status, /*fatal=*/true);
        return false;
      }
      status = monitor_->Push(req.stream_id, req.value, req.send_nanos);
      if (!status.ok()) {
        // Ticks are fire-and-forget; an undeliverable tick would silently
        // desync the peer's view, so it ends the session.
        SendError(conn, 0, status, /*fatal=*/true);
        return false;
      }
      ++ticks_routed_;
      if (!ticks_dirty_) oldest_tick_nanos_ = NowNanos();
      ticks_dirty_ = true;
      return true;
    }
    case FrameType::kTickBatch: {
      TickBatchPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      status = AppendWalTicks(req.stream_id, req.values);
      if (!status.ok()) {
        SendError(conn, 0, status, /*fatal=*/true);
        return false;
      }
      status = monitor_->PushBatch(req.stream_id, req.values,
                                   req.send_nanos);
      if (!status.ok()) {
        SendError(conn, 0, status, /*fatal=*/true);
        return false;
      }
      if (!req.values.empty()) {
        ticks_routed_ += req.values.size();
        if (!ticks_dirty_) oldest_tick_nanos_ = NowNanos();
        ticks_dirty_ = true;
      }
      return true;
    }
    case FrameType::kCheckpoint: {
      CheckpointPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      if (!checkpoint_fn_) {
        SendError(conn, req.request_id,
                  util::FailedPreconditionError(
                      "server runs without a checkpoint destination"),
                  /*fatal=*/false);
        return true;
      }
      util::StatusOr<uint64_t> bytes = RunCheckpoint();
      if (!bytes.ok()) {
        SendError(conn, req.request_id, bytes.status(), /*fatal=*/false);
        return true;
      }
      last_checkpoint_nanos_ = NowNanos();
      CheckpointedPayload resp;
      resp.request_id = req.request_id;
      resp.state_bytes = *bytes;
      Send(conn, FrameType::kCheckpointed, resp);
      return true;
    }
    case FrameType::kDrain: {
      DrainPayload req;
      util::Status status = DecodePayload(frame.payload, &req);
      if (!status.ok()) return fatal_decode(status);
      // Synchronous barrier: match fan-out lands in subscriber buffers
      // before the ack, so on one connection DRAIN_ACK is proof that every
      // match caused by earlier ticks has been delivered.
      DrainIfDirty();
      (void)monitor_->Drain();
      DrainAckPayload resp;
      resp.request_id = req.request_id;
      resp.ticks_applied = ticks_routed_;
      Send(conn, FrameType::kDrainAck, resp);
      return true;
    }
    case FrameType::kHelloAck:
    case FrameType::kStreamOpened:
    case FrameType::kQueryAdded:
    case FrameType::kQueryRemoved:
    case FrameType::kQueryList:
    case FrameType::kSubscribed:
    case FrameType::kMatchEvent:
    case FrameType::kCheckpointed:
    case FrameType::kDrainAck:
    case FrameType::kError: {
      protocol_errors_->Increment();
      SendError(conn, 0,
                util::InvalidArgumentError(util::StrFormat(
                    "server-to-client frame %s from a client",
                    std::string(FrameTypeName(frame.type)).c_str())),
                /*fatal=*/true);
      return false;
    }
  }
  return true;
}

void StreamServer::SendFrame(Connection* conn, FrameType type,
                             std::span<const uint8_t> payload) {
  if (conn->fd < 0 || conn->closing) return;
  AppendFrame(type, payload, &conn->out);
  if (conn->out.size() - conn->out_offset > options_.max_output_buffer_bytes) {
    // Bounded queue, then disconnect: drop the backlog rather than stall
    // ingest for everyone else.
    slow_disconnects_counter_->Increment();
    // order: relaxed — test/diagnostic counter; never synchronization.
    slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
    conn->out.clear();
    conn->out_offset = 0;
    conn->closing = true;
  }
}

void StreamServer::SendError(Connection* conn, uint64_t request_id,
                             const util::Status& status, bool fatal) {
  Send(conn, FrameType::kError, MakeErrorPayload(request_id, status));
  if (fatal) conn->closing = true;
}

void StreamServer::DrainIfDirty() {
  if (!ticks_dirty_) return;
  (void)monitor_->Drain();
  ticks_dirty_ = false;
  oldest_tick_nanos_ = 0;
}

void StreamServer::OnMatch(const monitor::MatchOrigin& origin,
                           const core::Match& match) {
  if (oldest_tick_nanos_ != 0) {
    ingest_report_latency_ms_->Observe(
        static_cast<double>(NowNanos() - oldest_tick_nanos_) / 1e6);
  }
  FanOutMatch(origin, match, /*only=*/nullptr);
  // Candidate for the next delivery mark. Fan-out follows the monitor's
  // (seq, query id) order, so the last match seen is the watermark. The
  // mark is appended only after the sockets flush (MaybeLogDeliveryMark):
  // logging after the write errs toward re-delivery on crash — recoverable
  // by client-side dedup — never toward loss. Flush matches carry no seq
  // and are not markable.
  if (wal_ != nullptr && origin.global_seq >= 0) {
    mark_pending_ = true;
    mark_seq_ = static_cast<uint64_t>(origin.global_seq);
    mark_query_ = origin.query_id;
  }
}

void StreamServer::AppendEncoded(Connection* conn,
                                 std::span<const uint8_t> frame) {
  if (conn->fd < 0 || !conn->subscribed || conn->closing) return;
  conn->out.insert(conn->out.end(), frame.begin(), frame.end());
  if (conn->out.size() - conn->out_offset >
      options_.max_output_buffer_bytes) {
    slow_disconnects_counter_->Increment();
    // order: relaxed — test/diagnostic counter; never synchronization.
    slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
    conn->out.clear();
    conn->out_offset = 0;
    conn->closing = true;
  }
}

void StreamServer::FanOutMatch(const monitor::MatchOrigin& origin,
                               const core::Match& match, Connection* only) {
  MatchEventPayload event;
  event.delivery_seq = delivery_seq_++;
  event.stream_id = origin.stream_id;
  event.query_id = origin.query_id;
  event.stream_name = origin.stream_name;
  event.query_name = origin.query_name;
  event.match = match;
  event.match_seq = origin.global_seq;
  // Encode once per version actually present: v3 peers get the match_seq
  // trailer, older peers a byte-identical-to-v2 frame (built lazily).
  frame_scratch_.clear();
  AppendPayloadFrame(FrameType::kMatchEvent, event, &frame_scratch_);
  legacy_frame_scratch_.clear();
  const auto frame_for = [&](const Connection& conn)
      -> const std::vector<uint8_t>& {
    if (conn.negotiated_version >= 3 || event.match_seq < 0) {
      return frame_scratch_;
    }
    if (legacy_frame_scratch_.empty()) {
      MatchEventPayload legacy = event;
      legacy.match_seq = -1;
      AppendPayloadFrame(FrameType::kMatchEvent, legacy,
                         &legacy_frame_scratch_);
    }
    return legacy_frame_scratch_;
  };
  if (only != nullptr) {
    AppendEncoded(only, frame_for(*only));
    return;
  }
  for (const auto& conn : connections_) {
    if (conn->fd < 0 || !conn->subscribed || conn->closing) continue;
    AppendEncoded(conn.get(), frame_for(*conn));
  }
}

util::Status StreamServer::AppendWalTicks(int64_t stream_id,
                                          std::span<const double> values) {
  if (wal_ == nullptr || values.empty()) return util::Status::Ok();
  // Pre-validate so rejected ticks are never logged; the monitor re-checks
  // and its error (not ours) is what the peer sees for bad ids.
  if (stream_id < 0 || stream_id >= monitor_->num_streams()) {
    return util::Status::Ok();
  }
  const int64_t shard = monitor_->worker_of_stream(stream_id);
  return wal_->AppendTicks(shard, monitor_->next_seq(), stream_id, values);
}

util::StatusOr<uint64_t> StreamServer::RunCheckpoint() {
  if (!checkpoint_fn_) {
    return util::FailedPreconditionError(
        "server runs without a checkpoint destination");
  }
  DrainIfDirty();
  util::StatusOr<uint64_t> bytes = checkpoint_fn_();
  if (bytes.ok() && wal_ != nullptr) {
    // The checkpoint covers every logged tick; the log can restart — but
    // only once subscribers have flushed, so a match sitting in an output
    // buffer keeps its replayability until it is truly on the wire.
    truncate_pending_ = true;
    MaybeTruncateWal();
  }
  return bytes;
}

bool StreamServer::CheckpointAfterAdmin(Connection* conn,
                                        uint64_t request_id) {
  if (wal_ == nullptr) return true;
  const util::StatusOr<uint64_t> bytes = RunCheckpoint();
  if (bytes.ok()) {
    last_checkpoint_nanos_ = NowNanos();
    return true;
  }
  // The mutation is applied in memory but not durable, so the WAL tail
  // would replay against a topology the checkpoint does not hold. No
  // honest ack is possible: kill the session.
  SPRINGDTW_LOG(Error) << "post-admin checkpoint failed: "
                       << bytes.status().ToString();
  SendError(conn, request_id, bytes.status(), /*fatal=*/true);
  return false;
}

bool StreamServer::AllSubscribersFlushed() const {
  for (const auto& conn : connections_) {
    if (conn->fd < 0 || !conn->subscribed) continue;
    if (conn->out.size() > conn->out_offset) return false;
  }
  return true;
}

void StreamServer::MaybeLogDeliveryMark() {
  if (!mark_pending_ || !AllSubscribersFlushed()) return;
  const util::Status status = wal_->AppendDeliveryMark(mark_seq_, mark_query_);
  if (!status.ok()) {
    // Marks only bound re-delivery; keep it pending and retry next round.
    SPRINGDTW_LOG(Error) << "delivery mark append failed: "
                         << status.ToString();
    return;
  }
  mark_pending_ = false;
}

void StreamServer::MaybeTruncateWal() {
  if (!truncate_pending_ || !AllSubscribersFlushed()) return;
  const util::Status status = wal_->Truncate();
  if (!status.ok()) {
    // Stale segments are skipped by sequence at recovery; retrying later
    // is safe.
    SPRINGDTW_LOG(Error) << "WAL truncation failed: " << status.ToString();
    return;
  }
  // The truncation dropped the marks file along with the segments it
  // covered; a pending mark now refers to pre-checkpoint history.
  mark_pending_ = false;
  truncate_pending_ = false;
}

bool StreamServer::WritePending(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        send(conn->fd, conn->out.data() + conn->out_offset,
             conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      bytes_tx_->Increment(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->closing) return false;
  }
  return true;
}

void StreamServer::CloseConnection(Connection* conn) {
  if (conn->fd < 0) return;
  close(conn->fd);
  conn->fd = -1;
  conn->in.clear();
  conn->out.clear();
  conn->out_offset = 0;
}

void StreamServer::PublishMetrics(uint64_t now_nanos, bool force) {
  const uint64_t interval =
      static_cast<uint64_t>(options_.publish_interval_ms * 1e6);
  if (!force && now_nanos - last_publish_nanos_ < interval) return;
  last_publish_nanos_ = now_nanos;
  obs::MetricsSnapshot snapshot = registry_.Snapshot();
  util::MutexLock lock(&publish_mu_);
  published_metrics_ = std::move(snapshot);
}

void StreamServer::MaybePeriodicCheckpoint(uint64_t now_nanos) {
  if (options_.checkpoint_period_ms <= 0 || !checkpoint_fn_) return;
  const uint64_t period =
      static_cast<uint64_t>(options_.checkpoint_period_ms * 1e6);
  if (now_nanos - last_checkpoint_nanos_ < period) return;
  util::StatusOr<uint64_t> bytes = RunCheckpoint();
  if (!bytes.ok()) {
    SPRINGDTW_LOG(Error) << "periodic checkpoint failed: "
                         << bytes.status().ToString();
  }
  last_checkpoint_nanos_ = now_nanos;
}

}  // namespace net
}  // namespace springdtw
