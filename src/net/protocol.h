#ifndef SPRINGDTW_NET_PROTOCOL_H_
#define SPRINGDTW_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "util/codec.h"
#include "util/status.h"

namespace springdtw {
namespace net {

/// # springdtw wire protocol
///
/// A dependency-free length-prefixed binary protocol for feeding ticks into
/// a running `ShardedMonitor` and administering its streams/queries over a
/// TCP connection. Framing:
///
///     u32 length | u8 type | payload (length - 1 bytes)
///
/// `length` counts the type byte plus the payload (so `length >= 1`), is
/// little-endian like everything `util::ByteWriter` emits, and is rejected
/// when it exceeds the peer's frame cap *before* any allocation — the same
/// hostile-input discipline as the snapshot codec. Payloads are encoded
/// with `util::ByteWriter` and decoded with `util::ByteReader`; a decode
/// succeeds only when every field parses (`ok()`) and the payload is fully
/// consumed (`AtEnd()`), so trailing garbage is an error rather than a
/// forward-compatibility mechanism. Version negotiation is explicit: the
/// client opens with HELLO carrying `kProtocolVersion`, the server answers
/// HELLO_ACK carrying `min(client version, server version)` when the
/// client's version falls inside [kMinProtocolVersion, kProtocolVersion]
/// and ERROR (kFailedPrecondition) otherwise. Both sides then speak the
/// acked version for the rest of the session. Version-gated fields are
/// *trailers*: optional suffixes a peer appends only when the negotiated
/// version permits AND the field is meaningful (a v2 TICK without a send
/// timestamp is byte-identical to a v1 TICK), so a v1 session never sees
/// bytes it cannot parse and the AtEnd() discipline still rejects garbage.
///
/// Requests that mutate or query server state carry a client-chosen
/// `request_id` echoed in the response so a pipelining client can correlate
/// replies. MATCH_EVENT frames are unsolicited (subscription-driven) and
/// may interleave between a request and its response.
///
/// Version history:
///  * v1 — initial protocol.
///  * v2 — TICK / TICK_BATCH gain an optional `send_nanos` trailer (client
///    monotonic send timestamp feeding the end-to-end span tracer);
///    LIST_QUERIES gains a `want_stats` trailer and QUERY_LIST a per-entry
///    cost-stats trailer (cells, last_match_seq, est_cpu_nanos).
///  * v3 — MATCH_EVENT gains an optional `match_seq` trailer (the global
///    tick sequence that produced the match, the durability layer's dedup
///    key); STREAM_OPENED gains an optional `ticks` trailer (the server's
///    durable per-stream position, letting a producer resume after a crash
///    without double-feeding). See docs/DURABILITY.md.
inline constexpr uint32_t kProtocolVersion = 3;

/// Oldest client version the server still accepts.
inline constexpr uint32_t kMinProtocolVersion = 1;

/// Default cap on the frame `length` field, applied by both server and
/// client. One frame must fit a TICK_BATCH or a query template, not a whole
/// stream; 1 MiB is ~128k doubles.
inline constexpr uint64_t kDefaultMaxFrameBytes = uint64_t{1} << 20;

/// Bytes of framing overhead preceding each payload (u32 length + u8 type).
inline constexpr size_t kFrameHeaderBytes = 5;

enum class FrameType : uint8_t {
  // Session setup.
  kHello = 1,        // client -> server: version check
  kHelloAck = 2,     // server -> client
  // Stream / query admin.
  kOpenStream = 3,    // client -> server: create or look up a named stream
  kStreamOpened = 4,  // server -> client: stream id
  kAddQuery = 5,      // client -> server: register a query template
  kQueryAdded = 6,    // server -> client: query id
  kRemoveQuery = 7,   // client -> server: retire a query
  kQueryRemoved = 8,  // server -> client: count of flushed matches
  kListQueries = 9,   // client -> server
  kQueryList = 10,    // server -> client
  // Match delivery.
  kSubscribeMatches = 11,  // client -> server: start match fan-out
  kSubscribed = 12,        // server -> client
  kMatchEvent = 13,        // server -> subscriber, unsolicited
  // Data plane.
  kTick = 14,       // client -> server: one value on one stream
  kTickBatch = 15,  // client -> server: contiguous values on one stream
  // Lifecycle.
  kCheckpoint = 16,    // client -> server: snapshot state to disk now
  kCheckpointed = 17,  // server -> client
  kDrain = 18,         // client -> server: barrier; all prior ticks applied
  kDrainAck = 19,      // server -> client: all prior matches delivered
  kError = 20,         // server -> client: failed request or fatal session
};

/// True for type bytes this build knows how to decode.
bool KnownFrameType(uint8_t type);

/// Stable display name ("HELLO", "TICK", ...); "UNKNOWN" for alien bytes.
std::string_view FrameTypeName(FrameType type);

/// One decoded frame: the type byte plus its raw payload.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// Appends `u32 length | u8 type | payload` to `*out`.
void AppendFrame(FrameType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out);

/// Tries to cut one frame off the front of `buffer`.
///
///  * OK and `*consumed > 0`: one frame extracted into `*frame`.
///  * OK and `*consumed == 0`: the buffer holds a partial frame — read more.
///  * error: framing violation (zero length or `length > max_frame_bytes`);
///    the connection is unrecoverable and must be closed. The length cap is
///    enforced from the 4 header bytes alone, before the payload arrives,
///    so an attacker cannot make the receiver buffer an oversized frame.
util::Status CutFrame(std::span<const uint8_t> buffer,
                      uint64_t max_frame_bytes, Frame* frame,
                      size_t* consumed);

// ---------------------------------------------------------------------------
// Typed payloads. Every payload implements
//   void EncodeTo(util::ByteWriter*) const
//   util::Status DecodeFrom(util::ByteReader*)
// where DecodeFrom reads its fields and reports kInvalidArgument on
// truncation; use DecodePayload() to also reject trailing bytes.
// ---------------------------------------------------------------------------

struct HelloPayload {
  uint32_t version = kProtocolVersion;
  /// Free-form peer identification for logs ("springdtw_feed", ...).
  std::string peer_name;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct HelloAckPayload {
  uint32_t version = kProtocolVersion;
  std::string server_name;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct OpenStreamPayload {
  uint64_t request_id = 0;
  std::string name;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct StreamOpenedPayload {
  uint64_t request_id = 0;
  int64_t stream_id = 0;
  /// v3 trailer: values the server has already accepted for this stream
  /// (its durable position after checkpoint restore + WAL replay); -1 =
  /// absent. Encoded only when >= 0; a resuming producer skips this many
  /// leading values (springdtw_feed --resume).
  int64_t ticks = -1;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct AddQueryPayload {
  uint64_t request_id = 0;
  int64_t stream_id = 0;
  std::string name;
  std::vector<double> values;
  double epsilon = 0.0;
  /// dtw::LocalDistance as its enum value (0 squared, 1 absolute).
  uint8_t local_distance = 0;
  int64_t max_match_length = 0;
  int64_t min_match_length = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);

  /// Validates the option fields (finite epsilon >= 0, known local
  /// distance, non-negative lengths, non-empty finite template).
  util::StatusOr<core::SpringOptions> ToSpringOptions() const;
};

struct QueryAddedPayload {
  uint64_t request_id = 0;
  int64_t query_id = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct RemoveQueryPayload {
  uint64_t request_id = 0;
  int64_t query_id = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct QueryRemovedPayload {
  uint64_t request_id = 0;
  int64_t query_id = 0;
  /// Matches flushed by the removal (0 or 1 under the Problem-2 rule).
  int64_t flushed_matches = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct ListQueriesPayload {
  uint64_t request_id = 0;
  /// v2 trailer: ask the server to append per-query cost stats to the
  /// QUERY_LIST reply. Encoded only when true, so the false case stays
  /// byte-identical to v1.
  bool want_stats = false;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct QueryListPayload {
  struct Entry {
    int64_t query_id = 0;
    int64_t stream_id = 0;
    std::string name;
    std::string stream_name;
    int64_t ticks = 0;
    int64_t matches = 0;
    // v2 stats trailer (meaningful only when the payload's has_stats is
    // set): STWM cells computed, global sequence of the last delivered
    // match (-1 = none yet), and sampled per-query CPU estimate.
    int64_t cells = 0;
    int64_t last_match_seq = -1;
    int64_t est_cpu_nanos = 0;
  };

  uint64_t request_id = 0;
  std::vector<Entry> entries;
  /// v2: true when the per-entry stats trailer is present. The trailer is
  /// appended *after* all base entry rows, so a v1 decoder that stops at
  /// the base rows would see trailing bytes — but v1 peers never set
  /// want_stats, so they never receive it.
  bool has_stats = false;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct SubscribeMatchesPayload {
  uint64_t request_id = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct SubscribedPayload {
  uint64_t request_id = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct MatchEventPayload {
  /// Server-side delivery sequence, monotonic per subscriber session and
  /// following the engine's deterministic (seq, query id) order.
  uint64_t delivery_seq = 0;
  int64_t stream_id = 0;
  int64_t query_id = 0;
  std::string stream_name;
  std::string query_name;
  core::Match match;
  /// v3 trailer: global sequence of the tick that produced the match
  /// (monitor::MatchOrigin::global_seq); -1 = absent (flush matches, or a
  /// pre-v3 server). Encoded only when >= 0. Stable across a server
  /// restart — the exactly-once dedup key, paired with query_id.
  int64_t match_seq = -1;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct TickPayload {
  int64_t stream_id = 0;
  double value = 0.0;
  /// v2 trailer: client monotonic send timestamp (util::Stopwatch::
  /// NowNanos() domain) for end-to-end span tracing; 0 = absent. Encoded
  /// only when nonzero, so an unstamped v2 TICK is byte-identical to v1.
  uint64_t send_nanos = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct TickBatchPayload {
  int64_t stream_id = 0;
  std::vector<double> values;
  /// v2 trailer: send timestamp of the batch (see TickPayload::send_nanos).
  uint64_t send_nanos = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct CheckpointPayload {
  uint64_t request_id = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct CheckpointedPayload {
  uint64_t request_id = 0;
  uint64_t state_bytes = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct DrainPayload {
  uint64_t request_id = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct DrainAckPayload {
  uint64_t request_id = 0;
  /// Ticks the monitor has fully applied across all streams.
  uint64_t ticks_applied = 0;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);
};

struct ErrorPayload {
  /// Echoes the failing request, 0 for session-fatal errors (bad HELLO,
  /// framing violations detected above the framing layer).
  uint64_t request_id = 0;
  /// util::StatusCode as its enum value.
  uint8_t code = 0;
  std::string message;

  void EncodeTo(util::ByteWriter* writer) const;
  util::Status DecodeFrom(util::ByteReader* reader);

  /// The payload as a util::Status (unknown codes map to kInternal).
  util::Status ToStatus() const;
};

/// ErrorPayload for a failed request.
ErrorPayload MakeErrorPayload(uint64_t request_id, const util::Status& status);

/// Encodes `payload` and appends a full frame of `type` to `*out`.
template <typename Payload>
void AppendPayloadFrame(FrameType type, const Payload& payload,
                        std::vector<uint8_t>* out) {
  util::ByteWriter writer;
  payload.EncodeTo(&writer);
  AppendFrame(type, writer.buffer(), out);
}

/// Decodes `payload` into `*out`, rejecting truncated input and trailing
/// bytes. This is the only sanctioned way to decode a received payload.
template <typename Payload>
util::Status DecodePayload(std::span<const uint8_t> payload, Payload* out) {
  util::ByteReader reader(payload);
  SPRINGDTW_RETURN_IF_ERROR(out->DecodeFrom(&reader));
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("frame payload has trailing bytes");
  }
  return util::Status::Ok();
}

}  // namespace net
}  // namespace springdtw

#endif  // SPRINGDTW_NET_PROTOCOL_H_
