#include "net/protocol.h"

#include <cmath>
#include <cstring>

#include "dtw/local_distance.h"
#include "util/string_util.h"

namespace springdtw {
namespace net {

namespace {

// Shared tail of every DecodeFrom: all fields parsed?
util::Status CheckDecode(const util::ByteReader& reader, const char* what) {
  if (!reader.ok()) {
    return util::InvalidArgumentError(
        util::StrFormat("truncated %s payload", what));
  }
  return util::Status::Ok();
}

}  // namespace

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kError);
}

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kOpenStream: return "OPEN_STREAM";
    case FrameType::kStreamOpened: return "STREAM_OPENED";
    case FrameType::kAddQuery: return "ADD_QUERY";
    case FrameType::kQueryAdded: return "QUERY_ADDED";
    case FrameType::kRemoveQuery: return "REMOVE_QUERY";
    case FrameType::kQueryRemoved: return "QUERY_REMOVED";
    case FrameType::kListQueries: return "LIST_QUERIES";
    case FrameType::kQueryList: return "QUERY_LIST";
    case FrameType::kSubscribeMatches: return "SUBSCRIBE_MATCHES";
    case FrameType::kSubscribed: return "SUBSCRIBED";
    case FrameType::kMatchEvent: return "MATCH_EVENT";
    case FrameType::kTick: return "TICK";
    case FrameType::kTickBatch: return "TICK_BATCH";
    case FrameType::kCheckpoint: return "CHECKPOINT";
    case FrameType::kCheckpointed: return "CHECKPOINTED";
    case FrameType::kDrain: return "DRAIN";
    case FrameType::kDrainAck: return "DRAIN_ACK";
    case FrameType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

void AppendFrame(FrameType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out) {
  const uint32_t length = static_cast<uint32_t>(payload.size() + 1);
  const size_t base = out->size();
  out->resize(base + kFrameHeaderBytes + payload.size());
  std::memcpy(out->data() + base, &length, sizeof(length));
  (*out)[base + 4] = static_cast<uint8_t>(type);
  if (!payload.empty()) {
    std::memcpy(out->data() + base + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
}

util::Status CutFrame(std::span<const uint8_t> buffer,
                      uint64_t max_frame_bytes, Frame* frame,
                      size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < 4) return util::Status::Ok();
  uint32_t length = 0;
  std::memcpy(&length, buffer.data(), sizeof(length));
  if (length == 0) {
    return util::InvalidArgumentError("zero-length frame");
  }
  if (length > max_frame_bytes) {
    return util::InvalidArgumentError(util::StrFormat(
        "frame of %u bytes exceeds the %llu-byte cap", length,
        static_cast<unsigned long long>(max_frame_bytes)));
  }
  if (buffer.size() < size_t{4} + length) return util::Status::Ok();
  frame->type = static_cast<FrameType>(buffer[4]);
  frame->payload.assign(buffer.begin() + 5, buffer.begin() + 4 + length);
  *consumed = size_t{4} + length;
  return util::Status::Ok();
}

void HelloPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU32(version);
  writer->WriteString(peer_name);
}

util::Status HelloPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU32(&version);
  reader->ReadString(&peer_name);
  return CheckDecode(*reader, "HELLO");
}

void HelloAckPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU32(version);
  writer->WriteString(server_name);
}

util::Status HelloAckPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU32(&version);
  reader->ReadString(&server_name);
  return CheckDecode(*reader, "HELLO_ACK");
}

void OpenStreamPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteString(name);
}

util::Status OpenStreamPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadString(&name);
  return CheckDecode(*reader, "OPEN_STREAM");
}

void StreamOpenedPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteI64(stream_id);
  // v3 trailer, omitted when unknown so the frame stays v1-identical.
  if (ticks >= 0) writer->WriteI64(ticks);
}

util::Status StreamOpenedPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadI64(&stream_id);
  ticks = -1;
  if (reader->ok() && !reader->AtEnd()) reader->ReadI64(&ticks);
  return CheckDecode(*reader, "STREAM_OPENED");
}

void AddQueryPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteI64(stream_id);
  writer->WriteString(name);
  writer->WriteDoubleVector(values);
  writer->WriteDouble(epsilon);
  writer->WriteU8(local_distance);
  writer->WriteI64(max_match_length);
  writer->WriteI64(min_match_length);
}

util::Status AddQueryPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadI64(&stream_id);
  reader->ReadString(&name);
  reader->ReadDoubleVector(&values);
  reader->ReadDouble(&epsilon);
  reader->ReadU8(&local_distance);
  reader->ReadI64(&max_match_length);
  reader->ReadI64(&min_match_length);
  return CheckDecode(*reader, "ADD_QUERY");
}

util::StatusOr<core::SpringOptions> AddQueryPayload::ToSpringOptions() const {
  if (values.empty()) {
    return util::InvalidArgumentError("query template is empty");
  }
  for (const double v : values) {
    if (!std::isfinite(v)) {
      return util::InvalidArgumentError("query template has non-finite value");
    }
  }
  if (std::isnan(epsilon) || epsilon < 0.0) {
    return util::InvalidArgumentError("epsilon must be >= 0");
  }
  if (local_distance > static_cast<uint8_t>(dtw::LocalDistance::kAbsolute)) {
    return util::InvalidArgumentError(
        util::StrFormat("unknown local distance %u", local_distance));
  }
  if (max_match_length < 0 || min_match_length < 0) {
    return util::InvalidArgumentError("match length bounds must be >= 0");
  }
  core::SpringOptions options;
  options.epsilon = epsilon;
  options.local_distance = static_cast<dtw::LocalDistance>(local_distance);
  options.max_match_length = max_match_length;
  options.min_match_length = min_match_length;
  return options;
}

void QueryAddedPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteI64(query_id);
}

util::Status QueryAddedPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadI64(&query_id);
  return CheckDecode(*reader, "QUERY_ADDED");
}

void RemoveQueryPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteI64(query_id);
}

util::Status RemoveQueryPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadI64(&query_id);
  return CheckDecode(*reader, "REMOVE_QUERY");
}

void QueryRemovedPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteI64(query_id);
  writer->WriteI64(flushed_matches);
}

util::Status QueryRemovedPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadI64(&query_id);
  reader->ReadI64(&flushed_matches);
  return CheckDecode(*reader, "QUERY_REMOVED");
}

void ListQueriesPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  // v2 trailer, omitted when false so the frame stays v1-identical.
  if (want_stats) writer->WriteBool(want_stats);
}

util::Status ListQueriesPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  want_stats = false;
  if (reader->ok() && !reader->AtEnd()) reader->ReadBool(&want_stats);
  return CheckDecode(*reader, "LIST_QUERIES");
}

void QueryListPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteU64(static_cast<uint64_t>(entries.size()));
  for (const Entry& entry : entries) {
    writer->WriteI64(entry.query_id);
    writer->WriteI64(entry.stream_id);
    writer->WriteString(entry.name);
    writer->WriteString(entry.stream_name);
    writer->WriteI64(entry.ticks);
    writer->WriteI64(entry.matches);
  }
  // v2 stats trailer: one row per entry, appended after all base rows so a
  // stats-free reply remains byte-identical to v1.
  if (has_stats) {
    for (const Entry& entry : entries) {
      writer->WriteI64(entry.cells);
      writer->WriteI64(entry.last_match_seq);
      writer->WriteI64(entry.est_cpu_nanos);
    }
  }
}

util::Status QueryListPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  uint64_t count = 0;
  reader->ReadU64(&count);
  // No reserve: the count is hostile until proven by actual bytes. Each
  // entry is at least 48 bytes, so a bogus count fails fast on truncation.
  entries.clear();
  for (uint64_t i = 0; i < count && reader->ok(); ++i) {
    Entry entry;
    reader->ReadI64(&entry.query_id);
    reader->ReadI64(&entry.stream_id);
    reader->ReadString(&entry.name);
    reader->ReadString(&entry.stream_name);
    reader->ReadI64(&entry.ticks);
    reader->ReadI64(&entry.matches);
    if (reader->ok()) entries.push_back(std::move(entry));
  }
  has_stats = false;
  if (reader->ok() && !reader->AtEnd()) {
    has_stats = true;
    for (Entry& entry : entries) {
      reader->ReadI64(&entry.cells);
      reader->ReadI64(&entry.last_match_seq);
      reader->ReadI64(&entry.est_cpu_nanos);
      if (!reader->ok()) break;
    }
  }
  return CheckDecode(*reader, "QUERY_LIST");
}

void SubscribeMatchesPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
}

util::Status SubscribeMatchesPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  return CheckDecode(*reader, "SUBSCRIBE_MATCHES");
}

void SubscribedPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
}

util::Status SubscribedPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  return CheckDecode(*reader, "SUBSCRIBED");
}

void MatchEventPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(delivery_seq);
  writer->WriteI64(stream_id);
  writer->WriteI64(query_id);
  writer->WriteString(stream_name);
  writer->WriteString(query_name);
  writer->WriteI64(match.start);
  writer->WriteI64(match.end);
  writer->WriteDouble(match.distance);
  writer->WriteI64(match.report_time);
  writer->WriteI64(match.group_start);
  writer->WriteI64(match.group_end);
  // v3 trailer, omitted for seq-less matches so the frame stays
  // v1-identical.
  if (match_seq >= 0) writer->WriteI64(match_seq);
}

util::Status MatchEventPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&delivery_seq);
  reader->ReadI64(&stream_id);
  reader->ReadI64(&query_id);
  reader->ReadString(&stream_name);
  reader->ReadString(&query_name);
  reader->ReadI64(&match.start);
  reader->ReadI64(&match.end);
  reader->ReadDouble(&match.distance);
  reader->ReadI64(&match.report_time);
  reader->ReadI64(&match.group_start);
  reader->ReadI64(&match.group_end);
  match_seq = -1;
  if (reader->ok() && !reader->AtEnd()) reader->ReadI64(&match_seq);
  return CheckDecode(*reader, "MATCH_EVENT");
}

void TickPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteI64(stream_id);
  writer->WriteDouble(value);
  // v2 trailer, omitted when unstamped so the frame stays v1-identical.
  if (send_nanos != 0) writer->WriteU64(send_nanos);
}

util::Status TickPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadI64(&stream_id);
  reader->ReadDouble(&value);
  send_nanos = 0;
  if (reader->ok() && !reader->AtEnd()) reader->ReadU64(&send_nanos);
  return CheckDecode(*reader, "TICK");
}

void TickBatchPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteI64(stream_id);
  writer->WriteDoubleVector(values);
  if (send_nanos != 0) writer->WriteU64(send_nanos);
}

util::Status TickBatchPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadI64(&stream_id);
  reader->ReadDoubleVector(&values);
  send_nanos = 0;
  if (reader->ok() && !reader->AtEnd()) reader->ReadU64(&send_nanos);
  return CheckDecode(*reader, "TICK_BATCH");
}

void CheckpointPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
}

util::Status CheckpointPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  return CheckDecode(*reader, "CHECKPOINT");
}

void CheckpointedPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteU64(state_bytes);
}

util::Status CheckpointedPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadU64(&state_bytes);
  return CheckDecode(*reader, "CHECKPOINTED");
}

void DrainPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
}

util::Status DrainPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  return CheckDecode(*reader, "DRAIN");
}

void DrainAckPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteU64(ticks_applied);
}

util::Status DrainAckPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadU64(&ticks_applied);
  return CheckDecode(*reader, "DRAIN_ACK");
}

void ErrorPayload::EncodeTo(util::ByteWriter* writer) const {
  writer->WriteU64(request_id);
  writer->WriteU8(code);
  writer->WriteString(message);
}

util::Status ErrorPayload::DecodeFrom(util::ByteReader* reader) {
  reader->ReadU64(&request_id);
  reader->ReadU8(&code);
  reader->ReadString(&message);
  return CheckDecode(*reader, "ERROR");
}

util::Status ErrorPayload::ToStatus() const {
  util::StatusCode status_code = util::StatusCode::kInternal;
  if (code >= static_cast<uint8_t>(util::StatusCode::kInvalidArgument) &&
      code <= static_cast<uint8_t>(util::StatusCode::kIoError)) {
    status_code = static_cast<util::StatusCode>(code);
  }
  return util::Status(status_code, message);
}

ErrorPayload MakeErrorPayload(uint64_t request_id,
                              const util::Status& status) {
  ErrorPayload payload;
  payload.request_id = request_id;
  payload.code = static_cast<uint8_t>(status.code());
  payload.message = status.message();
  return payload;
}

}  // namespace net
}  // namespace springdtw
