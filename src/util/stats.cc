#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace springdtw {
namespace util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

void RunningStats::Reset() { *this = RunningStats(); }

void RunningStats::SerializeTo(ByteWriter* writer) const {
  writer->WriteI64(count_);
  writer->WriteDouble(mean_);
  writer->WriteDouble(m2_);
  writer->WriteDouble(min_);
  writer->WriteDouble(max_);
}

bool RunningStats::DeserializeFrom(ByteReader* reader) {
  return reader->ReadI64(&count_) && reader->ReadDouble(&mean_) &&
         reader->ReadDouble(&m2_) && reader->ReadDouble(&min_) &&
         reader->ReadDouble(&max_) && count_ >= 0;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void QuantileSketch::Reset() {
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_ = false;
}

double QuantileSketch::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

void LogHistogram::Add(double value) {
  ++count_;
  max_seen_ = std::max(max_seen_, value);
  int bucket = 0;
  if (value >= 1.0) {
    bucket = static_cast<int>(std::floor(std::log2(value))) + 1;
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  ++buckets_[static_cast<size_t>(bucket)];
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[static_cast<size_t>(b)] +=
        other.buckets_[static_cast<size_t>(b)];
  }
  count_ += other.count_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void LogHistogram::SerializeTo(ByteWriter* writer) const {
  writer->WriteI64(count_);
  writer->WriteDouble(max_seen_);
  writer->WriteInt64Vector(buckets_);
}

bool LogHistogram::DeserializeFrom(ByteReader* reader) {
  int64_t count = 0;
  double max_seen = 0.0;
  std::vector<int64_t> buckets;
  if (!reader->ReadI64(&count) || !reader->ReadDouble(&max_seen) ||
      !reader->ReadInt64Vector(&buckets)) {
    return false;
  }
  if (count < 0 || buckets.size() != static_cast<size_t>(kNumBuckets)) {
    return false;
  }
  int64_t total = 0;
  for (const int64_t b : buckets) {
    if (b < 0) return false;
    total += b;
  }
  if (total != count) return false;
  count_ = count;
  max_seen_ = max_seen;
  buckets_ = std::move(buckets);
  return true;
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<int64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[static_cast<size_t>(b)];
    if (seen > target) {
      // Upper edge of bucket b: 2^(b-1) for b >= 1, else 1.
      return b == 0 ? 1.0 : std::ldexp(1.0, b);
    }
  }
  return max_seen_;
}

std::string LogHistogram::Summary() const {
  return StrFormat("count=%lld p50=%.0f p90=%.0f p99=%.0f max=%.0f",
                   static_cast<long long>(count_), Quantile(0.5),
                   Quantile(0.9), Quantile(0.99), max_seen_);
}

}  // namespace util
}  // namespace springdtw
