#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace springdtw {
namespace util {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (uint64_t& s : state_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SPRINGDTW_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SPRINGDTW_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller; u must be in (0, 1] so log() is finite.
  double u = 1.0 - NextDouble();
  double v = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u));
  spare_gaussian_ = r * std::sin(kTwoPi * v);
  has_spare_gaussian_ = true;
  return r * std::cos(kTwoPi * v);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork(uint64_t stream_id) const {
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL + stream_id));
  return Rng(sm.Next());
}

void Shuffle(Rng& rng, std::vector<int64_t>& values) {
  for (int64_t i = static_cast<int64_t>(values.size()) - 1; i > 0; --i) {
    const int64_t j = rng.UniformInt(0, i);
    std::swap(values[static_cast<size_t>(i)], values[static_cast<size_t>(j)]);
  }
}

}  // namespace util
}  // namespace springdtw
