#include "util/stopwatch.h"

// Stopwatch is header-only; this translation unit exists so the target has a
// stable archive member and the header gets compiled standalone at least once.
namespace springdtw {
namespace util {
namespace {
// Ensures the header is self-contained.
[[maybe_unused]] Stopwatch MakeStopwatchForOdrCheck() { return Stopwatch(); }
}  // namespace
}  // namespace util
}  // namespace springdtw
