#ifndef SPRINGDTW_UTIL_THREAD_ANNOTATIONS_H_
#define SPRINGDTW_UTIL_THREAD_ANNOTATIONS_H_

/// Portable macros over Clang Thread Safety Analysis (TSA). Under clang
/// they expand to the `capability`-family attributes so `-Wthread-safety`
/// can prove lock discipline at compile time; under every other compiler
/// they expand to nothing, so annotated code stays buildable everywhere.
///
/// Conventions (docs/CORRECTNESS.md "Static analysis"):
///  * Every mutex-guarded member carries SPRINGDTW_GUARDED_BY(mu).
///  * Functions that must be called with a lock held carry
///    SPRINGDTW_REQUIRES(mu); lock-taking/releasing functions carry
///    SPRINGDTW_ACQUIRE / SPRINGDTW_RELEASE.
///  * Mutexes that intentionally guard no data (e.g. the SPSC ring's
///    park-only mutexes) carry a `springdtw-lint: allow(thread-annotation)`
///    comment instead — the lint rule keeps the set of such exceptions
///    explicit and reviewed.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SPRINGDTW_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef SPRINGDTW_THREAD_ANNOTATION__
#define SPRINGDTW_THREAD_ANNOTATION__(x)
#endif

/// Marks a class as a lockable capability, e.g.
/// `class SPRINGDTW_CAPABILITY("mutex") Mutex { ... };`
#define SPRINGDTW_CAPABILITY(x) SPRINGDTW_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SPRINGDTW_SCOPED_CAPABILITY \
  SPRINGDTW_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define SPRINGDTW_GUARDED_BY(x) SPRINGDTW_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected by
/// the given capability (the pointer itself is not).
#define SPRINGDTW_PT_GUARDED_BY(x) \
  SPRINGDTW_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The annotated function must be called with the listed capabilities held.
#define SPRINGDTW_REQUIRES(...) \
  SPRINGDTW_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities (or `this` when
/// the list is empty) and holds them on return.
#define SPRINGDTW_ACQUIRE(...) \
  SPRINGDTW_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities.
#define SPRINGDTW_RELEASE(...) \
  SPRINGDTW_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire and returns `ret` on success.
#define SPRINGDTW_TRY_ACQUIRE(ret, ...) \
  SPRINGDTW_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/// The annotated function must NOT be called with the listed capabilities
/// held (deadlock prevention for self-locking entry points).
#define SPRINGDTW_EXCLUDES(...) \
  SPRINGDTW_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the given capability.
#define SPRINGDTW_RETURN_CAPABILITY(x) \
  SPRINGDTW_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables analysis for one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define SPRINGDTW_NO_THREAD_SAFETY_ANALYSIS \
  SPRINGDTW_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SPRINGDTW_UTIL_THREAD_ANNOTATIONS_H_
