#ifndef SPRINGDTW_UTIL_STRING_UTIL_H_
#define SPRINGDTW_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace springdtw {
namespace util {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` at every occurrence of `sep`. Adjacent separators yield
/// empty fields; an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a double; returns false on malformed or trailing-garbage input.
/// "nan" (any case) parses to a quiet NaN, which the ts layer uses for
/// missing values.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Renders a byte count with a binary suffix, e.g. "2.0 KiB", "1.5 GiB".
std::string HumanBytes(double bytes);

/// Returns true if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_STRING_UTIL_H_
