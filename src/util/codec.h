#ifndef SPRINGDTW_UTIL_CODEC_H_
#define SPRINGDTW_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace springdtw {
namespace util {

/// Appends fixed-width little-endian primitives (plus LEB128 varints and
/// length-prefixed frames) to a byte buffer. Used for matcher state
/// snapshots (fault-tolerant stream processing) and the binary series
/// format. Not a general-purpose wire format: no schema evolution beyond an
/// explicit version field written by callers.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t value) { buffer_.push_back(value); }
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value) { WriteU64(static_cast<uint64_t>(value)); }
  /// Unsigned LEB128: 1-10 bytes, small values encode small.
  void WriteVarU64(uint64_t value);
  /// Doubles are written as their IEEE-754 bit pattern; NaN and infinities
  /// round-trip exactly.
  void WriteDouble(double value);
  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }
  /// Length-prefixed (u64) raw bytes; the framing primitive used to nest
  /// one snapshot inside another (e.g. matcher states inside an engine
  /// checkpoint).
  void WriteBytes(std::span<const uint8_t> bytes);
  /// Length-prefixed (u64) string.
  void WriteString(const std::string& value);
  /// Length-prefixed (u64) vector of doubles.
  void WriteDoubleVector(const std::vector<double>& values);
  /// Length-prefixed (u64) vector of i64.
  void WriteInt64Vector(const std::vector<int64_t>& values);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads back what ByteWriter wrote. Every Read* returns false on
/// truncation or a corrupt length prefix (and from then on, `ok()` is
/// false); values read after a failure are zero-initialized / emptied.
/// All length prefixes are validated against the bytes actually remaining
/// before any allocation, so a hostile input cannot trigger an oversized
/// resize. Callers typically read everything and check `ok()` once, plus
/// `AtEnd()` for trailing garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* value);
  bool ReadU32(uint32_t* value);
  bool ReadU64(uint64_t* value);
  bool ReadI64(int64_t* value);
  /// Unsigned LEB128; fails on truncation, on encodings longer than 10
  /// bytes, and on a final byte that overflows 64 bits.
  bool ReadVarU64(uint64_t* value);
  bool ReadDouble(double* value);
  bool ReadBool(bool* value);
  bool ReadString(std::string* value);
  bool ReadDoubleVector(std::vector<double>* values);
  bool ReadInt64Vector(std::vector<int64_t>* values);
  /// Length-prefixed frame written by WriteBytes, copied out.
  bool ReadBytes(std::vector<uint8_t>* bytes);
  /// Length-prefixed frame as a zero-copy view into the input. The view is
  /// only valid while the underlying buffer lives.
  bool ReadBytesSpan(std::span<const uint8_t>* bytes);

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t position() const { return position_; }
  /// Bytes not yet consumed.
  size_t remaining() const { return bytes_.size() - position_; }

 private:
  bool Take(size_t n, const uint8_t** out);
  /// Reads a u64 length prefix and fails unless `size * elem_size` bytes
  /// are still available.
  bool ReadLengthPrefix(size_t elem_size, size_t* size);

  std::span<const uint8_t> bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_CODEC_H_
