#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace springdtw {
namespace util {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) found = &value;
  }
  return found;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

int64_t JsonValue::IntOr(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return static_cast<int64_t>(std::llround(v->number_value()));
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value()
                                          : std::move(fallback);
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : fallback;
}

/// Recursive-descent parser over a string_view. Depth-limited so a
/// pathological document cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    SPRINGDTW_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgumentError(
        StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      SPRINGDTW_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      SPRINGDTW_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      SPRINGDTW_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through unpaired (exposition never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    double parsed = 0.0;
    if (pos_ == start ||
        !ParseDouble(text_.substr(start, pos_ - start), &parsed)) {
      pos_ = start;
      return Error("bad number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = parsed;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace util
}  // namespace springdtw
