#include "util/codec.h"

namespace springdtw {
namespace util {

void ByteWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteVarU64(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(value));
}

void ByteWriter::WriteDouble(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(std::span<const uint8_t> bytes) {
  WriteU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void ByteWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteDouble(v);
}

void ByteWriter::WriteInt64Vector(const std::vector<int64_t>& values) {
  WriteU64(values.size());
  for (int64_t v : values) WriteI64(v);
}

bool ByteReader::Take(size_t n, const uint8_t** out) {
  if (!ok_ || bytes_.size() - position_ < n) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + position_;
  position_ += n;
  return true;
}

bool ByteReader::ReadU8(uint8_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) {
    *value = 0;
    return false;
  }
  *value = *p;
  return true;
}

bool ByteReader::ReadU32(uint32_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) {
    *value = 0;
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  *value = out;
  return true;
}

bool ByteReader::ReadU64(uint64_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) {
    *value = 0;
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *value = out;
  return true;
}

bool ByteReader::ReadI64(int64_t* value) {
  uint64_t raw = 0;
  const bool status = ReadU64(&raw);
  *value = static_cast<int64_t>(raw);
  return status;
}

bool ByteReader::ReadVarU64(uint64_t* value) {
  *value = 0;
  uint64_t out = 0;
  for (int i = 0; i < 10; ++i) {
    const uint8_t* p = nullptr;
    if (!Take(1, &p)) return false;
    const uint64_t payload = *p & 0x7F;
    // Byte 10 may only carry the single remaining bit of a 64-bit value.
    if (i == 9 && payload > 1) {
      ok_ = false;
      return false;
    }
    out |= payload << (7 * i);
    if ((*p & 0x80) == 0) {
      *value = out;
      return true;
    }
  }
  ok_ = false;  // Continuation bit set on the 10th byte: over-long encoding.
  return false;
}

bool ByteReader::ReadDouble(double* value) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) {
    *value = 0.0;
    return false;
  }
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

bool ByteReader::ReadBool(bool* value) {
  uint8_t raw = 0;
  const bool status = ReadU8(&raw);
  *value = raw != 0;
  return status;
}

bool ByteReader::ReadLengthPrefix(size_t elem_size, size_t* size) {
  *size = 0;
  uint64_t raw = 0;
  if (!ReadU64(&raw)) return false;
  // Corrupt length guard: the payload must fit in the bytes that are
  // actually left, checked before any allocation happens.
  if (raw > remaining() / elem_size) {
    ok_ = false;
    return false;
  }
  *size = static_cast<size_t>(raw);
  return true;
}

bool ByteReader::ReadString(std::string* value) {
  value->clear();
  size_t size = 0;
  if (!ReadLengthPrefix(1, &size)) return false;
  const uint8_t* p = nullptr;
  if (!Take(size, &p)) return false;
  value->assign(reinterpret_cast<const char*>(p), size);
  return true;
}

bool ByteReader::ReadDoubleVector(std::vector<double>* values) {
  values->clear();
  size_t size = 0;
  if (!ReadLengthPrefix(sizeof(double), &size)) return false;
  values->resize(size);
  for (double& v : *values) {
    if (!ReadDouble(&v)) return false;
  }
  return true;
}

bool ByteReader::ReadInt64Vector(std::vector<int64_t>* values) {
  values->clear();
  size_t size = 0;
  if (!ReadLengthPrefix(sizeof(int64_t), &size)) return false;
  values->resize(size);
  for (int64_t& v : *values) {
    if (!ReadI64(&v)) return false;
  }
  return true;
}

bool ByteReader::ReadBytes(std::vector<uint8_t>* bytes) {
  bytes->clear();
  std::span<const uint8_t> view;
  if (!ReadBytesSpan(&view)) return false;
  bytes->assign(view.begin(), view.end());
  return true;
}

bool ByteReader::ReadBytesSpan(std::span<const uint8_t>* bytes) {
  *bytes = {};
  size_t size = 0;
  if (!ReadLengthPrefix(1, &size)) return false;
  const uint8_t* p = nullptr;
  if (!Take(size, &p)) return false;
  *bytes = std::span<const uint8_t>(p, size);
  return true;
}

}  // namespace util
}  // namespace springdtw
