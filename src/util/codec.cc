#include "util/codec.h"

namespace springdtw {
namespace util {

void ByteWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteDouble(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(std::span<const uint8_t> bytes) {
  WriteU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void ByteWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteDouble(v);
}

void ByteWriter::WriteInt64Vector(const std::vector<int64_t>& values) {
  WriteU64(values.size());
  for (int64_t v : values) WriteI64(v);
}

bool ByteReader::Take(size_t n, const uint8_t** out) {
  if (!ok_ || bytes_.size() - position_ < n) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + position_;
  position_ += n;
  return true;
}

bool ByteReader::ReadU8(uint8_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) {
    *value = 0;
    return false;
  }
  *value = *p;
  return true;
}

bool ByteReader::ReadU32(uint32_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) {
    *value = 0;
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  *value = out;
  return true;
}

bool ByteReader::ReadU64(uint64_t* value) {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) {
    *value = 0;
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *value = out;
  return true;
}

bool ByteReader::ReadI64(int64_t* value) {
  uint64_t raw = 0;
  const bool status = ReadU64(&raw);
  *value = static_cast<int64_t>(raw);
  return status;
}

bool ByteReader::ReadDouble(double* value) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) {
    *value = 0.0;
    return false;
  }
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

bool ByteReader::ReadBool(bool* value) {
  uint8_t raw = 0;
  const bool status = ReadU8(&raw);
  *value = raw != 0;
  return status;
}

bool ByteReader::ReadString(std::string* value) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  const uint8_t* p = nullptr;
  if (!Take(static_cast<size_t>(size), &p)) return false;
  value->assign(reinterpret_cast<const char*>(p),
                static_cast<size_t>(size));
  return true;
}

bool ByteReader::ReadDoubleVector(std::vector<double>* values) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  if (size > bytes_.size() / sizeof(double)) {  // Corrupt length guard.
    ok_ = false;
    return false;
  }
  values->resize(static_cast<size_t>(size));
  for (double& v : *values) {
    if (!ReadDouble(&v)) return false;
  }
  return true;
}

bool ByteReader::ReadInt64Vector(std::vector<int64_t>* values) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  if (size > bytes_.size() / sizeof(int64_t)) {
    ok_ = false;
    return false;
  }
  values->resize(static_cast<size_t>(size));
  for (int64_t& v : *values) {
    if (!ReadI64(&v)) return false;
  }
  return true;
}

}  // namespace util
}  // namespace springdtw
