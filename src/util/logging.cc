#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace springdtw {
namespace util {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

// Strips the leading path so log lines show "spring.cc:42" not the full path.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

void SetMinLogSeverity(LogSeverity severity) {
  // order: relaxed — the severity gate is an independent flag; a reader
  // seeing a stale value misfilters at most a few in-flight log lines.
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  // order: relaxed — see SetMinLogSeverity().
  return g_min_severity.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // order: relaxed — see SetMinLogSeverity().
  if (severity_ >= g_min_severity.load(std::memory_order_relaxed) ||
      severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LogSeverityName(severity_),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace util
}  // namespace springdtw
