#ifndef SPRINGDTW_UTIL_JSON_H_
#define SPRINGDTW_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace springdtw {
namespace util {

/// Minimal parse-only JSON document model for the introspection tooling
/// (springdtw_top, springdtw_metrics_check): the repo's exposition layers
/// *render* JSON by hand, but the consumers need a DOM to navigate /timez,
/// /alertz, /statusz and friends. Parsing is strict RFC-8259 except that
/// the exposition layer's `null` stands in for non-finite doubles, so
/// numeric accessors treat null as "absent", not an error.
///
/// Values are immutable after ParseJson; object keys keep document order
/// (duplicate keys keep the last occurrence on lookup, like most parsers).
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key; nullptr when absent or not an object. Duplicate
  /// keys resolve to the last occurrence.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience typed lookups returning `fallback` when the member is
  /// absent, null, or of the wrong kind.
  double NumberOr(std::string_view key, double fallback) const;
  int64_t IntOr(std::string_view key, int64_t fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;

  size_t size() const {
    return is_array() ? array_.size() : is_object() ? members_.size() : 0;
  }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Errors carry a byte offset in the message.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_JSON_H_
