#ifndef SPRINGDTW_UTIL_STOPWATCH_H_
#define SPRINGDTW_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace springdtw {
namespace util {

/// Monotonic wall-clock stopwatch used by benches and the monitor engine.
///
/// Example:
///   Stopwatch sw;
///   DoWork();
///   double ms = sw.ElapsedMillis();
class Stopwatch {
 public:
  /// Starts the stopwatch.
  Stopwatch() : start_(Clock::now()) {}

  /// Monotonic clock reading in nanoseconds, for call sites that need to
  /// make the clock read itself conditional (e.g. the monitor engine's
  /// zero-cost-when-disabled latency tracking).
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  /// Restarts timing from zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart(), in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds (fractional).
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_STOPWATCH_H_
