#ifndef SPRINGDTW_UTIL_FLAGS_H_
#define SPRINGDTW_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace springdtw {
namespace util {

/// Minimal command-line flag parser for the examples and bench drivers.
/// Accepts "--name=value", "--name value", and bare "--name" (== "true").
/// Anything that does not start with "--" is a positional argument.
///
/// Example:
///   FlagParser flags(argc, argv);
///   int64_t n = flags.GetInt64("n", 20000);
///   double eps = flags.GetDouble("epsilon", 100.0);
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// True if the flag appeared on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults; malformed values fall back to the default.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt64(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_FLAGS_H_
