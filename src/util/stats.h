#ifndef SPRINGDTW_UTIL_STATS_H_
#define SPRINGDTW_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/codec.h"

namespace springdtw {
namespace util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; numerically stable.
class RunningStats {
 public:
  RunningStats() = default;

  /// Accounts one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  /// Resets to the empty state.
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 observations.
  double variance() const;
  /// Population standard deviation.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Appends the accumulator state to `writer` (for checkpoints).
  void SerializeTo(ByteWriter* writer) const;
  /// Restores state written by SerializeTo; false on truncation.
  bool DeserializeFrom(ByteReader* reader);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers exact quantile queries. Intended for bench
/// and monitor latency reporting where sample counts are modest (<= millions).
class QuantileSketch {
 public:
  QuantileSketch() = default;

  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  int64_t count() const { return static_cast<int64_t>(samples_.size()); }

  /// Merges another sketch's samples into this one.
  void Merge(const QuantileSketch& other);

  /// Resets to the empty state (releases sample memory).
  void Reset();

  /// Exact q-quantile (0 <= q <= 1) by nearest-rank. Returns 0 when empty.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-layout log-scale histogram for latency-style distributions: buckets
/// are powers of two in nanoseconds from 1ns to ~1s. O(1) add, tiny memory.
class LogHistogram {
 public:
  static constexpr int kNumBuckets = 40;

  LogHistogram() : buckets_(kNumBuckets, 0) {}

  /// Adds a non-negative observation (values are clamped into range).
  void Add(double value);

  /// Merges another histogram into this one, bucket-wise.
  void Merge(const LogHistogram& other);

  int64_t count() const { return count_; }

  /// Approximate q-quantile: returns the upper edge of the bucket where the
  /// rank falls. Returns 0 when empty.
  double Quantile(double q) const;

  /// Renders a compact one-line summary: "count=... p50=... p99=... max=...".
  std::string Summary() const;

  /// Appends the histogram state to `writer` (for checkpoints).
  void SerializeTo(ByteWriter* writer) const;
  /// Restores state written by SerializeTo; false on truncated or corrupt
  /// input (wrong bucket count, negative counts).
  bool DeserializeFrom(ByteReader* reader);

 private:
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double max_seen_ = 0.0;
};

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_STATS_H_
