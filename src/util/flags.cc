#include "util/flags.h"

#include "util/string_util.h"

namespace springdtw {
namespace util {

FlagParser::FlagParser(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : default_value;
}

int64_t FlagParser::GetInt64(const std::string& name,
                             int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  int64_t out = 0;
  return ParseInt64(it->second, &out) ? out : default_value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double out = 0.0;
  return ParseDouble(it->second, &out) ? out : default_value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return default_value;
}

}  // namespace util
}  // namespace springdtw
