// springdtw-lint: allow-file(raw-alloc) — this file IS the allocation
// tracker: it replaces the global operator new/delete, so it must call
// std::malloc/std::free directly.
#include "util/memory.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "util/string_util.h"

namespace springdtw {
namespace util {
namespace {

std::atomic<int64_t> g_allocation_count{0};
std::atomic<int64_t> g_allocated_bytes{0};

}  // namespace

// Not in the anonymous namespace: the global operator new replacements below
// refer to it by qualified name.
void* CountedAlloc(std::size_t size) {
  // order: relaxed ×2 — heap accounting counters; readers want totals, not
  // ordering against the allocations themselves.
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(static_cast<int64_t>(size),
                              std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();  // Exceptions are disabled by policy.
  return p;
}

void MemoryFootprint::Add(const std::string& name, int64_t bytes) {
  for (auto& [existing, total] : components_) {
    if (existing == name) {
      total += bytes;
      return;
    }
  }
  components_.emplace_back(name, bytes);
}

void MemoryFootprint::Merge(const MemoryFootprint& other) {
  for (const auto& [name, bytes] : other.components_) Add(name, bytes);
}

int64_t MemoryFootprint::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [name, bytes] : components_) total += bytes;
  return total;
}

std::string MemoryFootprint::ToString() const {
  std::string out = StrFormat("total=%s", HumanBytes(
      static_cast<double>(TotalBytes())).c_str());
  if (!components_.empty()) {
    out += " (";
    for (size_t i = 0; i < components_.size(); ++i) {
      if (i > 0) out += " ";
      out += components_[i].first;
      out += "=";
      out += HumanBytes(static_cast<double>(components_[i].second));
    }
    out += ")";
  }
  return out;
}

int64_t HeapStats::AllocationCount() {
  // order: relaxed — accounting read; staleness is fine.
  return g_allocation_count.load(std::memory_order_relaxed);
}

int64_t HeapStats::AllocatedBytes() {
  // order: relaxed — accounting read; staleness is fine.
  return g_allocated_bytes.load(std::memory_order_relaxed);
}

}  // namespace util
}  // namespace springdtw

// Global allocation hooks: every binary that links spring_util gets counted
// allocation. The overhead is two relaxed atomic increments per allocation.
void* operator new(std::size_t size) {
  return springdtw::util::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return springdtw::util::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return springdtw::util::CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return springdtw::util::CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
