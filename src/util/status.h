#ifndef SPRINGDTW_UTIL_STATUS_H_
#define SPRINGDTW_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace springdtw {
namespace util {

/// Canonical error codes, a small subset of the usual RPC canon.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kAlreadyExists = 7,
  kResourceExhausted = 8,
  kIoError = 9,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...). Never returns null.
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. The library does not use exceptions
/// (Google style); fallible operations return `Status` or `StatusOr<T>`.
///
/// Both types are [[nodiscard]]: silently dropping an error does not
/// compile (enforced as a project rule by tools/springdtw_lint). Cast to
/// void to discard deliberately.
///
/// Example:
///   Status s = WriteCsv(path, series);
///   if (!s.ok()) { LOG(ERROR) << s.ToString(); return s; }
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE_NAME: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience factories, mirroring absl::*Error().
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status IoError(std::string message);

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Accessing `value()` on a non-OK result aborts in debug
/// builds and is undefined in release builds; always check `ok()` first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit by design, like absl::StatusOr).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)) {}

  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and is converted to kInternal.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace springdtw

/// Propagates a non-OK status from an expression, like absl's macro.
#define SPRINGDTW_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::springdtw::util::Status _status = (expr);          \
    if (!_status.ok()) return _status;                   \
  } while (0)

#endif  // SPRINGDTW_UTIL_STATUS_H_
