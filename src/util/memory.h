#ifndef SPRINGDTW_UTIL_MEMORY_H_
#define SPRINGDTW_UTIL_MEMORY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace springdtw {
namespace util {

/// Itemized byte accounting for a data structure; used by the matchers to
/// self-report their working-set size (the quantity plotted in the paper's
/// Figure 8). Components are (name, bytes) pairs.
class MemoryFootprint {
 public:
  MemoryFootprint() = default;

  /// Adds `bytes` to the component called `name` (creating it if needed).
  void Add(const std::string& name, int64_t bytes);

  /// Merges another footprint into this one, component-wise.
  void Merge(const MemoryFootprint& other);

  /// Sum over all components.
  int64_t TotalBytes() const;

  const std::vector<std::pair<std::string, int64_t>>& components() const {
    return components_;
  }

  /// Renders "total=... (name1=... name2=...)" with human-readable sizes.
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, int64_t>> components_;
};

/// Bytes held by a vector's heap buffer (capacity, not size).
template <typename T>
int64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.capacity() * sizeof(T));
}

/// Process-wide allocation counters, maintained by the replaced global
/// operator new/delete in memory.cc. Used by tests to assert that the
/// per-tick hot path performs no heap allocation, and by benches to report
/// allocation rates.
struct HeapStats {
  /// Total number of operator-new calls since process start.
  static int64_t AllocationCount();
  /// Total bytes requested from operator new since process start.
  static int64_t AllocatedBytes();
};

/// Captures heap counters at construction; `Allocations()`/`Bytes()` report
/// the delta since then.
class ScopedAllocationCheck {
 public:
  ScopedAllocationCheck()
      : start_count_(HeapStats::AllocationCount()),
        start_bytes_(HeapStats::AllocatedBytes()) {}

  int64_t Allocations() const {
    return HeapStats::AllocationCount() - start_count_;
  }
  int64_t Bytes() const { return HeapStats::AllocatedBytes() - start_bytes_; }

 private:
  int64_t start_count_;
  int64_t start_bytes_;
};

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_MEMORY_H_
