#ifndef SPRINGDTW_UTIL_LOGGING_H_
#define SPRINGDTW_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace springdtw {
namespace util {

/// Log severities, in increasing order of importance.
enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3,
                         kFatal = 4 };

/// Returns a stable name for `severity` ("DEBUG", "INFO", ...).
const char* LogSeverityName(LogSeverity severity);

/// Sets the global minimum severity that is actually emitted. Messages below
/// the threshold are formatted lazily and dropped. Defaults to kInfo.
void SetMinLogSeverity(LogSeverity severity);

/// Returns the current global minimum severity.
LogSeverity MinLogSeverity();

/// Internal: stream-style message builder used by the SPRINGDTW_LOG macro.
/// Emits on destruction; kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Internal: swallows a log stream when the severity is filtered out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace util
}  // namespace springdtw

/// Stream-style logging: SPRINGDTW_LOG(INFO) << "processed " << n << " ticks";
#define SPRINGDTW_LOG(severity)                                        \
  ::springdtw::util::LogMessage(                                       \
      ::springdtw::util::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

/// Fatal-if-false invariant check, active in all build modes.
#define SPRINGDTW_CHECK(condition)                                    \
  if (!(condition))                                                   \
  ::springdtw::util::LogMessage(::springdtw::util::LogSeverity::kFatal, \
                                __FILE__, __LINE__)                   \
          .stream()                                                   \
      << "Check failed: " #condition " "

#define SPRINGDTW_CHECK_EQ(a, b) SPRINGDTW_CHECK((a) == (b))
#define SPRINGDTW_CHECK_NE(a, b) SPRINGDTW_CHECK((a) != (b))
#define SPRINGDTW_CHECK_LE(a, b) SPRINGDTW_CHECK((a) <= (b))
#define SPRINGDTW_CHECK_LT(a, b) SPRINGDTW_CHECK((a) < (b))
#define SPRINGDTW_CHECK_GE(a, b) SPRINGDTW_CHECK((a) >= (b))
#define SPRINGDTW_CHECK_GT(a, b) SPRINGDTW_CHECK((a) > (b))

/// Debug-only check; compiles to nothing in NDEBUG builds.
#ifdef NDEBUG
#define SPRINGDTW_DCHECK(condition) \
  if (false) ::springdtw::util::NullStream()
#else
#define SPRINGDTW_DCHECK(condition) SPRINGDTW_CHECK(condition)
#endif

#endif  // SPRINGDTW_UTIL_LOGGING_H_
