#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>

namespace springdtw {
namespace util {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 64) return false;
  char buf[65];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 32) return false;
  char buf[33];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buf, &end, 10);
  if (end != buf + text.size() || errno == ERANGE) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

std::string HumanBytes(double bytes) {
  static const char* kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int idx = 0;
  while (bytes >= 1024.0 && idx < 4) {
    bytes /= 1024.0;
    ++idx;
  }
  if (idx == 0) return StrFormat("%.0f %s", bytes, kSuffixes[idx]);
  return StrFormat("%.1f %s", bytes, kSuffixes[idx]);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace util
}  // namespace springdtw
