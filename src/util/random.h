#ifndef SPRINGDTW_UTIL_RANDOM_H_
#define SPRINGDTW_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace springdtw {
namespace util {

/// SplitMix64 generator, used to seed Xoshiro and for cheap hashing.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic, platform-independent PRNG (xoshiro256**). All generators in
/// `gen` are seeded through this class so every experiment is reproducible
/// from a single integer seed, independent of the standard library's
/// distribution implementations.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream on every
  /// platform and standard library.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller, deterministic).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Returns a child generator with an independent stream, derived from this
  /// generator's seed and `stream_id`. Useful for giving each dataset
  /// component its own reproducible stream.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Fisher-Yates shuffles `values` in place using `rng`.
void Shuffle(Rng& rng, std::vector<int64_t>& values);

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_RANDOM_H_
