#ifndef SPRINGDTW_UTIL_MUTEX_H_
#define SPRINGDTW_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace springdtw {
namespace util {

/// Annotated mutex wrapper. This is the only place in the tree allowed to
/// hold a raw std::mutex (lint rule `raw-mutex`); everything else locks
/// through Mutex/MutexLock so Clang Thread Safety Analysis can prove that
/// every SPRINGDTW_GUARDED_BY member is only touched under its lock.
class SPRINGDTW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPRINGDTW_ACQUIRE() { mu_.lock(); }
  void Unlock() SPRINGDTW_RELEASE() { mu_.unlock(); }
  bool TryLock() SPRINGDTW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spelling so CondVar (std::condition_variable_any) can
  /// park directly on a Mutex. Prefer Lock()/Unlock()/MutexLock in code.
  void lock() SPRINGDTW_ACQUIRE() { mu_.lock(); }
  void unlock() SPRINGDTW_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, understood by the analysis as a scoped
/// capability: the guarded region is the MutexLock's lexical scope.
class SPRINGDTW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SPRINGDTW_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() SPRINGDTW_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable that parks on util::Mutex. Waits require the mutex
/// held (enforced under clang); notifies take no lock, matching the
/// lockless-notify pattern used by the SPSC ring.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); `mu` is released while
  /// waiting and re-held on return.
  void Wait(Mutex& mu) SPRINGDTW_REQUIRES(mu) { cv_.wait(mu); }

  /// Waits up to `millis`; returns true when notified before the timeout.
  /// Callers re-check their predicate either way (spurious wakeups).
  bool WaitForMillis(Mutex& mu, int64_t millis) SPRINGDTW_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::milliseconds(millis)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace util
}  // namespace springdtw

#endif  // SPRINGDTW_UTIL_MUTEX_H_
