#ifndef SPRINGDTW_TS_SERIES_H_
#define SPRINGDTW_TS_SERIES_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace springdtw {
namespace ts {

/// Sentinel for a missing reading (sensor dropout). Stored as a quiet NaN;
/// use IsMissing() to test, never operator== (NaN never compares equal).
inline double MissingValue() {
  return std::numeric_limits<double>::quiet_NaN();
}

/// True if `x` is the missing-value sentinel.
inline bool IsMissing(double x) { return std::isnan(x); }

/// A univariate time series: contiguous `double` values indexed by 0-based
/// tick. This is the stored-sequence counterpart of a stream; the matchers
/// consume it one value at a time. Missing readings are represented as NaN
/// (see MissingValue()).
class Series {
 public:
  Series() = default;
  /// Takes ownership of `values`; `name` is a diagnostic label.
  explicit Series(std::vector<double> values, std::string name = "");

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double operator[](int64_t t) const {
    return values_[static_cast<size_t>(t)];
  }
  double& operator[](int64_t t) { return values_[static_cast<size_t>(t)]; }

  void Append(double x) { values_.push_back(x); }
  void AppendAll(const Series& other);
  void Reserve(int64_t n) { values_.reserve(static_cast<size_t>(n)); }
  void Clear() { values_.clear(); }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Copy of the half-open range [start, start + length). Clamped to bounds.
  Series Slice(int64_t start, int64_t length) const;

  /// Number of missing (NaN) entries.
  int64_t CountMissing() const;

  /// Minimum over non-missing values; +inf if all missing or empty.
  double Min() const;
  /// Maximum over non-missing values; -inf if all missing or empty.
  double Max() const;
  /// Mean over non-missing values; 0 if all missing or empty.
  double Mean() const;
  /// Population standard deviation over non-missing values.
  double Stddev() const;

  friend bool operator==(const Series& a, const Series& b);

 private:
  std::vector<double> values_;
  std::string name_;
};

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_SERIES_H_
