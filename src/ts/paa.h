#ifndef SPRINGDTW_TS_PAA_H_
#define SPRINGDTW_TS_PAA_H_

#include <cstdint>
#include <span>
#include <vector>

namespace springdtw {
namespace ts {

/// One segment of a piecewise aggregate approximation: the mean (the
/// classic PAA coefficient) plus the min/max range, which coarse DTW
/// lower bounds need.
struct PaaSegment {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Number of source ticks aggregated (the last segment may be shorter).
  int64_t length = 0;
};

/// Reduces `values` to ceil(n / segment_size) segments of `segment_size`
/// ticks each (last one possibly shorter). Requires segment_size >= 1 and
/// a non-empty input.
std::vector<PaaSegment> PaaReduce(std::span<const double> values,
                                  int64_t segment_size);

/// Expands segments back to a step function over the original length —
/// the usual PAA reconstruction, useful for visualization and for
/// approximation-error measurements.
std::vector<double> PaaReconstruct(const std::vector<PaaSegment>& segments);

/// Mean squared reconstruction error of the PAA at this granularity.
double PaaError(std::span<const double> values, int64_t segment_size);

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_PAA_H_
