#include "ts/binary_io.h"

#include <cstdio>
#include <fstream>

#include "util/codec.h"
#include "util/string_util.h"

namespace springdtw {
namespace ts {
namespace {

constexpr uint32_t kMagic = 0x53445457;  // "SDTW"
constexpr uint32_t kVersion = 1;

util::Status WriteRaw(const std::string& path, const std::string& name,
                      int64_t dims, int64_t ticks,
                      const std::vector<double>& data) {
  util::ByteWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteI64(dims);
  writer.WriteI64(ticks);
  writer.WriteString(name);
  for (const double v : data) writer.WriteDouble(v);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(writer.buffer().data()),
            static_cast<std::streamsize>(writer.buffer().size()));
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

struct RawFile {
  int64_t dims = 0;
  int64_t ticks = 0;
  std::string name;
  std::vector<double> data;
};

util::StatusOr<RawFile> ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  util::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadU32(&version);
  if (!reader.ok() || magic != kMagic) {
    return util::InvalidArgumentError(path + ": not an SDTW series file");
  }
  if (version != kVersion) {
    return util::InvalidArgumentError(
        util::StrFormat("%s: unsupported version %u", path.c_str(), version));
  }
  RawFile raw;
  reader.ReadI64(&raw.dims);
  reader.ReadI64(&raw.ticks);
  reader.ReadString(&raw.name);
  if (!reader.ok() || raw.dims < 1 || raw.ticks < 0) {
    return util::InvalidArgumentError(path + ": corrupt header");
  }
  // The value count is bounded by the bytes actually present *before* any
  // allocation: a corrupt header cannot trigger an oversized resize, and
  // dims * ticks cannot overflow once both factors are within the payload
  // bound.
  const uint64_t payload_values = reader.remaining() / sizeof(double);
  const uint64_t dims = static_cast<uint64_t>(raw.dims);
  const uint64_t ticks = static_cast<uint64_t>(raw.ticks);
  if ((ticks != 0 && dims > payload_values / ticks) ||
      dims * ticks != payload_values) {
    return util::InvalidArgumentError(path + ": header/payload mismatch");
  }
  raw.data.resize(static_cast<size_t>(payload_values));
  for (double& v : raw.data) {
    if (!reader.ReadDouble(&v)) {
      return util::InvalidArgumentError(path + ": truncated payload");
    }
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError(path + ": trailing bytes");
  }
  return raw;
}

}  // namespace

util::Status WriteSeriesBinary(const std::string& path,
                               const Series& series) {
  return WriteRaw(path, series.name(), 1, series.size(), series.values());
}

util::StatusOr<Series> ReadSeriesBinary(const std::string& path) {
  auto raw = ReadRaw(path);
  if (!raw.ok()) return raw.status();
  if (raw->dims != 1) {
    return util::InvalidArgumentError(util::StrFormat(
        "%s: has %lld channels; use ReadVectorSeriesBinary", path.c_str(),
        static_cast<long long>(raw->dims)));
  }
  return Series(std::move(raw->data), std::move(raw->name));
}

util::Status WriteVectorSeriesBinary(const std::string& path,
                                     const VectorSeries& series) {
  return WriteRaw(path, series.name(), series.dims(), series.size(),
                  series.data());
}

util::StatusOr<VectorSeries> ReadVectorSeriesBinary(const std::string& path) {
  auto raw = ReadRaw(path);
  if (!raw.ok()) return raw.status();
  VectorSeries series(raw->dims, std::move(raw->name));
  series.Reserve(raw->ticks);
  for (int64_t t = 0; t < raw->ticks; ++t) {
    series.AppendRow(std::span<const double>(
        raw->data.data() + static_cast<size_t>(t * raw->dims),
        static_cast<size_t>(raw->dims)));
  }
  return series;
}

}  // namespace ts
}  // namespace springdtw
