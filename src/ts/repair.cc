#include "ts/repair.h"

namespace springdtw {
namespace ts {
namespace {

Series RepairHoldLast(const Series& series, double constant) {
  Series out;
  out.Reserve(series.size());
  out.set_name(series.name());
  // Seed with the first non-missing value so a leading gap is filled sanely.
  double last = constant;
  for (int64_t i = 0; i < series.size(); ++i) {
    if (!IsMissing(series[i])) {
      last = series[i];
      break;
    }
  }
  for (int64_t i = 0; i < series.size(); ++i) {
    if (!IsMissing(series[i])) last = series[i];
    out.Append(last);
  }
  return out;
}

Series RepairInterpolate(const Series& series, double constant) {
  Series out = RepairHoldLast(series, constant);
  // Second pass: replace each held-last run with a linear ramp toward the
  // next observed value.
  int64_t i = 0;
  while (i < series.size()) {
    if (!IsMissing(series[i])) {
      ++i;
      continue;
    }
    const int64_t gap_start = i;
    while (i < series.size() && IsMissing(series[i])) ++i;
    const int64_t gap_end = i;  // First index after the gap (may be size()).
    if (gap_start == 0 || gap_end >= series.size()) continue;  // Edge gap.
    const double left = series[gap_start - 1];
    const double right = series[gap_end];
    const double span = static_cast<double>(gap_end - gap_start + 1);
    for (int64_t j = gap_start; j < gap_end; ++j) {
      const double frac = static_cast<double>(j - gap_start + 1) / span;
      out[j] = left + (right - left) * frac;
    }
  }
  return out;
}

Series RepairConstant(const Series& series, double constant) {
  Series out;
  out.Reserve(series.size());
  out.set_name(series.name());
  for (int64_t i = 0; i < series.size(); ++i) {
    out.Append(IsMissing(series[i]) ? constant : series[i]);
  }
  return out;
}

}  // namespace

Series RepairMissing(const Series& series, RepairPolicy policy,
                     double constant) {
  switch (policy) {
    case RepairPolicy::kHoldLast:
      return RepairHoldLast(series, constant);
    case RepairPolicy::kLinearInterpolate:
      return RepairInterpolate(series, constant);
    case RepairPolicy::kConstant:
      return RepairConstant(series, constant);
  }
  return series;
}

}  // namespace ts
}  // namespace springdtw
