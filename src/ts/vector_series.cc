#include "ts/vector_series.h"

#include <algorithm>
#include <cstddef>

#include "util/logging.h"

namespace springdtw {
namespace ts {

VectorSeries::VectorSeries(int64_t dims, std::string name)
    : dims_(dims), name_(std::move(name)) {
  SPRINGDTW_CHECK_GE(dims, 1) << "VectorSeries needs at least one channel";
}

void VectorSeries::AppendRow(std::span<const double> row) {
  SPRINGDTW_CHECK_EQ(static_cast<int64_t>(row.size()), dims_);
  data_.insert(data_.end(), row.begin(), row.end());
}

void VectorSeries::AppendUniformRow(double fill) {
  data_.insert(data_.end(), static_cast<size_t>(dims_), fill);
}

VectorSeries VectorSeries::Slice(int64_t start, int64_t length) const {
  start = std::clamp<int64_t>(start, 0, size());
  length = std::clamp<int64_t>(length, 0, size() - start);
  VectorSeries out(dims_, name_);
  out.data_.assign(
      data_.begin() + static_cast<ptrdiff_t>(start * dims_),
      data_.begin() + static_cast<ptrdiff_t>((start + length) * dims_));
  return out;
}

std::vector<double> VectorSeries::Channel(int64_t dim) const {
  SPRINGDTW_CHECK(dim >= 0 && dim < dims_);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(size()));
  for (int64_t t = 0; t < size(); ++t) {
    out.push_back(data_[static_cast<size_t>(t * dims_ + dim)]);
  }
  return out;
}

}  // namespace ts
}  // namespace springdtw
