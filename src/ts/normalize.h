#ifndef SPRINGDTW_TS_NORMALIZE_H_
#define SPRINGDTW_TS_NORMALIZE_H_

#include "ts/series.h"

namespace springdtw {
namespace ts {

/// Affine parameters of a normalization, so queries and streams can be put
/// on the same scale with the *same* transform (normalizing them separately
/// would change which subsequences match).
struct AffineTransform {
  double scale = 1.0;
  double offset = 0.0;

  double Apply(double x) const { return scale * x + offset; }
  double Invert(double y) const { return (y - offset) / scale; }
};

/// Computes the z-normalization transform of `series` (mean -> 0,
/// stddev -> 1). Missing values are ignored when estimating the moments and
/// pass through unchanged when applied. A constant series yields scale 1.
AffineTransform ZNormTransform(const Series& series);

/// Computes the min-max transform mapping [min, max] -> [lo, hi]. A constant
/// series yields scale 1 offset (lo - min).
AffineTransform MinMaxTransform(const Series& series, double lo, double hi);

/// Applies `transform` element-wise; missing values stay missing.
Series Apply(const AffineTransform& transform, const Series& series);

/// Convenience: Apply(ZNormTransform(series), series).
Series ZNormalize(const Series& series);

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_NORMALIZE_H_
