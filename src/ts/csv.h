#ifndef SPRINGDTW_TS_CSV_H_
#define SPRINGDTW_TS_CSV_H_

#include <string>

#include "ts/series.h"
#include "ts/vector_series.h"
#include "util/status.h"

namespace springdtw {
namespace ts {

/// Reads a univariate series from `path`. One value per line; blank lines
/// are skipped; a line equal to "nan" (any case) or an empty field yields a
/// missing value; a leading "# ..." header line is ignored.
util::StatusOr<Series> ReadSeriesCsv(const std::string& path);

/// Writes one value per line ("nan" for missing). Overwrites `path`.
util::Status WriteSeriesCsv(const std::string& path, const Series& series);

/// Reads a k-dimensional series: comma-separated values, one tick per line.
/// All rows must have the same number of fields.
util::StatusOr<VectorSeries> ReadVectorSeriesCsv(const std::string& path);

/// Writes comma-separated rows, one tick per line.
util::Status WriteVectorSeriesCsv(const std::string& path,
                                  const VectorSeries& series);

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_CSV_H_
