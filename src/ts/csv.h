#ifndef SPRINGDTW_TS_CSV_H_
#define SPRINGDTW_TS_CSV_H_

#include <string>
#include <string_view>

#include "ts/series.h"
#include "ts/vector_series.h"
#include "util/status.h"

namespace springdtw {
namespace ts {

/// Parses a univariate series from in-memory CSV text. One value per line;
/// blank lines are skipped; a line equal to "nan" (any case) or an empty
/// field yields a missing value; "# ..." comment lines are ignored. `name`
/// labels the series and prefixes error messages (a path, for file input).
/// Never crashes on malformed input — this is the untrusted-input boundary
/// the fuzz harness drives.
util::StatusOr<Series> ParseSeriesCsv(std::string_view text,
                                      std::string name);

/// Parses a k-dimensional series from in-memory CSV text: comma-separated
/// values, one tick per line. All rows must have the same number of fields.
util::StatusOr<VectorSeries> ParseVectorSeriesCsv(std::string_view text,
                                                  std::string name);

/// Reads a univariate series from `path`; see ParseSeriesCsv for the
/// format.
util::StatusOr<Series> ReadSeriesCsv(const std::string& path);

/// Writes one value per line ("nan" for missing). Overwrites `path`.
util::Status WriteSeriesCsv(const std::string& path, const Series& series);

/// Reads a k-dimensional series: comma-separated values, one tick per line.
/// All rows must have the same number of fields.
util::StatusOr<VectorSeries> ReadVectorSeriesCsv(const std::string& path);

/// Writes comma-separated rows, one tick per line.
util::Status WriteVectorSeriesCsv(const std::string& path,
                                  const VectorSeries& series);

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_CSV_H_
