#include "ts/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace springdtw {
namespace ts {
namespace {

bool ParseField(std::string_view field, double* out) {
  field = util::StripWhitespace(field);
  if (field.empty()) {
    *out = MissingValue();
    return true;
  }
  return util::ParseDouble(field, out);  // "nan" parses to NaN via strtod.
}

/// Splits `text` into lines, tolerating \n, \r\n and a missing final
/// newline, and invokes `fn(lineno, line)` per line until it returns a
/// non-OK status.
template <typename Fn>
util::Status ForEachLine(std::string_view text, Fn fn) {
  int64_t lineno = 0;
  while (!text.empty()) {
    ++lineno;
    const size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    SPRINGDTW_RETURN_IF_ERROR(fn(lineno, line));
    text = eol == std::string_view::npos ? std::string_view()
                                         : text.substr(eol + 1);
  }
  return util::Status::Ok();
}

util::StatusOr<std::string> Slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::IoError("read failed for " + path);
  return std::move(buffer).str();
}

}  // namespace

util::StatusOr<Series> ParseSeriesCsv(std::string_view text,
                                      std::string name) {
  Series series;
  series.set_name(name);
  util::Status status =
      ForEachLine(text, [&](int64_t lineno, std::string_view line) {
        const std::string_view stripped = util::StripWhitespace(line);
        if (stripped.empty() || stripped[0] == '#') {
          return util::Status::Ok();
        }
        double value = 0.0;
        if (!ParseField(stripped, &value)) {
          return util::InvalidArgumentError(util::StrFormat(
              "%s:%lld: malformed value '%s'", name.c_str(),
              static_cast<long long>(lineno),
              std::string(stripped).c_str()));
        }
        series.Append(value);
        return util::Status::Ok();
      });
  if (!status.ok()) return status;
  return series;
}

util::StatusOr<Series> ReadSeriesCsv(const std::string& path) {
  auto text = Slurp(path);
  if (!text.ok()) return text.status();
  return ParseSeriesCsv(*text, path);
}

util::Status WriteSeriesCsv(const std::string& path, const Series& series) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  for (int64_t i = 0; i < series.size(); ++i) {
    if (IsMissing(series[i])) {
      out << "nan\n";
    } else {
      out << util::StrFormat("%.17g", series[i]) << "\n";
    }
  }
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<VectorSeries> ParseVectorSeriesCsv(std::string_view text,
                                                  std::string name) {
  VectorSeries series;
  std::vector<double> row;
  util::Status status =
      ForEachLine(text, [&](int64_t lineno, std::string_view line) {
        const std::string_view stripped = util::StripWhitespace(line);
        if (stripped.empty() || stripped[0] == '#') {
          return util::Status::Ok();
        }
        row.clear();
        for (const std::string& field : util::Split(stripped, ',')) {
          double value = 0.0;
          if (!ParseField(field, &value)) {
            return util::InvalidArgumentError(util::StrFormat(
                "%s:%lld: malformed value '%s'", name.c_str(),
                static_cast<long long>(lineno), field.c_str()));
          }
          row.push_back(value);
        }
        if (series.dims() == 0) {
          series = VectorSeries(static_cast<int64_t>(row.size()), name);
        } else if (static_cast<int64_t>(row.size()) != series.dims()) {
          return util::InvalidArgumentError(util::StrFormat(
              "%s:%lld: expected %lld fields, got %zu", name.c_str(),
              static_cast<long long>(lineno),
              static_cast<long long>(series.dims()), row.size()));
        }
        series.AppendRow(row);
        return util::Status::Ok();
      });
  if (!status.ok()) return status;
  if (series.dims() == 0) {
    return util::InvalidArgumentError(name + ": no data rows");
  }
  return series;
}

util::StatusOr<VectorSeries> ReadVectorSeriesCsv(const std::string& path) {
  auto text = Slurp(path);
  if (!text.ok()) return text.status();
  return ParseVectorSeriesCsv(*text, path);
}

util::Status WriteVectorSeriesCsv(const std::string& path,
                                  const VectorSeries& series) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  for (int64_t t = 0; t < series.size(); ++t) {
    const auto row = series.Row(t);
    for (int64_t d = 0; d < series.dims(); ++d) {
      if (d > 0) out << ",";
      if (IsMissing(row[static_cast<size_t>(d)])) {
        out << "nan";
      } else {
        out << util::StrFormat("%.17g", row[static_cast<size_t>(d)]);
      }
    }
    out << "\n";
  }
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace ts
}  // namespace springdtw
