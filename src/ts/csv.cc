#include "ts/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace springdtw {
namespace ts {
namespace {

bool ParseField(std::string_view field, double* out) {
  field = util::StripWhitespace(field);
  if (field.empty()) {
    *out = MissingValue();
    return true;
  }
  return util::ParseDouble(field, out);  // "nan" parses to NaN via strtod.
}

}  // namespace

util::StatusOr<Series> ReadSeriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  Series series;
  series.set_name(path);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view stripped = util::StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    double value = 0.0;
    if (!ParseField(stripped, &value)) {
      return util::InvalidArgumentError(util::StrFormat(
          "%s:%lld: malformed value '%s'", path.c_str(),
          static_cast<long long>(lineno), std::string(stripped).c_str()));
    }
    series.Append(value);
  }
  return series;
}

util::Status WriteSeriesCsv(const std::string& path, const Series& series) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  for (int64_t i = 0; i < series.size(); ++i) {
    if (IsMissing(series[i])) {
      out << "nan\n";
    } else {
      out << util::StrFormat("%.17g", series[i]) << "\n";
    }
  }
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<VectorSeries> ReadVectorSeriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  VectorSeries series;
  std::string line;
  std::vector<double> row;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view stripped = util::StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    row.clear();
    for (const std::string& field : util::Split(std::string(stripped), ',')) {
      double value = 0.0;
      if (!ParseField(field, &value)) {
        return util::InvalidArgumentError(util::StrFormat(
            "%s:%lld: malformed value '%s'", path.c_str(),
            static_cast<long long>(lineno), field.c_str()));
      }
      row.push_back(value);
    }
    if (series.dims() == 0) {
      series = VectorSeries(static_cast<int64_t>(row.size()), path);
    } else if (static_cast<int64_t>(row.size()) != series.dims()) {
      return util::InvalidArgumentError(util::StrFormat(
          "%s:%lld: expected %lld fields, got %zu", path.c_str(),
          static_cast<long long>(lineno),
          static_cast<long long>(series.dims()), row.size()));
    }
    series.AppendRow(row);
  }
  if (series.dims() == 0) {
    return util::InvalidArgumentError(path + ": no data rows");
  }
  return series;
}

util::Status WriteVectorSeriesCsv(const std::string& path,
                                  const VectorSeries& series) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  for (int64_t t = 0; t < series.size(); ++t) {
    const auto row = series.Row(t);
    for (int64_t d = 0; d < series.dims(); ++d) {
      if (d > 0) out << ",";
      if (IsMissing(row[static_cast<size_t>(d)])) {
        out << "nan";
      } else {
        out << util::StrFormat("%.17g", row[static_cast<size_t>(d)]);
      }
    }
    out << "\n";
  }
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace ts
}  // namespace springdtw
