#include "ts/normalize.h"

namespace springdtw {
namespace ts {

AffineTransform ZNormTransform(const Series& series) {
  const double mean = series.Mean();
  const double stddev = series.Stddev();
  AffineTransform t;
  if (stddev > 0.0) {
    t.scale = 1.0 / stddev;
    t.offset = -mean / stddev;
  } else {
    t.scale = 1.0;
    t.offset = -mean;
  }
  return t;
}

AffineTransform MinMaxTransform(const Series& series, double lo, double hi) {
  const double min = series.Min();
  const double max = series.Max();
  AffineTransform t;
  if (max > min) {
    t.scale = (hi - lo) / (max - min);
    t.offset = lo - min * t.scale;
  } else {
    t.scale = 1.0;
    t.offset = lo - min;
  }
  return t;
}

Series Apply(const AffineTransform& transform, const Series& series) {
  Series out;
  out.Reserve(series.size());
  out.set_name(series.name());
  for (int64_t i = 0; i < series.size(); ++i) {
    const double x = series[i];
    out.Append(IsMissing(x) ? x : transform.Apply(x));
  }
  return out;
}

Series ZNormalize(const Series& series) {
  return Apply(ZNormTransform(series), series);
}

}  // namespace ts
}  // namespace springdtw
