#include "ts/series.h"

#include <algorithm>
#include <cstddef>

#include "util/stats.h"

namespace springdtw {
namespace ts {

Series::Series(std::vector<double> values, std::string name)
    : values_(std::move(values)), name_(std::move(name)) {}

void Series::AppendAll(const Series& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

Series Series::Slice(int64_t start, int64_t length) const {
  start = std::clamp<int64_t>(start, 0, size());
  length = std::clamp<int64_t>(length, 0, size() - start);
  return Series(std::vector<double>(
                    values_.begin() + static_cast<ptrdiff_t>(start),
                    values_.begin() + static_cast<ptrdiff_t>(start + length)),
                name_);
}

int64_t Series::CountMissing() const {
  int64_t count = 0;
  for (double x : values_) {
    if (IsMissing(x)) ++count;
  }
  return count;
}

namespace {

util::RunningStats StatsOf(const std::vector<double>& values) {
  util::RunningStats stats;
  for (double x : values) {
    if (!IsMissing(x)) stats.Add(x);
  }
  return stats;
}

}  // namespace

double Series::Min() const {
  const util::RunningStats stats = StatsOf(values_);
  return stats.count() > 0 ? stats.min()
                           : std::numeric_limits<double>::infinity();
}

double Series::Max() const {
  const util::RunningStats stats = StatsOf(values_);
  return stats.count() > 0 ? stats.max()
                           : -std::numeric_limits<double>::infinity();
}

double Series::Mean() const { return StatsOf(values_).mean(); }

double Series::Stddev() const { return StatsOf(values_).stddev(); }

bool operator==(const Series& a, const Series& b) {
  if (a.size() != b.size()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    const bool ma = IsMissing(a[i]);
    const bool mb = IsMissing(b[i]);
    if (ma != mb) return false;
    if (!ma && a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace ts
}  // namespace springdtw
