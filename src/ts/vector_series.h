#ifndef SPRINGDTW_TS_VECTOR_SERIES_H_
#define SPRINGDTW_TS_VECTOR_SERIES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace springdtw {
namespace ts {

/// A k-dimensional time series ("vector stream", Section 5.3 of the paper):
/// every tick carries a vector of k doubles. Row-major contiguous storage
/// so a tick is a cache-friendly span.
class VectorSeries {
 public:
  VectorSeries() = default;
  /// Creates an empty series with `dims` channels. dims must be >= 1.
  explicit VectorSeries(int64_t dims, std::string name = "");

  int64_t dims() const { return dims_; }
  /// Number of ticks.
  int64_t size() const {
    return dims_ == 0 ? 0 : static_cast<int64_t>(data_.size()) / dims_;
  }
  bool empty() const { return size() == 0; }

  /// Read-only view of tick `t` (k values).
  std::span<const double> Row(int64_t t) const {
    return std::span<const double>(
        data_.data() + static_cast<size_t>(t * dims_),
        static_cast<size_t>(dims_));
  }

  /// Mutable view of tick `t`.
  std::span<double> MutableRow(int64_t t) {
    return std::span<double>(data_.data() + static_cast<size_t>(t * dims_),
                             static_cast<size_t>(dims_));
  }

  /// Appends one tick. `row.size()` must equal dims().
  void AppendRow(std::span<const double> row);

  /// Appends one tick with every channel set to `fill`.
  void AppendUniformRow(double fill);

  void Reserve(int64_t ticks) {
    data_.reserve(static_cast<size_t>(ticks * dims_));
  }

  /// Copy of ticks [start, start + length), clamped to bounds.
  VectorSeries Slice(int64_t start, int64_t length) const;

  /// Extracts channel `dim` as a univariate vector.
  std::vector<double> Channel(int64_t dim) const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const std::vector<double>& data() const { return data_; }

 private:
  int64_t dims_ = 0;
  std::vector<double> data_;
  std::string name_;
};

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_VECTOR_SERIES_H_
