#ifndef SPRINGDTW_TS_REPAIR_H_
#define SPRINGDTW_TS_REPAIR_H_

#include "ts/series.h"

namespace springdtw {
namespace ts {

/// How to handle missing (NaN) readings before feeding a matcher.
/// The paper's Temperature experiment has "many missing values" and SPRING
/// "is not sensitive at all to the missing values" — the stream layer repairs
/// gaps before the DP update (a NaN would poison every later distance).
enum class RepairPolicy {
  /// Repeat the last seen value (streaming-safe; default).
  kHoldLast,
  /// Linear interpolation across the gap (offline only — needs lookahead).
  kLinearInterpolate,
  /// Replace with a fixed constant.
  kConstant,
};

/// Returns a copy of `series` with missing values repaired per `policy`.
/// Leading missing values take the first non-missing value (or `constant`
/// when the whole series is missing). For kConstant, gaps become `constant`.
Series RepairMissing(const Series& series, RepairPolicy policy,
                     double constant = 0.0);

/// Streaming repairer: feed values one at a time; missing values are replaced
/// by the last non-missing value (or `initial` before any arrives).
class StreamingRepairer {
 public:
  explicit StreamingRepairer(double initial = 0.0) : last_(initial) {}

  /// Returns `x` if present, else the last held value, updating state.
  double Next(double x) {
    if (!IsMissing(x)) last_ = x;
    return last_;
  }

  double last() const { return last_; }

 private:
  double last_;
};

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_REPAIR_H_
