#ifndef SPRINGDTW_TS_BINARY_IO_H_
#define SPRINGDTW_TS_BINARY_IO_H_

#include <string>

#include "ts/series.h"
#include "ts/vector_series.h"
#include "util/status.h"

namespace springdtw {
namespace ts {

/// Binary series container ("SDTW" format): a small header (magic, version,
/// dims, tick count, name) followed by raw little-endian doubles. Loads
/// ~20x faster than CSV for large streams and round-trips NaN missing
/// values exactly. One file holds one series.

/// Writes `series` to `path` (dims = 1). Overwrites.
util::Status WriteSeriesBinary(const std::string& path,
                               const Series& series);

/// Reads a dims = 1 file written by WriteSeriesBinary.
util::StatusOr<Series> ReadSeriesBinary(const std::string& path);

/// Writes a k-dimensional series. Overwrites.
util::Status WriteVectorSeriesBinary(const std::string& path,
                                     const VectorSeries& series);

/// Reads a file with any dims >= 1 (a dims = 1 file loads fine here too).
util::StatusOr<VectorSeries> ReadVectorSeriesBinary(const std::string& path);

}  // namespace ts
}  // namespace springdtw

#endif  // SPRINGDTW_TS_BINARY_IO_H_
