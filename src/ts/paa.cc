#include "ts/paa.h"

#include <algorithm>

#include "util/logging.h"

namespace springdtw {
namespace ts {

std::vector<PaaSegment> PaaReduce(std::span<const double> values,
                                  int64_t segment_size) {
  SPRINGDTW_CHECK_GE(segment_size, 1);
  SPRINGDTW_CHECK(!values.empty());
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<PaaSegment> segments;
  segments.reserve(static_cast<size_t>((n + segment_size - 1) /
                                       segment_size));
  for (int64_t start = 0; start < n; start += segment_size) {
    const int64_t end = std::min(n, start + segment_size);
    PaaSegment segment;
    segment.length = end - start;
    segment.min = values[static_cast<size_t>(start)];
    segment.max = segment.min;
    double sum = 0.0;
    for (int64_t i = start; i < end; ++i) {
      const double v = values[static_cast<size_t>(i)];
      sum += v;
      segment.min = std::min(segment.min, v);
      segment.max = std::max(segment.max, v);
    }
    segment.mean = sum / static_cast<double>(segment.length);
    segments.push_back(segment);
  }
  return segments;
}

std::vector<double> PaaReconstruct(const std::vector<PaaSegment>& segments) {
  std::vector<double> out;
  for (const PaaSegment& segment : segments) {
    out.insert(out.end(), static_cast<size_t>(segment.length), segment.mean);
  }
  return out;
}

double PaaError(std::span<const double> values, int64_t segment_size) {
  const std::vector<double> reconstructed =
      PaaReconstruct(PaaReduce(values, segment_size));
  SPRINGDTW_CHECK_EQ(reconstructed.size(), values.size());
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - reconstructed[i];
    total += d * d;
  }
  return total / static_cast<double>(values.size());
}

}  // namespace ts
}  // namespace springdtw
