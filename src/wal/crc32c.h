#ifndef SPRINGDTW_WAL_CRC32C_H_
#define SPRINGDTW_WAL_CRC32C_H_

#include <cstdint>
#include <span>

namespace springdtw {
namespace wal {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) over `bytes`.
/// Software table implementation — the WAL frames records at well under
/// disk bandwidth, so hardware CRC instructions are not worth a dispatch
/// layer here. The value matches the widely deployed CRC32C so segments
/// are checkable with standard tooling.
uint32_t Crc32c(std::span<const uint8_t> bytes);

/// Incremental form: extends `crc` (a previous Crc32c/Crc32cExtend result)
/// with `bytes`. Crc32c(a+b) == Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, std::span<const uint8_t> bytes);

}  // namespace wal
}  // namespace springdtw

#endif  // SPRINGDTW_WAL_CRC32C_H_
