#ifndef SPRINGDTW_WAL_RECORD_H_
#define SPRINGDTW_WAL_RECORD_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace springdtw {
namespace wal {

/// ## WAL record framing (docs/DURABILITY.md)
///
/// A segment file is a flat sequence of CRC-framed records:
///
///     u32 len | u32 crc32c | u8 type | body[len - 1]
///
/// little-endian, `len` counting the type byte plus the body, `crc32c`
/// covering [type..body]. The frame is self-delimiting and self-checking,
/// which is all torn-tail recovery needs: scan forward, stop at the first
/// frame that is truncated, oversized, or fails its CRC, and the bytes
/// before that point are exactly the records that were durably written.
/// Bodies are util/codec payloads (varints, IEEE doubles).

enum class RecordType : uint8_t {
  /// First record of every segment: magic, format version, shard, index.
  kSegmentHeader = 1,
  /// A run of accepted tick values for one stream, with the global
  /// sequence number of the first value. Ordered by seq0 within a shard.
  kTicks = 2,
  /// Match-delivery watermark: every match with (seq, query id) at or
  /// below this was fully flushed to all subscribers.
  kDeliveryMark = 3,
};

inline constexpr uint32_t kSegmentMagic = 0x4C415753;  // "SWAL" on disk.
inline constexpr uint32_t kWalFormatVersion = 1;
/// u32 len + u32 crc + u8 type.
inline constexpr size_t kRecordHeaderBytes = 9;
/// Upper bound on `len`; anything larger is treated as corruption. Bounds
/// the allocation a hostile segment can demand (fuzz/fuzz_wal.cc).
inline constexpr uint32_t kMaxRecordLen = (1u << 20) + 1;

/// Frames `body` as one record of `type` and appends it to `out`.
void AppendRecord(RecordType type, std::span<const uint8_t> body,
                  std::vector<uint8_t>* out);

/// One validated record, viewing the scanned buffer.
struct RecordView {
  RecordType type = RecordType::kTicks;
  std::span<const uint8_t> body;
};

/// Result of scanning one segment's bytes. `records` holds every valid
/// record in file order; `valid_bytes` is the length of the byte prefix
/// they occupy; `torn` is set when bytes remained past the valid prefix
/// (truncated, oversized, CRC-corrupt, or unknown-typed frame).
struct ScanResult {
  std::vector<RecordView> records;
  size_t valid_bytes = 0;
  bool torn = false;
};

/// Scans a segment buffer. Never fails: hostile input just shortens the
/// valid prefix. The returned views alias `bytes`.
ScanResult ScanRecords(std::span<const uint8_t> bytes);

/// ## Typed payloads

struct SegmentHeader {
  uint64_t shard = 0;
  uint64_t index = 0;

  std::vector<uint8_t> Encode() const;
  util::Status DecodeFrom(std::span<const uint8_t> body);
};

struct TicksRecord {
  uint64_t seq0 = 0;
  int64_t stream_id = 0;
  std::vector<double> values;

  std::vector<uint8_t> Encode() const;
  util::Status DecodeFrom(std::span<const uint8_t> body);
};

struct DeliveryMark {
  uint64_t seq = 0;
  int64_t query_id = 0;

  std::vector<uint8_t> Encode() const;
  util::Status DecodeFrom(std::span<const uint8_t> body);
};

/// ## Segment file naming
///
/// Tick segments are `wal-<shard>-<index>.log`, delivery marks
/// `marks-<index>.log`; indexes increase monotonically for the lifetime of
/// a directory (rotation and truncation never reuse a name, so a crashed
/// truncation cannot resurrect stale bytes under a live name).

std::string SegmentFileName(int64_t shard, uint64_t index);
std::string MarksFileName(uint64_t index);
/// Parses either name form. Returns false for foreign files. `shard` is
/// -1 for marks files.
bool ParseWalFileName(const std::string& name, int64_t* shard,
                      uint64_t* index);

}  // namespace wal
}  // namespace springdtw

#endif  // SPRINGDTW_WAL_RECORD_H_
