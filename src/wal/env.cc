#include "wal/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace springdtw {
namespace wal {
namespace {

util::Status ErrnoError(const std::string& op, const std::string& path) {
  return util::IoError(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  util::Status Append(std::span<const uint8_t> bytes) override {
    if (fd_ < 0) return util::FailedPreconditionError("file closed: " + path_);
    const uint8_t* data = bytes.data();
    size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("write", path_);
      }
      data += n;
      left -= static_cast<size_t>(n);
    }
    return util::Status::Ok();
  }

  util::Status Sync() override {
    if (fd_ < 0) return util::FailedPreconditionError("file closed: " + path_);
    if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
    return util::Status::Ok();
  }

  util::Status Close() override {
    if (fd_ < 0) return util::Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoError("close", path_);
    return util::Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags =
        O_CREAT | O_WRONLY | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
    int fd = -1;
    do {
      fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return ErrnoError("open", path);
    return util::StatusOr<std::unique_ptr<WritableFile>>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  util::StatusOr<std::vector<uint8_t>> ReadFile(
      const std::string& path) override {
    int fd = -1;
    do {
      fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      if (errno == ENOENT) return util::NotFoundError("no such file: " + path);
      return ErrnoError("open", path);
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        const util::Status status = ErrnoError("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), chunk, chunk + n);
    }
    ::close(fd);
    return bytes;
  }

  util::StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) return ErrnoError("opendir", dir);
    std::vector<std::string> names;
    errno = 0;
    while (struct dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    const bool read_failed = errno != 0;
    ::closedir(handle);
    if (read_failed) return ErrnoError("readdir", dir);
    return names;
  }

  util::Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return util::Status::Ok();
    }
    return ErrnoError("mkdir", dir);
  }

  util::Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoError("unlink", path);
    return util::Status::Ok();
  }

  util::Status RenameFile(const std::string& from,
                          const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("rename", from + " -> " + to);
    }
    return util::Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  util::Status SyncDir(const std::string& dir) override {
    int fd = -1;
    do {
      fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return ErrnoError("open dir", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoError("fsync dir", dir);
    return util::Status::Ok();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

util::Status AtomicWriteFile(Env* env, const std::string& path,
                             std::span<const uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  SPRINGDTW_RETURN_IF_ERROR((*file)->Append(bytes));
  SPRINGDTW_RETURN_IF_ERROR((*file)->Sync());
  SPRINGDTW_RETURN_IF_ERROR((*file)->Close());
  SPRINGDTW_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return env->SyncDir(dir);
}

}  // namespace wal
}  // namespace springdtw
