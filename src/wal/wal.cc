#include "wal/wal.h"

#include <algorithm>
#include <map>
#include <utility>

namespace springdtw {
namespace wal {
namespace {

/// LEB128, byte-identical to util::ByteWriter::WriteVarU64 — AppendTicks
/// encodes into a reusable scratch and must match TicksRecord::Encode.
void AppendVarU64(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

}  // namespace

util::StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "every_record") return FsyncPolicy::kEveryRecord;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "os") return FsyncPolicy::kOs;
  return util::InvalidArgumentError("unknown fsync policy: " +
                                    std::string(name));
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every_record";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kOs:
      return "os";
  }
  return "unknown";
}

WalWriter::WalWriter(const WalOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

WalWriter::~WalWriter() {
  for (Segment& segment : shards_) {
    if (segment.file != nullptr) (void)segment.file->Close();
  }
  if (marks_.file != nullptr) (void)marks_.file->Close();
}

util::StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const WalOptions& options) {
  if (options.num_shards < 1) {
    return util::InvalidArgumentError("WAL needs at least one shard");
  }
  auto writer = std::make_unique<WalWriter>(options);
  Env* env = writer->env_;
  SPRINGDTW_RETURN_IF_ERROR(env->CreateDir(options.dir));
  // Resume indexes past anything on disk so names are never reused.
  auto names = env->ListDir(options.dir);
  if (!names.ok()) return names.status();
  uint64_t max_index = 0;
  bool any = false;
  for (const std::string& name : *names) {
    int64_t shard = 0;
    uint64_t index = 0;
    if (ParseWalFileName(name, &shard, &index)) {
      max_index = std::max(max_index, index);
      any = true;
    }
  }
  writer->next_index_ = any ? max_index + 1 : 0;
  writer->shards_.resize(static_cast<size_t>(options.num_shards));
  for (int64_t shard = 0; shard < options.num_shards; ++shard) {
    SPRINGDTW_RETURN_IF_ERROR(
        writer->OpenSegment(shard, writer->next_index_++));
  }
  SPRINGDTW_RETURN_IF_ERROR(writer->OpenMarks(writer->next_index_++));
  // Make the new names themselves durable before accepting traffic.
  SPRINGDTW_RETURN_IF_ERROR(env->SyncDir(options.dir));
  return util::StatusOr<std::unique_ptr<WalWriter>>(std::move(writer));
}

util::Status WalWriter::OpenSegment(int64_t shard, uint64_t index) {
  Segment& segment = shards_[static_cast<size_t>(shard)];
  if (segment.file != nullptr) {
    SPRINGDTW_RETURN_IF_ERROR(segment.file->Close());
    segment.file = nullptr;
  }
  const std::string path = options_.dir + "/" + SegmentFileName(shard, index);
  auto file = env_->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  segment.file = std::move(*file);
  segment.index = index;
  segment.bytes = 0;
  segment.dirty = false;
  SegmentHeader header;
  header.shard = static_cast<uint64_t>(shard);
  header.index = index;
  return AppendFramed(&segment, RecordType::kSegmentHeader, header.Encode());
}

util::Status WalWriter::OpenMarks(uint64_t index) {
  if (marks_.file != nullptr) {
    SPRINGDTW_RETURN_IF_ERROR(marks_.file->Close());
    marks_.file = nullptr;
  }
  const std::string path = options_.dir + "/" + MarksFileName(index);
  auto file = env_->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  marks_.file = std::move(*file);
  marks_.index = index;
  marks_.bytes = 0;
  marks_.dirty = false;
  return util::Status::Ok();
}

util::Status WalWriter::AppendFramed(Segment* segment, RecordType type,
                                     std::span<const uint8_t> body) {
  frame_scratch_.clear();
  AppendRecord(type, body, &frame_scratch_);
  SPRINGDTW_RETURN_IF_ERROR(segment->file->Append(frame_scratch_));
  segment->bytes += static_cast<int64_t>(frame_scratch_.size());
  segment->dirty = true;
  if (type != RecordType::kSegmentHeader) {
    // Payload records only: headers are file structure, and ticks + marks
    // is the number operators reconcile against ingest counters.
    // order: relaxed — scrape-side counter, never synchronization.
    appended_records_.fetch_add(1, std::memory_order_relaxed);
  }
  // order: relaxed — scrape-side counter.
  bytes_.fetch_add(static_cast<int64_t>(frame_scratch_.size()),
                   std::memory_order_relaxed);
  if (options_.fsync == FsyncPolicy::kEveryRecord) {
    return SyncSegment(segment);
  }
  return util::Status::Ok();
}

util::Status WalWriter::SyncSegment(Segment* segment) {
  if (!segment->dirty) return util::Status::Ok();
  SPRINGDTW_RETURN_IF_ERROR(segment->file->Sync());
  segment->dirty = false;
  // order: relaxed — scrape-side counter.
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return util::Status::Ok();
}

util::Status WalWriter::AppendTicks(int64_t shard, uint64_t seq0,
                                    int64_t stream_id,
                                    std::span<const double> values) {
  if (shard < 0 || shard >= static_cast<int64_t>(shards_.size())) {
    return util::OutOfRangeError("WAL shard out of range");
  }
  Segment& segment = shards_[static_cast<size_t>(shard)];
  if (segment.bytes >= options_.segment_bytes) {
    SPRINGDTW_RETURN_IF_ERROR(OpenSegment(shard, next_index_++));
    SPRINGDTW_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  }
  // Hot path: encode straight into the reusable body scratch instead of
  // materializing a TicksRecord (which would copy the values once into the
  // record and again into ByteWriter's freshly allocated buffer). The
  // layout must stay byte-identical to TicksRecord::Encode — raw IEEE
  // doubles are exactly what WriteDouble emits on little-endian hosts.
  body_scratch_.clear();
  AppendVarU64(seq0, &body_scratch_);
  AppendVarU64(static_cast<uint64_t>(stream_id), &body_scratch_);
  AppendVarU64(values.size(), &body_scratch_);
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(values.data());
  body_scratch_.insert(body_scratch_.end(), raw,
                       raw + values.size() * sizeof(double));
  return AppendFramed(&shards_[static_cast<size_t>(shard)],
                      RecordType::kTicks, body_scratch_);
}

util::Status WalWriter::AppendDeliveryMark(uint64_t seq, int64_t query_id) {
  DeliveryMark mark;
  mark.seq = seq;
  mark.query_id = query_id;
  return AppendFramed(&marks_, RecordType::kDeliveryMark, mark.Encode());
}

util::Status WalWriter::MaybeSync(uint64_t now_nanos) {
  if (options_.fsync != FsyncPolicy::kInterval) return util::Status::Ok();
  const uint64_t interval_nanos =
      static_cast<uint64_t>(options_.fsync_interval_ms) * 1000000ull;
  if (now_nanos - last_sync_nanos_ < interval_nanos) return util::Status::Ok();
  last_sync_nanos_ = now_nanos;
  return SyncAll();
}

util::Status WalWriter::SyncAll() {
  for (Segment& segment : shards_) {
    SPRINGDTW_RETURN_IF_ERROR(SyncSegment(&segment));
  }
  return SyncSegment(&marks_);
}

util::Status WalWriter::Truncate() {
  // Close current files, then delete every WAL-owned file, then start
  // fresh segments. A crash between the deletes and the new segments only
  // leaves stale files, which recovery skips by sequence number.
  for (Segment& segment : shards_) {
    if (segment.file != nullptr) {
      SPRINGDTW_RETURN_IF_ERROR(segment.file->Close());
      segment.file = nullptr;
    }
  }
  if (marks_.file != nullptr) {
    SPRINGDTW_RETURN_IF_ERROR(marks_.file->Close());
    marks_.file = nullptr;
  }
  auto names = env_->ListDir(options_.dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    int64_t shard = 0;
    uint64_t index = 0;
    if (!ParseWalFileName(name, &shard, &index)) continue;
    SPRINGDTW_RETURN_IF_ERROR(env_->RemoveFile(options_.dir + "/" + name));
  }
  for (int64_t shard = 0;
       shard < static_cast<int64_t>(shards_.size()); ++shard) {
    SPRINGDTW_RETURN_IF_ERROR(OpenSegment(shard, next_index_++));
  }
  SPRINGDTW_RETURN_IF_ERROR(OpenMarks(next_index_++));
  SPRINGDTW_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  // order: relaxed — scrape-side counter.
  truncations_.fetch_add(1, std::memory_order_relaxed);
  return util::Status::Ok();
}

void WalWriter::RecordReplayedRecords(int64_t records) {
  // order: relaxed — scrape-side counter.
  replayed_records_.fetch_add(records, std::memory_order_relaxed);
}

obs::MetricsSnapshot WalWriter::MetricsSnapshot() const {
  // Built from atomics on the fly, because obs::Counter is single-threaded
  // and this runs on whatever thread scrapes /metrics.
  obs::MetricsSnapshot snapshot;
  const auto add = [&snapshot](const char* name, const char* help,
                               const std::atomic<int64_t>& value) {
    obs::FamilySnapshot family;
    family.name = name;
    family.help = help;
    family.kind = obs::MetricKind::kCounter;
    obs::SeriesSnapshot series;
    // order: relaxed — counter exposition; never synchronization.
    series.counter_value = value.load(std::memory_order_relaxed);
    family.series.push_back(std::move(series));
    snapshot.families.push_back(std::move(family));
  };
  add("spring_wal_appended_records_total",
      "records appended to the write-ahead log", appended_records_);
  add("spring_wal_fsyncs_total", "fsync calls issued by the WAL", fsyncs_);
  add("spring_wal_bytes_total", "bytes appended to the WAL", bytes_);
  add("spring_wal_replayed_records_total",
      "WAL records replayed during recovery", replayed_records_);
  add("spring_wal_truncations_total",
      "WAL truncations (checkpoint-driven segment resets)", truncations_);
  return snapshot;
}

namespace {

/// One tick record located during the scan, pre-merge.
struct ScannedChunk {
  uint64_t seq0 = 0;
  int64_t stream_id = 0;
  std::vector<double> values;
};

}  // namespace

util::StatusOr<RecoveredWal> RecoverWal(Env* env, const std::string& dir,
                                        uint64_t start_seq) {
  if (env == nullptr) env = Env::Default();
  RecoveredWal out;
  // A missing directory is simply an empty log.
  if (!env->FileExists(dir)) return out;
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  // Segment files per shard in index order; marks files in index order.
  std::map<int64_t, std::map<uint64_t, std::string>> shard_files;
  std::map<uint64_t, std::string> marks_files;
  for (const std::string& name : *names) {
    int64_t shard = 0;
    uint64_t index = 0;
    if (!ParseWalFileName(name, &shard, &index)) continue;
    if (shard < 0) {
      marks_files[index] = dir + "/" + name;
    } else {
      shard_files[shard][index] = dir + "/" + name;
    }
  }

  std::vector<ScannedChunk> chunks;
  for (const auto& [shard, files] : shard_files) {
    bool shard_torn = false;
    for (const auto& [index, path] : files) {
      // A torn segment ends this shard's usable history: later segments
      // would reintroduce a gap that the contiguity cut below handles, but
      // scanning them is pointless once the tail is known broken.
      if (shard_torn) break;
      auto bytes = env->ReadFile(path);
      if (!bytes.ok()) {
        shard_torn = true;
        out.torn_tail = true;
        break;
      }
      ++out.segments;
      const ScanResult scan = ScanRecords(*bytes);
      out.bytes_scanned += static_cast<int64_t>(scan.valid_bytes);
      if (scan.torn) {
        shard_torn = true;
        out.torn_tail = true;
      }
      for (const RecordView& record : scan.records) {
        ++out.records_scanned;
        if (record.type != RecordType::kTicks) continue;
        TicksRecord ticks;
        if (!ticks.DecodeFrom(record.body).ok()) {
          // Framed correctly but not a decodable payload: treat like a
          // torn tail at this point of the shard.
          shard_torn = true;
          out.torn_tail = true;
          break;
        }
        if (ticks.values.empty()) continue;
        ScannedChunk chunk;
        chunk.seq0 = ticks.seq0;
        chunk.stream_id = ticks.stream_id;
        chunk.values = std::move(ticks.values);
        chunks.push_back(std::move(chunk));
      }
    }
  }

  // Merge all shards' records into global sequence order and keep the
  // longest gap-free run from start_seq. Records fully below start_seq are
  // history already inside the checkpoint (or stale segments from before a
  // truncation); a straddling record replays only its suffix.
  std::sort(chunks.begin(), chunks.end(),
            [](const ScannedChunk& a, const ScannedChunk& b) {
              return a.seq0 < b.seq0;
            });
  uint64_t expected = start_seq;
  for (ScannedChunk& chunk : chunks) {
    const uint64_t count = chunk.values.size();
    if (chunk.seq0 + count <= expected) continue;
    if (chunk.seq0 > expected) break;  // Gap: a shard lost its tail here.
    const uint64_t skip = expected - chunk.seq0;
    RecoveredChunk keep;
    keep.seq0 = expected;
    keep.stream_id = chunk.stream_id;
    keep.values.assign(chunk.values.begin() + static_cast<int64_t>(skip),
                       chunk.values.end());
    expected += count - skip;
    out.values += static_cast<int64_t>(keep.values.size());
    ++out.records_replayed;
    out.chunks.push_back(std::move(keep));
  }

  // Delivery watermark: the highest valid mark across all marks files.
  for (const auto& [index, path] : marks_files) {
    auto bytes = env->ReadFile(path);
    if (!bytes.ok()) {
      out.torn_tail = true;
      continue;
    }
    const ScanResult scan = ScanRecords(*bytes);
    out.bytes_scanned += static_cast<int64_t>(scan.valid_bytes);
    if (scan.torn) out.torn_tail = true;
    for (const RecordView& record : scan.records) {
      ++out.records_scanned;
      if (record.type != RecordType::kDeliveryMark) continue;
      DeliveryMark mark;
      if (!mark.DecodeFrom(record.body).ok()) break;
      if (!out.has_watermark || mark.seq > out.watermark_seq ||
          (mark.seq == out.watermark_seq &&
           mark.query_id > out.watermark_query_id)) {
        out.has_watermark = true;
        out.watermark_seq = mark.seq;
        out.watermark_query_id = mark.query_id;
      }
    }
  }
  return out;
}

}  // namespace wal
}  // namespace springdtw
