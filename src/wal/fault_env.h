#ifndef SPRINGDTW_WAL_FAULT_ENV_H_
#define SPRINGDTW_WAL_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "wal/env.h"

namespace springdtw {
namespace wal {

/// Env decorator that deterministically injects the failure modes a real
/// disk exhibits under crash and power loss, so the torn-write property
/// tests and crash suite (tests/wal_test.cc) can exercise recovery without
/// actually killing processes:
///
///   - write budget: after `set_write_budget(n)` total appended bytes, the
///     next Append persists only the remaining budget (a torn/short write)
///     and fails — modelling a crash mid-write;
///   - sync failures: `fail_syncs_after(n)` makes every Sync past the nth
///     return kIoError — modelling a dying device or full disk;
///
/// plus counters (`syncs()`, `bytes_written()`) that let tests assert the
/// fsync policies actually issue the syncs they promise.
///
/// Single-threaded by design, like the WAL writer it stands behind: the
/// router thread owns all appends, so the counters need no locking.
class FaultInjectingEnv : public Env {
 public:
  /// `base` is not owned and must outlive this env.
  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  util::StatusOr<std::vector<uint8_t>> ReadFile(
      const std::string& path) override;
  util::StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) override;
  util::Status CreateDir(const std::string& dir) override;
  util::Status RemoveFile(const std::string& path) override;
  util::Status RenameFile(const std::string& from,
                          const std::string& to) override;
  bool FileExists(const std::string& path) override;
  util::Status SyncDir(const std::string& dir) override;

  /// Total appended bytes (across all files) allowed to reach the base env
  /// from now on; the append that crosses the budget is torn at the
  /// boundary and returns kIoError. Negative disables the fault (default).
  void set_write_budget(int64_t bytes) { write_budget_ = bytes; }
  /// Every Sync/SyncDir after the next `n` successful ones fails.
  /// Negative disables the fault (default).
  void fail_syncs_after(int64_t n) { syncs_until_failure_ = n; }

  int64_t syncs() const { return syncs_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  friend class FaultWritableFile;

  /// Admits up to `want` bytes against the write budget; returns how many
  /// may be written (== want when no fault is armed).
  size_t AdmitWrite(size_t want);
  util::Status AdmitSync();

  Env* base_;
  int64_t write_budget_ = -1;
  int64_t syncs_until_failure_ = -1;
  int64_t syncs_ = 0;
  int64_t bytes_written_ = 0;
};

}  // namespace wal
}  // namespace springdtw

#endif  // SPRINGDTW_WAL_FAULT_ENV_H_
