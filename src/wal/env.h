#ifndef SPRINGDTW_WAL_ENV_H_
#define SPRINGDTW_WAL_ENV_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace springdtw {
namespace wal {

/// Append-only output file. Append buffers nothing: every call reaches the
/// kernel (write(2)) before returning, so durability is governed purely by
/// when Sync() runs — the property the WAL's fsync policies are built on.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  virtual util::Status Append(std::span<const uint8_t> bytes) = 0;
  /// fsync(2): blocks until everything appended so far is on stable
  /// storage.
  virtual util::Status Sync() = 0;
  virtual util::Status Close() = 0;
};

/// Minimal filesystem abstraction for the WAL: every byte the durability
/// layer reads or writes goes through one of these, which is what lets the
/// crash tests substitute FaultInjectingEnv and deterministically simulate
/// torn writes, short writes, and fsync failures (docs/DURABILITY.md).
class Env {
 public:
  virtual ~Env() = default;

  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Opens `path` for appending; `truncate` discards existing contents.
  /// Creates the file when absent.
  virtual util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;
  /// Whole-file read. kNotFound when the file does not exist.
  virtual util::StatusOr<std::vector<uint8_t>> ReadFile(
      const std::string& path) = 0;
  /// Regular-file names (not paths) in `dir`, unsorted.
  virtual util::StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;
  /// mkdir -p semantics for one level: OK when the directory exists.
  virtual util::Status CreateDir(const std::string& dir) = 0;
  virtual util::Status RemoveFile(const std::string& path) = 0;
  /// rename(2): atomic replace within one filesystem.
  virtual util::Status RenameFile(const std::string& from,
                                  const std::string& to) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// fsyncs the directory itself so renames/creates/unlinks inside it
  /// survive power loss.
  virtual util::Status SyncDir(const std::string& dir) = 0;

  /// Process-wide POSIX implementation; never destroyed.
  static Env* Default();
};

/// Crash-safe whole-file publish: writes `bytes` to `path.tmp`, fsyncs it,
/// renames over `path`, and fsyncs the containing directory. A crash at any
/// point leaves either the old complete file or the new complete file —
/// how checkpoints are written next to the WAL.
util::Status AtomicWriteFile(Env* env, const std::string& path,
                             std::span<const uint8_t> bytes);

}  // namespace wal
}  // namespace springdtw

#endif  // SPRINGDTW_WAL_ENV_H_
