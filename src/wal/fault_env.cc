#include "wal/fault_env.h"

#include <algorithm>
#include <utility>

namespace springdtw {
namespace wal {

/// Forwards to the base file, consulting the owning env's faults first.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  util::Status Append(std::span<const uint8_t> bytes) override {
    const size_t admitted = env_->AdmitWrite(bytes.size());
    if (admitted > 0) {
      SPRINGDTW_RETURN_IF_ERROR(base_->Append(bytes.first(admitted)));
      env_->bytes_written_ += static_cast<int64_t>(admitted);
    }
    if (admitted < bytes.size()) {
      return util::IoError("injected torn write");
    }
    return util::Status::Ok();
  }

  util::Status Sync() override {
    SPRINGDTW_RETURN_IF_ERROR(env_->AdmitSync());
    return base_->Sync();
  }

  util::Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

size_t FaultInjectingEnv::AdmitWrite(size_t want) {
  if (write_budget_ < 0) return want;
  const size_t admitted =
      std::min(want, static_cast<size_t>(write_budget_));
  write_budget_ -= static_cast<int64_t>(admitted);
  return admitted;
}

util::Status FaultInjectingEnv::AdmitSync() {
  if (syncs_until_failure_ >= 0) {
    if (syncs_until_failure_ == 0) return util::IoError("injected fsync failure");
    --syncs_until_failure_;
  }
  ++syncs_;
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<WritableFile>>
FaultInjectingEnv::NewWritableFile(const std::string& path, bool truncate) {
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return util::StatusOr<std::unique_ptr<WritableFile>>(
      std::make_unique<FaultWritableFile>(std::move(*base), this));
}

util::StatusOr<std::vector<uint8_t>> FaultInjectingEnv::ReadFile(
    const std::string& path) {
  return base_->ReadFile(path);
}

util::StatusOr<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

util::Status FaultInjectingEnv::CreateDir(const std::string& dir) {
  return base_->CreateDir(dir);
}

util::Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

util::Status FaultInjectingEnv::RenameFile(const std::string& from,
                                           const std::string& to) {
  return base_->RenameFile(from, to);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

util::Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  SPRINGDTW_RETURN_IF_ERROR(AdmitSync());
  return base_->SyncDir(dir);
}

}  // namespace wal
}  // namespace springdtw
