#include "wal/record.h"

#include <cstdio>
#include <cstring>

#include "util/codec.h"
#include "wal/crc32c.h"

namespace springdtw {
namespace wal {
namespace {

void PutU32(uint32_t value, std::vector<uint8_t>* out) {
  uint8_t raw[4];
  std::memcpy(raw, &value, sizeof raw);  // Little-endian hosts only (as codec).
  out->insert(out->end(), raw, raw + sizeof raw);
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t value = 0;
  std::memcpy(&value, data, sizeof value);
  return value;
}

util::Status CheckDecode(const util::ByteReader& reader, const char* what) {
  if (!reader.ok()) {
    return util::InvalidArgumentError(std::string(what) + " record truncated");
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError(std::string(what) +
                                      " record has trailing bytes");
  }
  return util::Status::Ok();
}

}  // namespace

void AppendRecord(RecordType type, std::span<const uint8_t> body,
                  std::vector<uint8_t>* out) {
  const uint32_t len = static_cast<uint32_t>(body.size()) + 1;
  PutU32(len, out);
  const uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = Crc32c(std::span<const uint8_t>(&type_byte, 1));
  crc = Crc32cExtend(crc, body);
  PutU32(crc, out);
  out->push_back(type_byte);
  out->insert(out->end(), body.begin(), body.end());
}

ScanResult ScanRecords(std::span<const uint8_t> bytes) {
  ScanResult result;
  size_t at = 0;
  while (bytes.size() - at >= kRecordHeaderBytes) {
    const uint32_t len = GetU32(bytes.data() + at);
    if (len < 1 || len > kMaxRecordLen ||
        bytes.size() - at - 8 < static_cast<size_t>(len)) {
      break;  // Truncated or oversized frame: torn tail starts here.
    }
    const uint32_t crc = GetU32(bytes.data() + at + 4);
    const std::span<const uint8_t> framed = bytes.subspan(at + 8, len);
    if (Crc32c(framed) != crc) break;
    const uint8_t type_byte = framed[0];
    if (type_byte < static_cast<uint8_t>(RecordType::kSegmentHeader) ||
        type_byte > static_cast<uint8_t>(RecordType::kDeliveryMark)) {
      break;  // Unknown type: written by a future format; stop, don't guess.
    }
    RecordView view;
    view.type = static_cast<RecordType>(type_byte);
    view.body = framed.subspan(1);
    result.records.push_back(view);
    at += 8 + static_cast<size_t>(len);
  }
  result.valid_bytes = at;
  result.torn = at != bytes.size();
  return result;
}

std::vector<uint8_t> SegmentHeader::Encode() const {
  util::ByteWriter writer;
  writer.WriteU32(kSegmentMagic);
  writer.WriteVarU64(kWalFormatVersion);
  writer.WriteVarU64(shard);
  writer.WriteVarU64(index);
  return writer.Take();
}

util::Status SegmentHeader::DecodeFrom(std::span<const uint8_t> body) {
  util::ByteReader reader(body);
  uint32_t magic = 0;
  uint64_t version = 0;
  reader.ReadU32(&magic);
  reader.ReadVarU64(&version);
  reader.ReadVarU64(&shard);
  reader.ReadVarU64(&index);
  SPRINGDTW_RETURN_IF_ERROR(CheckDecode(reader, "segment header"));
  if (magic != kSegmentMagic) {
    return util::InvalidArgumentError("bad WAL segment magic");
  }
  if (version != kWalFormatVersion) {
    return util::InvalidArgumentError("unsupported WAL format version");
  }
  return util::Status::Ok();
}

std::vector<uint8_t> TicksRecord::Encode() const {
  util::ByteWriter writer;
  writer.WriteVarU64(seq0);
  writer.WriteVarU64(static_cast<uint64_t>(stream_id));
  writer.WriteVarU64(values.size());
  for (double value : values) writer.WriteDouble(value);
  return writer.Take();
}

util::Status TicksRecord::DecodeFrom(std::span<const uint8_t> body) {
  util::ByteReader reader(body);
  uint64_t stream = 0;
  uint64_t count = 0;
  reader.ReadVarU64(&seq0);
  reader.ReadVarU64(&stream);
  reader.ReadVarU64(&count);
  // Count is validated against the bytes actually present before any
  // allocation (hostile-input rule, as util/codec's length prefixes).
  if (!reader.ok() || count > reader.remaining() / sizeof(double)) {
    return util::InvalidArgumentError("ticks record truncated");
  }
  stream_id = static_cast<int64_t>(stream);
  values.clear();
  values.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    double value = 0.0;
    reader.ReadDouble(&value);
    values.push_back(value);
  }
  return CheckDecode(reader, "ticks");
}

std::vector<uint8_t> DeliveryMark::Encode() const {
  util::ByteWriter writer;
  writer.WriteVarU64(seq);
  writer.WriteVarU64(static_cast<uint64_t>(query_id));
  return writer.Take();
}

util::Status DeliveryMark::DecodeFrom(std::span<const uint8_t> body) {
  util::ByteReader reader(body);
  uint64_t query = 0;
  reader.ReadVarU64(&seq);
  reader.ReadVarU64(&query);
  query_id = static_cast<int64_t>(query);
  return CheckDecode(reader, "delivery mark");
}

std::string SegmentFileName(int64_t shard, uint64_t index) {
  char name[64];
  std::snprintf(name, sizeof name, "wal-%lld-%llu.log",
                static_cast<long long>(shard),
                static_cast<unsigned long long>(index));
  return name;
}

std::string MarksFileName(uint64_t index) {
  char name[64];
  std::snprintf(name, sizeof name, "marks-%llu.log",
                static_cast<unsigned long long>(index));
  return name;
}

bool ParseWalFileName(const std::string& name, int64_t* shard,
                      uint64_t* index) {
  long long parsed_shard = 0;
  unsigned long long parsed_index = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%lld-%llu.log%n", &parsed_shard,
                  &parsed_index, &consumed) == 2 &&
      consumed == static_cast<int>(name.size()) && parsed_shard >= 0) {
    *shard = parsed_shard;
    *index = parsed_index;
    return true;
  }
  consumed = 0;
  if (std::sscanf(name.c_str(), "marks-%llu.log%n", &parsed_index,
                  &consumed) == 1 &&
      consumed == static_cast<int>(name.size())) {
    *shard = -1;
    *index = parsed_index;
    return true;
  }
  return false;
}

}  // namespace wal
}  // namespace springdtw
