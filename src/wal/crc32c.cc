#include "wal/crc32c.h"

#include <array>
#include <cstddef>

namespace springdtw {
namespace wal {
namespace {

/// Reflected CRC-32C table, built once at first use. constexpr-built so the
/// table lives in rodata and there is no init-order hazard.
constexpr std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78;  // 0x1EDC6F41 bit-reflected.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

#if defined(__x86_64__)
/// SSE4.2 CRC32 instruction path: 8 bytes per instruction instead of one
/// table lookup per byte. The instruction computes the same reflected
/// CRC-32C recurrence as the table, so it composes with the byte loop and
/// the ~pre/~post inversion applied by the callers below. Compiled with a
/// target attribute and guarded by a cpuid check so the binary still runs
/// on pre-Nehalem hardware.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    uint32_t crc, std::span<const uint8_t> bytes) {
  uint64_t c = crc;
  const uint8_t* at = bytes.data();
  size_t n = bytes.size();
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, at, sizeof(word));
    c = __builtin_ia32_crc32di(c, word);
    at += sizeof(word);
    n -= sizeof(word);
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *at);
    ++at;
    --n;
  }
  return c32;
}

bool HaveHardwareCrc() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::span<const uint8_t> bytes) {
  crc = ~crc;
#if defined(__x86_64__)
  static const bool have_hardware = HaveHardwareCrc();
  if (have_hardware) {
    return ~Crc32cHardware(crc, bytes);
  }
#endif
  for (uint8_t byte : bytes) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::span<const uint8_t> bytes) {
  return Crc32cExtend(0, bytes);
}

}  // namespace wal
}  // namespace springdtw
