#ifndef SPRINGDTW_WAL_WAL_H_
#define SPRINGDTW_WAL_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"
#include "wal/env.h"
#include "wal/record.h"

namespace springdtw {
namespace wal {

/// When appended records reach stable storage (docs/DURABILITY.md):
///
///   every_record  fsync after every append — zero accepted-tick loss on
///                 kill -9 or power loss; slowest.
///   interval      fsync all dirty segments at most every
///                 `fsync_interval_ms` — bounded loss window, near-os
///                 throughput.
///   os            never fsync; the kernel flushes on its own schedule —
///                 zero loss on process kill -9 (the page cache survives),
///                 bounded loss on power failure; fastest.
enum class FsyncPolicy { kEveryRecord, kInterval, kOs };

/// Parses "every_record" / "interval" / "os".
util::StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view name);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  /// Directory holding segments, marks, and (by convention) the
  /// checkpoint. Created if absent.
  std::string dir;
  /// One tick segment per monitor shard, so per-shard append streams stay
  /// sequential on disk.
  int64_t num_shards = 1;
  FsyncPolicy fsync = FsyncPolicy::kOs;
  int64_t fsync_interval_ms = 50;
  /// Tick segments rotate once they exceed this many bytes.
  int64_t segment_bytes = 4 << 20;
  /// File I/O goes through this; null means Env::Default(). Not owned.
  Env* env = nullptr;
};

/// Per-shard write-ahead log of accepted ticks, plus a match-delivery
/// watermark log. Single-writer: every method except MetricsSnapshot() and
/// the counter accessors must be called from the one router thread that
/// also owns the ShardedMonitor (the net server's loop thread).
///
/// Lifecycle: Open() continues after any previous incarnation (segment
/// indexes resume past the highest on disk; stale segments are skipped at
/// recovery by sequence number, not by deletion bookkeeping). Truncate()
/// is called right after a checkpoint is durably renamed into place and
/// deletes every prior segment.
class WalWriter {
 public:
  static util::StatusOr<std::unique_ptr<WalWriter>> Open(
      const WalOptions& options);
  /// Use Open(); public only for make_unique.
  explicit WalWriter(const WalOptions& options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Logs `values` accepted for `stream_id` whose first value carries
  /// global sequence number `seq0`, to shard `shard`'s segment. Under
  /// every_record the record is on stable storage when this returns.
  util::Status AppendTicks(int64_t shard, uint64_t seq0, int64_t stream_id,
                           std::span<const double> values);

  /// Logs that every match with (seq, query id) <= (seq, query_id) has
  /// been fully written to all subscribers.
  util::Status AppendDeliveryMark(uint64_t seq, int64_t query_id);

  /// interval policy: fsyncs dirty segments when the interval has elapsed
  /// since the last sync. No-op under other policies. Call once per server
  /// loop round.
  util::Status MaybeSync(uint64_t now_nanos);

  /// fsyncs everything dirty regardless of policy.
  util::Status SyncAll();

  /// Deletes every segment and marks file and starts fresh ones. Call only
  /// after a checkpoint covering all logged ticks is durably in place.
  util::Status Truncate();

  /// spring_wal_*_total counter families. Thread-safe (atomics): the
  /// introspection scrape thread calls this while the router appends.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// Adds to spring_wal_replayed_records_total — recovery runs before the
  /// writer exists, so the recovering layer reports its count here.
  void RecordReplayedRecords(int64_t records);

  int64_t appended_records() const {
    // order: relaxed — counters, never synchronization.
    return appended_records_.load(std::memory_order_relaxed);
  }
  int64_t fsyncs() const {
    // order: relaxed — see appended_records().
    return fsyncs_.load(std::memory_order_relaxed);
  }

  const WalOptions& options() const { return options_; }

 private:
  struct Segment {
    std::unique_ptr<WritableFile> file;
    uint64_t index = 0;
    int64_t bytes = 0;
    bool dirty = false;
  };

  util::Status OpenSegment(int64_t shard, uint64_t index);
  util::Status OpenMarks(uint64_t index);
  /// Appends one framed record to `segment` and applies the fsync policy.
  util::Status AppendFramed(Segment* segment, RecordType type,
                            std::span<const uint8_t> body);
  util::Status SyncSegment(Segment* segment);

  WalOptions options_;
  Env* env_ = nullptr;
  std::vector<Segment> shards_;
  Segment marks_;
  /// Next never-used segment index (shared across shards and marks so any
  /// file name is globally unique over the directory's lifetime).
  uint64_t next_index_ = 0;
  uint64_t last_sync_nanos_ = 0;

  /// Exported as spring_wal_*_total. Written by the router thread,
  /// read by the scrape thread via MetricsSnapshot().
  std::atomic<int64_t> appended_records_{0};
  std::atomic<int64_t> fsyncs_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> replayed_records_{0};
  std::atomic<int64_t> truncations_{0};

  /// Record-framing scratch, reused across appends.
  std::vector<uint8_t> frame_scratch_;
  /// Ticks-body scratch: AppendTicks encodes here directly instead of
  /// materializing a TicksRecord, sparing a copy of the values and a heap
  /// allocation per accepted batch.
  std::vector<uint8_t> body_scratch_;
};

/// One contiguous run of replayable ticks recovered from the log.
struct RecoveredChunk {
  uint64_t seq0 = 0;
  int64_t stream_id = 0;
  std::vector<double> values;
};

/// Everything recovery learned from a WAL directory.
struct RecoveredWal {
  /// Tick runs to replay, in global sequence order, starting exactly at
  /// the caller's `start_seq` and gap-free (see RecoverWal).
  std::vector<RecoveredChunk> chunks;
  /// Total values across `chunks`.
  int64_t values = 0;
  /// Records whose ticks were (at least partly) replayed.
  int64_t records_replayed = 0;
  /// Valid records scanned across all files, including skipped ones.
  int64_t records_scanned = 0;
  int64_t bytes_scanned = 0;
  int64_t segments = 0;
  /// A file ended in an invalid frame — expected after kill -9 under
  /// non-every_record policies; recovery proceeds with the valid prefix.
  bool torn_tail = false;
  /// Highest delivery watermark on disk; has_watermark false when none.
  bool has_watermark = false;
  uint64_t watermark_seq = 0;
  int64_t watermark_query_id = 0;
};

/// Scans `dir` and reconstructs the replayable tick tail for a monitor
/// whose restored checkpoint ends at global sequence `start_seq`. Never
/// fails on corrupt or torn segments — those shorten the tail; only
/// environment errors (unreadable directory) return non-OK. The returned
/// chunks are the longest gap-free run starting at `start_seq`: a shard
/// whose tail was torn truncates the global run at its first missing
/// sequence, because replay past a gap would reorder ticks relative to the
/// original execution.
util::StatusOr<RecoveredWal> RecoverWal(Env* env, const std::string& dir,
                                        uint64_t start_seq);

}  // namespace wal
}  // namespace springdtw

#endif  // SPRINGDTW_WAL_WAL_H_
