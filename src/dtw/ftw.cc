#include "dtw/ftw.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "dtw/coarse.h"

namespace springdtw {
namespace dtw {

util::StatusOr<FtwResult> MultiResolutionNearestNeighbor(
    const std::vector<ts::Series>& candidates, const ts::Series& query,
    const FtwOptions& options) {
  if (candidates.empty()) {
    return util::InvalidArgumentError(
        "MultiResolutionNearestNeighbor: no candidates");
  }
  if (query.empty()) {
    return util::InvalidArgumentError(
        "MultiResolutionNearestNeighbor: empty query");
  }
  if (options.granularities.empty()) {
    return util::InvalidArgumentError("need at least one granularity");
  }
  for (size_t g = 0; g < options.granularities.size(); ++g) {
    if (options.granularities[g] < 1) {
      return util::InvalidArgumentError("granularities must be >= 1");
    }
    if (g > 0 &&
        options.granularities[g] >= options.granularities[g - 1]) {
      return util::InvalidArgumentError(
          "granularities must be strictly decreasing");
    }
  }
  for (const ts::Series& c : candidates) {
    if (c.empty()) {
      return util::InvalidArgumentError(
          "MultiResolutionNearestNeighbor: empty candidate");
    }
  }

  FtwResult result;
  result.pruned_at_level.assign(options.granularities.size(), 0);

  // Level-0 bounds for every candidate; refine in ascending-bound order so
  // the most promising candidates run (and tighten best) first.
  const int64_t coarsest = options.granularities.front();
  std::vector<double> level0(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    level0[i] = CoarseDtwLowerBound(candidates[i].values(), query.values(),
                                    coarsest, options.dtw.local_distance);
  }
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return level0[a] < level0[b]; });

  double best = std::numeric_limits<double>::infinity();
  for (const size_t idx : order) {
    const ts::Series& candidate = candidates[idx];
    bool pruned = false;
    for (size_t g = 0; g < options.granularities.size(); ++g) {
      const double bound =
          g == 0 ? level0[idx]
                 : CoarseDtwLowerBound(candidate.values(), query.values(),
                                       options.granularities[g],
                                       options.dtw.local_distance);
      if (bound >= best) {
        ++result.pruned_at_level[g];
        pruned = true;
        break;
      }
    }
    if (pruned) continue;
    ++result.full_computations;
    const double d =
        DtwDistance(candidate.values(), query.values(), options.dtw);
    if (d < best) {
      best = d;
      result.best_index = static_cast<int64_t>(idx);
      result.best_distance = d;
    }
  }
  if (result.best_index < 0) {
    return util::FailedPreconditionError(
        "MultiResolutionNearestNeighbor: no candidate admits a warping "
        "path");
  }
  return result;
}

}  // namespace dtw
}  // namespace springdtw
