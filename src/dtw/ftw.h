#ifndef SPRINGDTW_DTW_FTW_H_
#define SPRINGDTW_DTW_FTW_H_

#include <cstdint>
#include <vector>

#include "dtw/dtw.h"
#include "ts/series.h"
#include "util/status.h"

namespace springdtw {
namespace dtw {

/// Options for the multi-resolution ("FTW"-style) exact nearest-neighbour
/// search — the successive coarse-to-fine refinement scheme of Sakurai,
/// Yoshikawa, Faloutsos (PODS 2005), reference [17] of the SPRING paper,
/// built here on the segment-range lower bound of dtw/coarse.h.
struct FtwOptions {
  /// Strictly decreasing PAA segment sizes; the bound tightens (and costs
  /// more) at each level. A final full-DTW confirmation always runs for
  /// whatever survives.
  std::vector<int64_t> granularities = {32, 8, 2};
  /// Local distance / global constraint of the exact computation.
  DtwOptions dtw;
};

/// Result of a multi-resolution search.
struct FtwResult {
  int64_t best_index = -1;
  double best_distance = 0.0;
  /// pruned_at_level[g] = candidates eliminated by the bound at
  /// granularities[g].
  std::vector<int64_t> pruned_at_level;
  /// Candidates that survived every level and paid full DTW.
  int64_t full_computations = 0;
};

/// Exact 1-NN under DTW with successive refinement: candidates are first
/// ranked by the coarsest bound (so a likely-good candidate tightens the
/// best-so-far early), then each candidate climbs the granularity ladder,
/// abandoned at the first level whose lower bound already exceeds the best
/// distance found so far. Returns the same winner as brute force.
/// Errors on empty inputs or non-decreasing granularity ladders.
util::StatusOr<FtwResult> MultiResolutionNearestNeighbor(
    const std::vector<ts::Series>& candidates, const ts::Series& query,
    const FtwOptions& options = {});

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_FTW_H_
