#include "dtw/nn_search.h"

#include <limits>

#include "dtw/envelope.h"
#include "dtw/lower_bounds.h"

namespace springdtw {
namespace dtw {

util::StatusOr<NnResult> NearestNeighborDtw(
    const std::vector<ts::Series>& candidates, const ts::Series& query,
    const DtwOptions& options) {
  if (candidates.empty()) {
    return util::InvalidArgumentError("NearestNeighborDtw: no candidates");
  }
  if (query.empty()) {
    return util::InvalidArgumentError("NearestNeighborDtw: empty query");
  }
  for (const ts::Series& c : candidates) {
    if (c.empty()) {
      return util::InvalidArgumentError(
          "NearestNeighborDtw: empty candidate");
    }
  }

  // LB_Keogh needs equal lengths and a band; check applicability once.
  bool keogh_applicable = options.constraint == GlobalConstraint::kSakoeChiba;
  for (const ts::Series& c : candidates) {
    if (c.size() != query.size()) {
      keogh_applicable = false;
      break;
    }
  }
  Envelope envelope;
  if (keogh_applicable) {
    envelope = ComputeEnvelope(query.values(), options.band_radius);
  }

  NnResult result;
  double best = std::numeric_limits<double>::infinity();
  for (int64_t idx = 0; idx < static_cast<int64_t>(candidates.size());
       ++idx) {
    const ts::Series& candidate = candidates[static_cast<size_t>(idx)];
    if (LbKim(candidate.values(), query.values(), options.local_distance) >=
        best) {
      ++result.pruned_by_kim;
      continue;
    }
    if (LbYi(candidate.values(), query.values(), options.local_distance) >=
        best) {
      ++result.pruned_by_yi;
      continue;
    }
    if (keogh_applicable &&
        LbKeogh(candidate.values(), envelope, options.local_distance) >=
            best) {
      ++result.pruned_by_keogh;
      continue;
    }
    ++result.full_computations;
    const double d =
        DtwDistance(candidate.values(), query.values(), options);
    if (d < best) {
      best = d;
      result.best_index = idx;
      result.best_distance = d;
    }
  }
  if (result.best_index < 0) {
    // All candidates pruned against an infinite best can't happen (the first
    // candidate always reaches full DTW), but an unconstrained-path failure
    // can leave best at infinity.
    return util::FailedPreconditionError(
        "NearestNeighborDtw: no candidate admits a warping path");
  }
  return result;
}

}  // namespace dtw
}  // namespace springdtw
