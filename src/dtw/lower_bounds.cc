#include "dtw/lower_bounds.h"

#include <algorithm>

#include "util/logging.h"

namespace springdtw {
namespace dtw {
namespace {

// Extreme features of a sequence.
struct MinMax {
  double min;
  double max;
};

MinMax FindMinMax(std::span<const double> v) {
  MinMax mm{v[0], v[0]};
  for (const double x : v) {
    mm.min = std::min(mm.min, x);
    mm.max = std::max(mm.max, x);
  }
  return mm;
}

// One-directional LB_Yi sum: cost of x's excursions outside [lo, hi].
double YiSum(std::span<const double> x, double lo, double hi,
             LocalDistance distance) {
  double total = 0.0;
  for (const double v : x) {
    if (v > hi) {
      total += PointDistance(distance, v, hi);
    } else if (v < lo) {
      total += PointDistance(distance, v, lo);
    }
  }
  return total;
}

}  // namespace

double LbKim(std::span<const double> x, std::span<const double> y,
             LocalDistance distance) {
  SPRINGDTW_CHECK(!x.empty() && !y.empty());
  const double first = PointDistance(distance, x.front(), y.front());
  const double last = PointDistance(distance, x.back(), y.back());
  const MinMax mx = FindMinMax(x);
  const MinMax my = FindMinMax(y);
  const double max_feature = PointDistance(distance, mx.max, my.max);
  const double min_feature = PointDistance(distance, mx.min, my.min);

  double bound = std::max({first, last, max_feature, min_feature});
  // With at least two elements on each side, the first and last alignments
  // are distinct path cells, so their costs add.
  if (x.size() >= 2 && y.size() >= 2) {
    bound = std::max(bound, first + last);
  }
  return bound;
}

double LbYi(std::span<const double> x, std::span<const double> y,
            LocalDistance distance) {
  SPRINGDTW_CHECK(!x.empty() && !y.empty());
  const MinMax mx = FindMinMax(x);
  const MinMax my = FindMinMax(y);
  return std::max(YiSum(x, my.min, my.max, distance),
                  YiSum(y, mx.min, mx.max, distance));
}

double LbKeogh(std::span<const double> x, const Envelope& query_envelope,
               LocalDistance distance) {
  SPRINGDTW_CHECK_EQ(x.size(), query_envelope.upper.size());
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double v = x[i];
    if (v > query_envelope.upper[i]) {
      total += PointDistance(distance, v, query_envelope.upper[i]);
    } else if (v < query_envelope.lower[i]) {
      total += PointDistance(distance, v, query_envelope.lower[i]);
    }
  }
  return total;
}

}  // namespace dtw
}  // namespace springdtw
