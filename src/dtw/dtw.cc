#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace springdtw {
namespace dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* GlobalConstraintName(GlobalConstraint constraint) {
  switch (constraint) {
    case GlobalConstraint::kNone:
      return "none";
    case GlobalConstraint::kSakoeChiba:
      return "sakoe-chiba";
    case GlobalConstraint::kItakura:
      return "itakura";
  }
  return "unknown";
}

bool CellAllowed(const DtwOptions& options, int64_t t, int64_t i, int64_t n,
                 int64_t m) {
  switch (options.constraint) {
    case GlobalConstraint::kNone:
      return true;
    case GlobalConstraint::kSakoeChiba: {
      // Band around the (length-scaled) diagonal.
      const double diag = static_cast<double>(t) * static_cast<double>(m - 1) /
                          std::max<double>(1.0, static_cast<double>(n - 1));
      return std::fabs(static_cast<double>(i) - diag) <=
             static_cast<double>(options.band_radius);
    }
    case GlobalConstraint::kItakura: {
      // Parallelogram with slopes in [1/2, 2] anchored at both corners.
      // Degenerate single-point sequences admit everything on their axis.
      if (n == 1 || m == 1) return true;
      const double td = static_cast<double>(t);
      const double id = static_cast<double>(i);
      const double nd = static_cast<double>(n - 1);
      const double md = static_cast<double>(m - 1);
      return id <= 2.0 * td && td <= 2.0 * id &&
             (md - id) <= 2.0 * (nd - td) && (nd - td) <= 2.0 * (md - id);
    }
  }
  return true;
}

double DtwDistance(std::span<const double> x, std::span<const double> y,
                   const DtwOptions& options) {
  const int64_t n = static_cast<int64_t>(x.size());
  const int64_t m = static_cast<int64_t>(y.size());
  SPRINGDTW_CHECK_GT(n, 0);
  SPRINGDTW_CHECK_GT(m, 0);

  // Rolling two-column DP over t; each column is indexed by i in [0, m).
  std::vector<double> prev(static_cast<size_t>(m), kInf);
  std::vector<double> curr(static_cast<size_t>(m), kInf);

  for (int64_t t = 0; t < n; ++t) {
    std::fill(curr.begin(), curr.end(), kInf);
    for (int64_t i = 0; i < m; ++i) {
      if (!CellAllowed(options, t, i, n, m)) continue;
      const double cost = PointDistance(options.local_distance,
                                        x[static_cast<size_t>(t)],
                                        y[static_cast<size_t>(i)]);
      double best;
      if (t == 0 && i == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, curr[static_cast<size_t>(i - 1)]);
        if (t > 0) best = std::min(best, prev[static_cast<size_t>(i)]);
        if (t > 0 && i > 0) {
          best = std::min(best, prev[static_cast<size_t>(i - 1)]);
        }
        if (best == kInf) continue;  // Unreachable under the constraint.
      }
      curr[static_cast<size_t>(i)] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<size_t>(m - 1)];
}

util::StatusOr<DtwAlignment> DtwAlign(std::span<const double> x,
                                      std::span<const double> y,
                                      const DtwOptions& options) {
  const int64_t n = static_cast<int64_t>(x.size());
  const int64_t m = static_cast<int64_t>(y.size());
  if (n == 0 || m == 0) {
    return util::InvalidArgumentError("DtwAlign: empty sequence");
  }

  // Full matrix, row-major over t.
  std::vector<double> cost(static_cast<size_t>(n * m), kInf);
  auto at = [&](int64_t t, int64_t i) -> double& {
    return cost[static_cast<size_t>(t * m + i)];
  };

  for (int64_t t = 0; t < n; ++t) {
    for (int64_t i = 0; i < m; ++i) {
      if (!CellAllowed(options, t, i, n, m)) continue;
      const double local = PointDistance(options.local_distance,
                                         x[static_cast<size_t>(t)],
                                         y[static_cast<size_t>(i)]);
      double best;
      if (t == 0 && i == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, at(t, i - 1));
        if (t > 0) best = std::min(best, at(t - 1, i));
        if (t > 0 && i > 0) best = std::min(best, at(t - 1, i - 1));
        if (best == kInf) continue;
      }
      at(t, i) = local + best;
    }
  }
  if (at(n - 1, m - 1) == kInf) {
    return util::FailedPreconditionError(
        "DtwAlign: constraint admits no warping path");
  }

  DtwAlignment alignment;
  alignment.distance = at(n - 1, m - 1);
  // Backtrack from the end corner, preferring the predecessor that actually
  // produced the cell (any optimal predecessor yields an optimal path).
  int64_t t = n - 1;
  int64_t i = m - 1;
  alignment.path.emplace_back(t, i);
  while (t > 0 || i > 0) {
    double best = kInf;
    int64_t bt = t;
    int64_t bi = i;
    if (t > 0 && i > 0 && at(t - 1, i - 1) < best) {
      best = at(t - 1, i - 1);
      bt = t - 1;
      bi = i - 1;
    }
    if (t > 0 && at(t - 1, i) < best) {
      best = at(t - 1, i);
      bt = t - 1;
      bi = i;
    }
    if (i > 0 && at(t, i - 1) < best) {
      best = at(t, i - 1);
      bt = t;
      bi = i - 1;
    }
    SPRINGDTW_CHECK(best < kInf) << "backtracking escaped the matrix";
    t = bt;
    i = bi;
    alignment.path.emplace_back(t, i);
  }
  std::reverse(alignment.path.begin(), alignment.path.end());
  return alignment;
}

double DtwDistanceMultivariate(const ts::VectorSeries& x,
                               const ts::VectorSeries& y,
                               const DtwOptions& options) {
  const int64_t n = x.size();
  const int64_t m = y.size();
  SPRINGDTW_CHECK_GT(n, 0);
  SPRINGDTW_CHECK_GT(m, 0);
  SPRINGDTW_CHECK_EQ(x.dims(), y.dims());

  std::vector<double> prev(static_cast<size_t>(m), kInf);
  std::vector<double> curr(static_cast<size_t>(m), kInf);
  for (int64_t t = 0; t < n; ++t) {
    std::fill(curr.begin(), curr.end(), kInf);
    const auto xt = x.Row(t);
    for (int64_t i = 0; i < m; ++i) {
      if (!CellAllowed(options, t, i, n, m)) continue;
      const double cost =
          VectorPointDistance(options.local_distance, xt, y.Row(i));
      double best;
      if (t == 0 && i == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, curr[static_cast<size_t>(i - 1)]);
        if (t > 0) best = std::min(best, prev[static_cast<size_t>(i)]);
        if (t > 0 && i > 0) {
          best = std::min(best, prev[static_cast<size_t>(i - 1)]);
        }
        if (best == kInf) continue;
      }
      curr[static_cast<size_t>(i)] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<size_t>(m - 1)];
}

}  // namespace dtw
}  // namespace springdtw
