#ifndef SPRINGDTW_DTW_ENVELOPE_H_
#define SPRINGDTW_DTW_ENVELOPE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace springdtw {
namespace dtw {

/// Upper/lower envelope of a sequence under a Sakoe-Chiba band of radius r:
/// upper[i] = max(y[i-r .. i+r]), lower[i] = min(y[i-r .. i+r]).
/// Used by LB_Keogh (Keogh, VLDB 2002).
struct Envelope {
  std::vector<double> upper;
  std::vector<double> lower;
};

/// Computes the envelope in O(n) with the Lemire streaming min/max algorithm.
/// Requires radius >= 0.
Envelope ComputeEnvelope(std::span<const double> y, int64_t radius);

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_ENVELOPE_H_
