#ifndef SPRINGDTW_DTW_NN_SEARCH_H_
#define SPRINGDTW_DTW_NN_SEARCH_H_

#include <cstdint>
#include <vector>

#include "dtw/dtw.h"
#include "ts/series.h"
#include "util/status.h"

namespace springdtw {
namespace dtw {

/// Result of a whole-sequence nearest-neighbour search.
struct NnResult {
  /// Index of the best candidate in the input collection.
  int64_t best_index = -1;
  /// Its DTW distance to the query.
  double best_distance = 0.0;
  /// Candidates discarded by LB_Kim before any O(n*m) work.
  int64_t pruned_by_kim = 0;
  /// Candidates discarded by LB_Yi.
  int64_t pruned_by_yi = 0;
  /// Candidates discarded by LB_Keogh (only under a Sakoe-Chiba band).
  int64_t pruned_by_keogh = 0;
  /// Candidates discarded by the coarse (PAA range) lower bound — only
  /// populated by NearestNeighborDtwCoarse (see dtw/coarse.h).
  int64_t pruned_by_coarse = 0;
  /// Candidates that needed a full DTW computation.
  int64_t full_computations = 0;
};

/// Exact 1-NN search of `query` over `candidates` under DTW, with the
/// classic cascading lower-bound pruning (LB_Kim -> LB_Yi -> LB_Keogh ->
/// full DTW). LB_Keogh participates only when options.constraint is
/// kSakoeChiba and every candidate has the query's length (its validity
/// conditions). Returns an error if `candidates` is empty or any sequence
/// is empty. This is the "stored data set" workflow the paper contrasts
/// itself with (Section 2.1) — and which SPRING complements (Section 6).
util::StatusOr<NnResult> NearestNeighborDtw(
    const std::vector<ts::Series>& candidates, const ts::Series& query,
    const DtwOptions& options = {});

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_NN_SEARCH_H_
