#include "dtw/coarse.h"

#include <algorithm>
#include <limits>

#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "util/logging.h"

namespace springdtw {
namespace dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Separation between the value ranges of two segments; 0 when they overlap.
double RangeGap(const ts::PaaSegment& a, const ts::PaaSegment& b) {
  if (a.min > b.max) return a.min - b.max;
  if (b.min > a.max) return b.min - a.max;
  return 0.0;
}

// Shared rolling DP over segment pairs. `cost(i, j)` supplies the block
// cost.
template <typename CostFn>
double SegmentDtw(const std::vector<ts::PaaSegment>& sx,
                  const std::vector<ts::PaaSegment>& sy, CostFn cost) {
  const int64_t n = static_cast<int64_t>(sx.size());
  const int64_t m = static_cast<int64_t>(sy.size());
  std::vector<double> prev(static_cast<size_t>(m), kInf);
  std::vector<double> curr(static_cast<size_t>(m), kInf);
  for (int64_t t = 0; t < n; ++t) {
    std::fill(curr.begin(), curr.end(), kInf);
    for (int64_t i = 0; i < m; ++i) {
      double best;
      if (t == 0 && i == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, curr[static_cast<size_t>(i - 1)]);
        if (t > 0) best = std::min(best, prev[static_cast<size_t>(i)]);
        if (t > 0 && i > 0) {
          best = std::min(best, prev[static_cast<size_t>(i - 1)]);
        }
      }
      curr[static_cast<size_t>(i)] = cost(t, i) + best;
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<size_t>(m - 1)];
}

}  // namespace

double CoarseDtwLowerBound(std::span<const double> x,
                           std::span<const double> y, int64_t segment_size,
                           LocalDistance distance) {
  SPRINGDTW_CHECK(!x.empty() && !y.empty());
  const std::vector<ts::PaaSegment> sx = ts::PaaReduce(x, segment_size);
  const std::vector<ts::PaaSegment> sy = ts::PaaReduce(y, segment_size);
  return SegmentDtw(sx, sy, [&](int64_t t, int64_t i) {
    return PointDistance(distance,
                         RangeGap(sx[static_cast<size_t>(t)],
                                  sy[static_cast<size_t>(i)]),
                         0.0);
  });
}

double CoarseDtwApproximation(std::span<const double> x,
                              std::span<const double> y,
                              int64_t segment_size, LocalDistance distance) {
  SPRINGDTW_CHECK(!x.empty() && !y.empty());
  const std::vector<ts::PaaSegment> sx = ts::PaaReduce(x, segment_size);
  const std::vector<ts::PaaSegment> sy = ts::PaaReduce(y, segment_size);
  return SegmentDtw(sx, sy, [&](int64_t t, int64_t i) {
    const ts::PaaSegment& a = sx[static_cast<size_t>(t)];
    const ts::PaaSegment& b = sy[static_cast<size_t>(i)];
    const double weight =
        0.5 * static_cast<double>(a.length + b.length);
    return weight * PointDistance(distance, a.mean, b.mean);
  });
}

util::StatusOr<NnResult> NearestNeighborDtwCoarse(
    const std::vector<ts::Series>& candidates, const ts::Series& query,
    int64_t segment_size, const DtwOptions& options) {
  if (candidates.empty()) {
    return util::InvalidArgumentError(
        "NearestNeighborDtwCoarse: no candidates");
  }
  if (query.empty()) {
    return util::InvalidArgumentError(
        "NearestNeighborDtwCoarse: empty query");
  }
  for (const ts::Series& c : candidates) {
    if (c.empty()) {
      return util::InvalidArgumentError(
          "NearestNeighborDtwCoarse: empty candidate");
    }
  }

  NnResult result;
  double best = kInf;
  for (int64_t idx = 0; idx < static_cast<int64_t>(candidates.size());
       ++idx) {
    const ts::Series& candidate = candidates[static_cast<size_t>(idx)];
    if (LbKim(candidate.values(), query.values(), options.local_distance) >=
        best) {
      ++result.pruned_by_kim;
      continue;
    }
    if (LbYi(candidate.values(), query.values(), options.local_distance) >=
        best) {
      ++result.pruned_by_yi;
      continue;
    }
    if (CoarseDtwLowerBound(candidate.values(), query.values(), segment_size,
                            options.local_distance) >= best) {
      ++result.pruned_by_coarse;
      continue;
    }
    ++result.full_computations;
    const double d =
        DtwDistance(candidate.values(), query.values(), options);
    if (d < best) {
      best = d;
      result.best_index = idx;
      result.best_distance = d;
    }
  }
  if (result.best_index < 0) {
    return util::FailedPreconditionError(
        "NearestNeighborDtwCoarse: no candidate admits a warping path");
  }
  return result;
}

}  // namespace dtw
}  // namespace springdtw
