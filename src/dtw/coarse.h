#ifndef SPRINGDTW_DTW_COARSE_H_
#define SPRINGDTW_DTW_COARSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dtw/local_distance.h"
#include "dtw/nn_search.h"
#include "ts/paa.h"
#include "ts/series.h"
#include "util/status.h"

namespace springdtw {
namespace dtw {

/// Coarse-granularity DTW lower bound in the spirit of FTW (Sakurai,
/// Yoshikawa, Faloutsos, PODS 2005 — reference [17] of the SPRING paper):
/// both sequences are PAA-reduced to [min, max] range segments of
/// `segment_size` ticks and a DTW-style DP runs over segment pairs with
/// cost = local distance of the *gap* between the two ranges (0 when they
/// overlap).
///
/// Guarantee: CoarseDtwLowerBound(x, y, L, d) <= DtwDistance(x, y, d) for
/// every L >= 1 and both local distances. (Proof sketch: project the
/// optimal fine warping path onto segment blocks; the projection is a
/// valid coarse path, and each of its blocks contains at least one fine
/// cell whose cost is at least the block's range gap.) Cost: O(n*m / L^2).
double CoarseDtwLowerBound(std::span<const double> x,
                           std::span<const double> y, int64_t segment_size,
                           LocalDistance distance = LocalDistance::kSquared);

/// Fast DTW *estimate* (not a bound): DTW over the PAA means, each step
/// weighted by the average of the two segment lengths. Useful for ranking
/// candidates cheaply; error shrinks as segment_size -> 1 (at 1 it is the
/// exact distance).
double CoarseDtwApproximation(
    std::span<const double> x, std::span<const double> y,
    int64_t segment_size,
    LocalDistance distance = LocalDistance::kSquared);

/// Exact 1-NN search like NearestNeighborDtw, with the coarse lower bound
/// inserted into the pruning cascade after LB_Kim/LB_Yi and before the
/// full DTW. `NnResult::pruned_by_coarse` counts its extra prunes.
util::StatusOr<NnResult> NearestNeighborDtwCoarse(
    const std::vector<ts::Series>& candidates, const ts::Series& query,
    int64_t segment_size, const DtwOptions& options = {});

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_COARSE_H_
