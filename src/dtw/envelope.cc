#include "dtw/envelope.h"

#include <deque>

#include "util/logging.h"

namespace springdtw {
namespace dtw {

Envelope ComputeEnvelope(std::span<const double> y, int64_t radius) {
  SPRINGDTW_CHECK_GE(radius, 0);
  const int64_t n = static_cast<int64_t>(y.size());
  Envelope env;
  env.upper.resize(y.size());
  env.lower.resize(y.size());

  // Monotonic deques over the sliding window [i - radius, i + radius].
  std::deque<int64_t> max_idx;
  std::deque<int64_t> min_idx;
  for (int64_t j = 0; j < n + radius; ++j) {
    if (j < n) {
      // Push y[j], evicting dominated tail entries.
      while (!max_idx.empty() &&
             y[static_cast<size_t>(max_idx.back())] <=
                 y[static_cast<size_t>(j)]) {
        max_idx.pop_back();
      }
      max_idx.push_back(j);
      while (!min_idx.empty() &&
             y[static_cast<size_t>(min_idx.back())] >=
                 y[static_cast<size_t>(j)]) {
        min_idx.pop_back();
      }
      min_idx.push_back(j);
    }
    const int64_t i = j - radius;  // Window now covers position i fully.
    if (i < 0 || i >= n) continue;
    // Evict entries that left the window on the left.
    while (!max_idx.empty() && max_idx.front() < i - radius) {
      max_idx.pop_front();
    }
    while (!min_idx.empty() && min_idx.front() < i - radius) {
      min_idx.pop_front();
    }
    env.upper[static_cast<size_t>(i)] = y[static_cast<size_t>(max_idx.front())];
    env.lower[static_cast<size_t>(i)] = y[static_cast<size_t>(min_idx.front())];
  }
  return env;
}

}  // namespace dtw
}  // namespace springdtw
