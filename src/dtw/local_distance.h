#ifndef SPRINGDTW_DTW_LOCAL_DISTANCE_H_
#define SPRINGDTW_DTW_LOCAL_DISTANCE_H_

#include <cmath>
#include <cstdint>
#include <span>

namespace springdtw {
namespace dtw {

/// Tick-to-tick ("local") distance between two scalar values. The paper uses
/// the squared difference by default and notes the algorithms are independent
/// of this choice (e.g. absolute difference works equally); all matchers in
/// this library accept either.
enum class LocalDistance {
  /// (x - y)^2 — the paper's default.
  kSquared = 0,
  /// |x - y|.
  kAbsolute = 1,
};

/// Stable display name ("squared" / "absolute").
const char* LocalDistanceName(LocalDistance distance);

/// Functor form of the squared local distance (hot-path inlinable).
struct SquaredDistance {
  double operator()(double x, double y) const {
    const double d = x - y;
    return d * d;
  }
};

/// Functor form of the absolute local distance.
struct AbsoluteDistance {
  double operator()(double x, double y) const { return std::fabs(x - y); }
};

/// Evaluates the selected local distance. Prefer the functor forms inside
/// templated inner loops; this switch form is for boundary code.
inline double PointDistance(LocalDistance distance, double x, double y) {
  switch (distance) {
    case LocalDistance::kSquared:
      return SquaredDistance()(x, y);
    case LocalDistance::kAbsolute:
      return AbsoluteDistance()(x, y);
  }
  return SquaredDistance()(x, y);
}

/// Local distance between two k-dimensional ticks: sum over channels of the
/// scalar local distance (squared L2 for kSquared, L1 for kAbsolute).
inline double VectorPointDistance(LocalDistance distance,
                                  std::span<const double> x,
                                  std::span<const double> y) {
  double total = 0.0;
  if (distance == LocalDistance::kSquared) {
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - y[i];
      total += d * d;
    }
  } else {
    for (size_t i = 0; i < x.size(); ++i) total += std::fabs(x[i] - y[i]);
  }
  return total;
}

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_LOCAL_DISTANCE_H_
