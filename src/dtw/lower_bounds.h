#ifndef SPRINGDTW_DTW_LOWER_BOUNDS_H_
#define SPRINGDTW_DTW_LOWER_BOUNDS_H_

#include <span>

#include "dtw/envelope.h"
#include "dtw/local_distance.h"

namespace springdtw {
namespace dtw {

/// LB_Kim-style constant-time lower bound on the (unconstrained) DTW
/// distance, from boundary and extreme features (Kim, Park, Chu, ICDE 2001):
/// the first elements must align, the last elements must align, and each
/// sequence's global max/min must align to something no more extreme in the
/// other. Requires both sequences non-empty.
double LbKim(std::span<const double> x, std::span<const double> y,
             LocalDistance distance = LocalDistance::kSquared);

/// LB_Yi linear-time lower bound (Yi, Jagadish, Faloutsos, ICDE 1998):
/// every element of x above max(y) costs at least its distance to max(y),
/// and symmetrically below min(y); plus the same with roles swapped, taking
/// the larger of the two sums. Requires both sequences non-empty.
double LbYi(std::span<const double> x, std::span<const double> y,
            LocalDistance distance = LocalDistance::kSquared);

/// LB_Keogh lower bound (Keogh, VLDB 2002) on the *Sakoe-Chiba banded* DTW
/// distance with the band radius used to build `query_envelope`. Requires
/// x.size() == envelope size. Tighter than LB_Kim/LB_Yi.
double LbKeogh(std::span<const double> x, const Envelope& query_envelope,
               LocalDistance distance = LocalDistance::kSquared);

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_LOWER_BOUNDS_H_
