#ifndef SPRINGDTW_DTW_DTW_H_
#define SPRINGDTW_DTW_DTW_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dtw/local_distance.h"
#include "ts/vector_series.h"
#include "util/status.h"

namespace springdtw {
namespace dtw {

/// Global path constraints for stored-sequence DTW (Rabiner & Juang; used by
/// the indexing literature the paper cites — Keogh 2002, Zhu & Shasha 2003).
enum class GlobalConstraint {
  /// Unconstrained warping (the paper's Equation 1).
  kNone = 0,
  /// Sakoe-Chiba band: |i - t*m/n| <= band_radius.
  kSakoeChiba = 1,
  /// Itakura parallelogram: path slope confined to [1/2, 2].
  kItakura = 2,
};

/// Stable display name for a constraint.
const char* GlobalConstraintName(GlobalConstraint constraint);

/// Options for the classic whole-sequence DTW routines.
struct DtwOptions {
  LocalDistance local_distance = LocalDistance::kSquared;
  GlobalConstraint constraint = GlobalConstraint::kNone;
  /// Sakoe-Chiba band radius in ticks (ignored for other constraints).
  int64_t band_radius = 0;
};

/// One step of a warping path: (index into X, index into Y), 0-based.
using PathStep = std::pair<int64_t, int64_t>;

/// Result of a full alignment: distance plus the optimal warping path from
/// (0, 0) to (n-1, m-1), in increasing order.
struct DtwAlignment {
  double distance = 0.0;
  std::vector<PathStep> path;
};

/// Whole-sequence DTW distance (Equation 1 of the paper) with O(m) memory.
/// Returns +infinity if the constraint admits no path (e.g. an extreme
/// length ratio under Itakura, or a band narrower than the length gap).
/// Requires both sequences non-empty.
double DtwDistance(std::span<const double> x, std::span<const double> y,
                   const DtwOptions& options = {});

/// Whole-sequence DTW with full-matrix backtracking; returns the distance
/// and one optimal warping path. O(n*m) memory.
util::StatusOr<DtwAlignment> DtwAlign(std::span<const double> x,
                                      std::span<const double> y,
                                      const DtwOptions& options = {});

/// Multivariate whole-sequence DTW: ticks are k-dimensional rows; the local
/// distance is summed over channels. Requires equal dims() and both
/// sequences non-empty.
double DtwDistanceMultivariate(const ts::VectorSeries& x,
                               const ts::VectorSeries& y,
                               const DtwOptions& options = {});

/// True if matrix cell (t, i) — 0-based positions into sequences of length
/// n and m — is admitted by `options`' global constraint. Exposed for tests
/// and for the lower-bound envelopes.
bool CellAllowed(const DtwOptions& options, int64_t t, int64_t i, int64_t n,
                 int64_t m);

}  // namespace dtw
}  // namespace springdtw

#endif  // SPRINGDTW_DTW_DTW_H_
