#include "dtw/local_distance.h"

namespace springdtw {
namespace dtw {

const char* LocalDistanceName(LocalDistance distance) {
  switch (distance) {
    case LocalDistance::kSquared:
      return "squared";
    case LocalDistance::kAbsolute:
      return "absolute";
  }
  return "unknown";
}

}  // namespace dtw
}  // namespace springdtw
