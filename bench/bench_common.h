#ifndef SPRINGDTW_BENCH_BENCH_COMMON_H_
#define SPRINGDTW_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/match.h"
#include "gen/planted.h"
#include "ts/series.h"

namespace springdtw {
namespace bench {

/// Prints a horizontal rule and a centered section title.
void PrintHeader(const std::string& title);

/// Converts planted events to (first, last) regions with a margin, clamped
/// to the stream bounds — input for core::CalibrateEpsilon.
std::vector<std::pair<int64_t, int64_t>> EventRegions(
    const std::vector<gen::PlantedEvent>& events, int64_t stream_size,
    int64_t margin);

/// Prints one Table-2-style row block: the threshold, query length, and the
/// matches with starting position / length / distance / output time.
void PrintTable2Block(const std::string& dataset, double epsilon,
                      int64_t query_length,
                      const std::vector<core::Match>& matches);

/// How many of `events` overlap at least one match (detection score).
int64_t CountDetected(const std::vector<gen::PlantedEvent>& events,
                      const std::vector<core::Match>& matches);

}  // namespace bench
}  // namespace springdtw

#endif  // SPRINGDTW_BENCH_BENCH_COMMON_H_
