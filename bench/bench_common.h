#ifndef SPRINGDTW_BENCH_BENCH_COMMON_H_
#define SPRINGDTW_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/match.h"
#include "gen/planted.h"
#include "obs/metrics.h"
#include "ts/series.h"

namespace springdtw {
namespace bench {

/// Prints a horizontal rule and a centered section title.
void PrintHeader(const std::string& title);

/// Converts planted events to (first, last) regions with a margin, clamped
/// to the stream bounds — input for core::CalibrateEpsilon.
std::vector<std::pair<int64_t, int64_t>> EventRegions(
    const std::vector<gen::PlantedEvent>& events, int64_t stream_size,
    int64_t margin);

/// Prints one Table-2-style row block: the threshold, query length, and the
/// matches with starting position / length / distance / output time.
void PrintTable2Block(const std::string& dataset, double epsilon,
                      int64_t query_length,
                      const std::vector<core::Match>& matches);

/// How many of `events` overlap at least one match (detection score).
int64_t CountDetected(const std::vector<gen::PlantedEvent>& events,
                      const std::vector<core::Match>& matches);

/// Collects bench measurements in an obs::MetricsRegistry and emits them as
/// one machine-readable stdout line:
///
///   BENCH_METRICS_JSON {"metrics":[...]}
///
/// Every series recorded through this emitter carries a {"bench": <name>}
/// label, so blobs from several benches can be concatenated in one log and
/// still told apart. Benches that drive a MonitorEngine can pass the
/// engine's registry snapshot to Emit() to splice its families into the
/// same blob.
class MetricsEmitter {
 public:
  explicit MetricsEmitter(std::string bench_name);

  const std::string& bench_name() const { return bench_name_; }
  obs::MetricsRegistry& registry() { return registry_; }

  /// Sets gauge `name{bench=<bench_name>, extra...}` to `value`.
  void SetGauge(const std::string& name, const std::string& help,
                double value, obs::Labels extra = {});

  /// Adds `value` to histogram `name{bench=<bench_name>, extra...}`.
  void Observe(const std::string& name, const std::string& help, double value,
               obs::Labels extra = {});

  /// Prints the BENCH_METRICS_JSON line to stdout. When `engine_snapshot`
  /// is non-null its families are appended after this emitter's own.
  void Emit(const obs::MetricsSnapshot* engine_snapshot = nullptr) const;

  /// Writes the same JSON blob Emit() prints (without the line prefix) to
  /// `path`, so CI can validate it with springdtw_metrics_check. Returns
  /// false if the file cannot be written.
  bool WriteJsonFile(const std::string& path,
                     const obs::MetricsSnapshot* engine_snapshot =
                         nullptr) const;

 private:
  obs::MetricsSnapshot MergedSnapshot(
      const obs::MetricsSnapshot* engine_snapshot) const;
  obs::Labels WithBenchLabel(obs::Labels extra) const;

  std::string bench_name_;
  obs::MetricsRegistry registry_;
};

}  // namespace bench
}  // namespace springdtw

#endif  // SPRINGDTW_BENCH_BENCH_COMMON_H_
