// Reproduces the paper's Section 5.3 / Figure 9 (experiment E7): vector
// streams. A k = 62-dimensional motion sequence of 7 consecutive motions
// (walking, jumping, walking, punching, walking, kicking, punching) is
// monitored with 4 motion queries; the modified SPRING reports the
// start/end of the range of overlapping subsequences per motion.
//
// Shape to check: all 7 motions are spotted by the query of their own
// archetype ("SPRING perfectly captures all 7 motions"), while per-tick
// cost scales with k*m and memory stays O(m).
//
//   ./bench_fig9_mocap [--dims=62] [--seed=5]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/vector_spring.h"
#include "gen/mocap.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace springdtw {
namespace {

double CalibrateForArchetype(const gen::MocapData& data,
                             const std::string& name,
                             const ts::VectorSeries& query) {
  double epsilon = 0.0;
  for (const gen::PlantedEvent& e : data.events) {
    if (e.label != name) continue;
    const ts::VectorSeries segment = data.stream.Slice(e.start, e.length);
    core::SpringOptions probe;
    probe.epsilon = -1.0;
    core::VectorSpringMatcher matcher(query, probe);
    for (int64_t t = 0; t < segment.size(); ++t) {
      matcher.Update(segment.Row(t), nullptr);
    }
    epsilon = std::max(epsilon, matcher.best().distance);
  }
  return epsilon * 1.2;
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  gen::MocapOptions options;
  options.dims = flags.GetInt64("dims", 62);
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 5));
  const gen::MocapData data = GenerateMocap(options);

  bench::PrintHeader(
      "Figure 9 / Section 5.3 — multi-stream (vector) SPRING on motion "
      "capture, k = " +
      std::to_string(options.dims));

  std::printf("script:");
  for (const gen::PlantedEvent& e : data.events) {
    std::printf(" %s[%lld:%lld]", e.label.c_str(),
                static_cast<long long>(e.start),
                static_cast<long long>(e.end()));
  }
  std::printf("\n\n");

  struct Labeled {
    std::string name;
    core::Match match;
  };
  std::vector<Labeled> found;
  int64_t total_memory = 0;
  double total_seconds = 0.0;

  for (const auto& [name, query] : data.queries) {
    core::SpringOptions spring_options;
    spring_options.epsilon = CalibrateForArchetype(data, name, query);

    core::VectorSpringMatcher matcher(query, spring_options);
    core::Match match;
    util::Stopwatch stopwatch;
    for (int64_t t = 0; t < data.stream.size(); ++t) {
      if (matcher.Update(data.stream.Row(t), &match)) {
        found.push_back(Labeled{name, match});
      }
    }
    total_seconds += stopwatch.ElapsedSeconds();
    if (matcher.Flush(&match)) found.push_back(Labeled{name, match});
    total_memory += matcher.Footprint().TotalBytes();

    std::printf("query %-9s m=%-4lld epsilon=%-10.4g matches:",
                name.c_str(), static_cast<long long>(query.size()),
                spring_options.epsilon);
    for (const Labeled& l : found) {
      if (l.name != name) continue;
      std::printf(" [%lld..%lld]", static_cast<long long>(l.match.group_start),
                  static_cast<long long>(l.match.group_end));
    }
    std::printf("\n");
  }

  // Score: each scripted motion must be spotted by its own query.
  int64_t covered = 0;
  for (const gen::PlantedEvent& e : data.events) {
    for (const Labeled& l : found) {
      if (l.name == e.label &&
          gen::IntervalsOverlap(e.start, e.end(), l.match.start,
                                l.match.end)) {
        ++covered;
        break;
      }
    }
  }
  // And no query may fire away from its own archetype's segments (a match
  // straddling a boundary still counts as correct if it covers a segment
  // of its own type).
  int64_t mislabeled = 0;
  for (const Labeled& l : found) {
    bool on_own = false;
    for (const gen::PlantedEvent& e : data.events) {
      if (e.label == l.name &&
          gen::IntervalsOverlap(e.start, e.end(), l.match.start,
                                l.match.end)) {
        on_own = true;
      }
    }
    if (!on_own) ++mislabeled;
  }

  const double per_tick_us =
      1e6 * total_seconds /
      static_cast<double>(data.stream.size() * 4);
  std::printf(
      "\nmotions spotted by their own query: %lld / %zu (paper: 7/7)\n"
      "cross-archetype false matches:      %lld (paper: 0)\n"
      "per-tick cost per query:            %.2f us (k=%lld channels)\n"
      "total matcher memory (4 queries):   %lld bytes, independent of "
      "stream length\n",
      static_cast<long long>(covered), data.events.size(),
      static_cast<long long>(mislabeled), per_tick_us,
      static_cast<long long>(options.dims),
      static_cast<long long>(total_memory));
  return covered == static_cast<int64_t>(data.events.size()) &&
                 mislabeled == 0
             ? 0
             : 1;
}
