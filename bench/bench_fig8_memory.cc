// Reproduces the paper's Figure 8 (experiment E6): memory consumption for
// disjoint queries as a function of sequence length n, for the Naive
// method, SPRING(path) (warping-path tracking), and SPRING. Query length
// m = 256, MaskedChirp data.
//
// Shape to check: naive grows linearly (O(n*m) bytes; ~10^10 at n=10^6 in
// the paper's accounting), SPRING(path) grows only with the captured
// warping paths (well below naive), and SPRING is a small constant.
//
//   ./bench_fig8_memory [--max_n=1000000] [--m=256] [--measure_naive_up_to=100000]

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/naive.h"
#include "core/spring.h"
#include "core/spring_path.h"
#include "gen/masked_chirp.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace springdtw {
namespace {

// Streams n ticks (cycling the base stream) through `matcher` via the
// given update lambda.
template <typename Matcher, typename Update>
void Stream(Matcher& matcher, const ts::Series& base, int64_t n,
            Update update) {
  for (int64_t t = 0; t < n; ++t) {
    update(matcher, base[t % base.size()]);
  }
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  const int64_t max_n = flags.GetInt64("max_n", 1000000);
  const int64_t m = flags.GetInt64("m", 256);
  const int64_t measure_naive_up_to =
      flags.GetInt64("measure_naive_up_to", 100000);

  gen::MaskedChirpOptions data_options;
  data_options.length = 100000;
  const auto data = GenerateMaskedChirp(data_options, m);
  const double epsilon = 100.0;

  bench::PrintHeader(
      "Figure 8 — memory (bytes) vs sequence length (disjoint queries, "
      "m = " +
      std::to_string(m) + ")");
  std::printf("%-10s %-16s %-16s %-16s %-16s\n", "n", "naive_model",
              "naive_measured", "spring_path", "spring");

  bench::MetricsEmitter emitter("fig8_memory");
  for (int64_t n = 1000; n <= max_n; n *= 10) {
    core::SpringOptions options;
    options.epsilon = epsilon;

    // SPRING: measured after honestly streaming n ticks.
    core::SpringMatcher spring(data.query.values(), options);
    core::Match match;
    Stream(spring, data.stream, n,
           [&match](core::SpringMatcher& s, double x) {
             s.Update(x, &match);
           });
    const int64_t spring_bytes = spring.Footprint().TotalBytes();

    // SPRING(path): measured after streaming n ticks (arena holds the live
    // warping paths of the data actually seen).
    core::SpringPathMatcher spring_path(data.query.values(), options);
    core::PathMatch path_match;
    Stream(spring_path, data.stream, n,
           [&path_match](core::SpringPathMatcher& s, double x) {
             s.Update(x, &path_match);
           });
    const int64_t path_bytes = spring_path.Footprint().TotalBytes();

    // Naive: analytic model at all n (Lemma 3 accounting), measured
    // footprint where it fits comfortably in RAM.
    const int64_t naive_model = core::NaiveMatcher::ModelBytes(n, m);
    std::string naive_measured = "-";
    if (n <= measure_naive_up_to) {
      core::NaiveMatcher naive(data.query.values(), options);
      naive.PrewarmForBenchmark(n, 1.0);
      naive_measured = util::StrFormat(
          "%lld", static_cast<long long>(naive.Footprint().TotalBytes()));
    }

    std::printf("%-10lld %-16lld %-16s %-16lld %-16lld\n",
                static_cast<long long>(n),
                static_cast<long long>(naive_model), naive_measured.c_str(),
                static_cast<long long>(path_bytes),
                static_cast<long long>(spring_bytes));
    const obs::Labels by_n = {obs::Label{"n", std::to_string(n)}};
    emitter.SetGauge("bench_spring_bytes", "SPRING working-set bytes",
                     static_cast<double>(spring_bytes), by_n);
    emitter.SetGauge("bench_spring_path_bytes",
                     "SPRING(path) working-set bytes",
                     static_cast<double>(path_bytes), by_n);
    emitter.SetGauge("bench_naive_model_bytes",
                     "naive working-set bytes (analytic model)",
                     static_cast<double>(naive_model), by_n);
  }
  emitter.Emit();
  std::printf(
      "\npaper shape: naive is a straight line in n (O(n*m)); SPRING(path)\n"
      "stays orders of magnitude below it and depends on the captured "
      "data;\nSPRING is a small constant (O(m)).\n");
  return 0;
}
