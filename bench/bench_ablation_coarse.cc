// Ablation A6: pruning power of the lower-bound cascade for whole-sequence
// 1-NN search under DTW — LB_Kim/LB_Yi alone versus adding the coarse
// (PAA segment-range) bound at several granularities. This quantifies the
// FTW-style coarse-to-fine idea the SPRING paper cites as related work.
//
//   ./bench_ablation_coarse [--candidates=400] [--length=512]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dtw/coarse.h"
#include "dtw/ftw.h"
#include "dtw/nn_search.h"
#include "gen/signal.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  const int64_t num_candidates = flags.GetInt64("candidates", 400);
  const int64_t length = flags.GetInt64("length", 512);

  // Candidate pool designed to defeat the feature bounds: every candidate
  // is a block-shuffled copy of the query (interior 32-tick blocks
  // permuted), so first/last values, global min and global max all match
  // the query exactly — LB_Kim and LB_Yi are 0 for every candidate — while
  // the *shape* differs, which only shape-aware bounds can see. A
  // near-duplicate of the query is inserted first so the best-so-far
  // tightens immediately.
  util::Rng rng(17);
  const ts::Series query(
      gen::MovingAverage(gen::RandomWalk(rng, length, 0.0, 0.3), 4));
  const int64_t block = 32;
  const int64_t num_blocks = length / block;

  std::vector<ts::Series> candidates;
  ts::Series dup = query;
  for (int64_t i = 0; i < dup.size(); i += 7) dup[i] += 0.02;
  candidates.push_back(dup);
  for (int64_t c = 1; c < num_candidates; ++c) {
    std::vector<int64_t> order(static_cast<size_t>(num_blocks - 2));
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int64_t>(i) + 1;  // Interior blocks only.
    }
    util::Shuffle(rng, order);
    ts::Series shuffled = query;
    int64_t write = block;  // Keep block 0 (and the tail block) in place.
    for (const int64_t b : order) {
      for (int64_t i = 0; i < block; ++i) {
        shuffled[write++] = query[b * block + i];
      }
    }
    candidates.push_back(std::move(shuffled));
  }

  bench::PrintHeader(
      "Ablation A6 — 1-NN DTW search: lower-bound cascade pruning power");
  std::printf("%-22s %-10s %-10s %-10s %-10s %-12s\n", "method", "kim",
              "yi", "coarse", "full_dtw", "ms");

  {
    util::Stopwatch stopwatch;
    const auto result = dtw::NearestNeighborDtw(candidates, query);
    const double ms = stopwatch.ElapsedMillis();
    if (!result.ok()) return 1;
    std::printf("%-22s %-10lld %-10lld %-10s %-10lld %-12.1f\n",
                "kim+yi", static_cast<long long>(result->pruned_by_kim),
                static_cast<long long>(result->pruned_by_yi), "-",
                static_cast<long long>(result->full_computations), ms);
  }
  for (const int64_t segment : {32, 16, 8, 4}) {
    util::Stopwatch stopwatch;
    const auto result =
        dtw::NearestNeighborDtwCoarse(candidates, query, segment);
    const double ms = stopwatch.ElapsedMillis();
    if (!result.ok()) return 1;
    std::printf("%-22s %-10lld %-10lld %-10lld %-10lld %-12.1f\n",
                util::StrFormat("kim+yi+coarse(L=%lld)",
                                static_cast<long long>(segment))
                    .c_str(),
                static_cast<long long>(result->pruned_by_kim),
                static_cast<long long>(result->pruned_by_yi),
                static_cast<long long>(result->pruned_by_coarse),
                static_cast<long long>(result->full_computations), ms);
  }
  {
    // Full multi-resolution refinement (FTW-style): candidates climb a
    // granularity ladder and abandon at the first level that proves them
    // worse than the best so far.
    util::Stopwatch stopwatch;
    const auto result = dtw::MultiResolutionNearestNeighbor(
        candidates, query, dtw::FtwOptions{{32, 16, 8}, {}});
    const double ms = stopwatch.ElapsedMillis();
    if (!result.ok()) return 1;
    int64_t pruned = 0;
    for (const int64_t p : result->pruned_at_level) pruned += p;
    std::printf("%-22s %-10s %-10s %-10lld %-10lld %-12.1f\n",
                "multiresolution", "-", "-", static_cast<long long>(pruned),
                static_cast<long long>(result->full_computations), ms);
  }
  std::printf(
      "\nfiner segments prune more candidates before the O(n*m) full DTW,\n"
      "at O(n*m/L^2) bound cost each — the coarse-to-fine trade-off. The\n"
      "multi-resolution ladder gets the cheap level's speed with the fine\n"
      "level's pruning power.\n");
  return 0;
}
