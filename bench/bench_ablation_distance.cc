// Ablation A2: local distance choice. The paper notes the algorithm is
// independent of the tick-to-tick distance (squared vs absolute). This
// bench confirms the per-tick cost is essentially identical for both, so
// the choice is purely semantic.

#include <benchmark/benchmark.h>

#include "core/spring.h"
#include "dtw/local_distance.h"
#include "gen/masked_chirp.h"

namespace springdtw {
namespace {

void RunDistanceBench(benchmark::State& state,
                      dtw::LocalDistance distance) {
  gen::MaskedChirpOptions options;
  options.length = 50000;
  const auto data = GenerateMaskedChirp(options, 256);

  core::SpringOptions spring_options;
  spring_options.epsilon = 100.0;
  spring_options.local_distance = distance;
  core::SpringMatcher matcher(data.query.values(), spring_options);
  core::Match match;

  int64_t t = 0;
  for (auto _ : state) {
    matcher.Update(data.stream[t % data.stream.size()], &match);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpringTickSquaredDistance(benchmark::State& state) {
  RunDistanceBench(state, dtw::LocalDistance::kSquared);
}

void BM_SpringTickAbsoluteDistance(benchmark::State& state) {
  RunDistanceBench(state, dtw::LocalDistance::kAbsolute);
}

BENCHMARK(BM_SpringTickSquaredDistance);
BENCHMARK(BM_SpringTickAbsoluteDistance);

}  // namespace
}  // namespace springdtw
