// Network ingest throughput: ticks/sec into a ShardedMonitor fed directly
// (in-process PushBatch baseline) vs over the loopback wire through
// springdtw_serve's StreamServer, with 1 and 8 client connections.
//
//   ./bench_net_ingest [--streams=8] [--m=32] [--ticks_per_stream=20000]
//       [--chunk=256] [--workers=2] [--repeats=3] [--smoke]
//       [--json_out=FILE]
//
// The wire adds framing, syscalls, and the event loop on top of the same
// monitor, so net/direct is the protocol's overhead factor. Absolute
// numbers are hardware-bound; the bench gates (under --smoke, run by
// scripts/check.sh) on liveness properties — every path moves ticks, every
// drain barrier accounts for exactly the ticks sent, the server reports no
// slow-subscriber disconnects for these drain-paced feeders — plus two
// differential bounds: fsync=os write-ahead logging must cost under 10%
// of single-connection throughput, and the metrics timeline + alert
// evaluation must cost under 5% of traced throughput (each measured
// against a pairwise-interleaved baseline, so machine drift cancels).
// With one hardware thread the pairs time-slice against each other and
// the differentials are noise: negative overheads clamp to zero, the
// gauges carry an unreliable="single_thread" label, and the bounds only
// warn.
//
// All measurements are emitted as a BENCH_METRICS_JSON line
// (bench_net_ingest_ticks_per_sec{path=direct|net, connections=N}).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/spring.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/alert.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "wal/wal.h"

namespace springdtw {
namespace {

struct Workload {
  std::vector<std::vector<double>> streams;
  std::vector<std::vector<double>> queries;  // One per stream.
  core::SpringOptions options;
};

Workload MakeWorkload(int64_t num_streams, int64_t m,
                      int64_t ticks_per_stream) {
  Workload w;
  w.options.epsilon = 0.25;  // Random walks rarely match: measures ingest.
  util::Rng rng(20070415);
  for (int64_t s = 0; s < num_streams; ++s) {
    std::vector<double> stream(static_cast<size_t>(ticks_per_stream));
    double x = 0.0;
    for (double& v : stream) {
      x += rng.Gaussian(0.0, 0.2);
      v = x;
    }
    w.streams.push_back(std::move(stream));
    std::vector<double> query(static_cast<size_t>(m));
    double y = 0.0;
    for (double& v : query) {
      y += rng.Gaussian(0.0, 0.2);
      v = y;
    }
    w.queries.push_back(std::move(query));
  }
  return w;
}

int64_t TotalTicks(const Workload& w) {
  int64_t total = 0;
  for (const auto& stream : w.streams) {
    total += static_cast<int64_t>(stream.size());
  }
  return total;
}

void BuildTopology(const Workload& w, monitor::ShardedMonitor* monitor) {
  for (size_t s = 0; s < w.streams.size(); ++s) {
    const int64_t stream_id =
        monitor->AddStream("n" + std::to_string(s), /*repair_missing=*/false);
    if (!monitor->AddQuery(stream_id, "q", w.queries[s], w.options).ok()) {
      std::fprintf(stderr, "AddQuery failed\n");
      std::exit(1);
    }
  }
}

/// Baseline: the same monitor fed in-process, no wire.
double MeasureDirect(const Workload& w, int64_t workers, int64_t chunk) {
  monitor::ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = workers;
  monitor::ShardedMonitor monitor(monitor_options);
  BuildTopology(w, &monitor);
  monitor::CollectSink sink;
  monitor.AddSink(&sink);
  monitor.Start();
  const int64_t ticks_per_stream =
      static_cast<int64_t>(w.streams[0].size());
  util::Stopwatch stopwatch;
  for (int64_t at = 0; at < ticks_per_stream; at += chunk) {
    const int64_t n = std::min(chunk, ticks_per_stream - at);
    for (size_t s = 0; s < w.streams.size(); ++s) {
      (void)monitor.PushBatch(
          static_cast<int64_t>(s),
          std::span<const double>(w.streams[s].data() + at,
                                  static_cast<size_t>(n)));
    }
  }
  monitor.Drain();
  const double seconds = stopwatch.ElapsedSeconds();
  monitor.Stop();
  return seconds > 0.0 ? static_cast<double>(TotalTicks(w)) / seconds : 0.0;
}

/// Loopback: `connections` clients split the streams round-robin and feed
/// concurrently; the clock stops when every client's DRAIN barrier has
/// confirmed full application. With `traced`, the serving monitor runs the
/// full observability stack at 1-in-64 sampling (spans + cost accounting),
/// the deployment default — its cost shows up as tracing_overhead_pct.
/// With `timeline` (implies traced), the monitor additionally folds every
/// published snapshot into the metrics timeline and evaluates a
/// representative alert rule set (one rate rule + the SLO burn-rate pair)
/// on the publish cadence — its cost shows up as timeline_overhead_pct.
/// With a non-empty `wal_dir`, every accepted batch is also framed into a
/// per-shard write-ahead log under fsync=os (the default durability tier,
/// docs/DURABILITY.md) before it is acked — its cost shows up as
/// wal_overhead_pct.
double MeasureNet(const Workload& w, int64_t workers, int64_t chunk,
                  int64_t connections, bool traced, bool timeline,
                  const std::string& wal_dir, int64_t* slow_disconnects) {
  monitor::ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = workers;
  if (traced) {
    monitor_options.enable_introspection = true;
    monitor_options.span_sample_every = 64;
    monitor_options.cost_sample_every = 64;
  }
  if (timeline) {
    monitor_options.enable_timeline = true;
    monitor_options.slo_p99_ms = 50.0;
    auto rule = obs::ParseAlertRule(
        "alert ingest_rate warn rate(spring_ticks_total) > 1 for 1s");
    if (!rule.ok()) {
      std::fprintf(stderr, "bench alert rule failed to parse: %s\n",
                   rule.status().ToString().c_str());
      std::exit(1);
    }
    monitor_options.alert_rules.push_back(*std::move(rule));
  }
  monitor::ShardedMonitor monitor(monitor_options);
  BuildTopology(w, &monitor);
  monitor.Start();
  std::unique_ptr<wal::WalWriter> wal;
  if (!wal_dir.empty()) {
    wal::WalOptions wal_options;
    wal_options.dir = wal_dir;
    wal_options.num_shards = workers;
    wal_options.fsync = wal::FsyncPolicy::kOs;
    auto opened = wal::WalWriter::Open(wal_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "WAL open failed: %s\n",
                   opened.status().ToString().c_str());
      std::exit(1);
    }
    wal = std::move(*opened);
  }
  net::StreamServer server(&monitor, net::StreamServerOptions{});
  if (wal != nullptr) {
    // The bench measures the logging path, not checkpoint serialization;
    // admin-triggered checkpoints are a no-op here.
    server.SetCheckpointFn(
        [] { return util::StatusOr<uint64_t>(uint64_t{0}); });
    server.SetWal(wal.get());
  }
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  // The clock covers ingest only: feeders connect and open their streams
  // first (stream-open is an admin mutation — under a WAL it forces a
  // checkpoint + log truncation, which is setup cost, not steady state),
  // rendezvous on `ready`, and start feeding together on `go`.
  std::vector<std::thread> feeders;
  std::vector<bool> ok(static_cast<size_t>(connections), false);
  std::atomic<int64_t> ready{0};
  std::atomic<bool> go{false};
  for (int64_t c = 0; c < connections; ++c) {
    feeders.emplace_back([&, c]() {
      net::StreamClientOptions client_options;
      client_options.port = server.port();
      net::StreamClient client(client_options);
      std::vector<int64_t> ids(w.streams.size(), -1);
      bool prepared = client.Connect().ok();
      if (prepared) {
        for (size_t s = static_cast<size_t>(c); s < w.streams.size();
             s += static_cast<size_t>(connections)) {
          auto id = client.OpenStream("n" + std::to_string(s));
          if (!id.ok()) {
            prepared = false;
            break;
          }
          ids[s] = *id;
        }
      }
      // order: release/acquire — the main thread's `ready` read plus the
      // feeder's `go` read bracket the stopwatch start.
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (!prepared) return;
      const int64_t ticks_per_stream =
          static_cast<int64_t>(w.streams[0].size());
      int64_t sent = 0;
      for (int64_t at = 0; at < ticks_per_stream; at += chunk) {
        const int64_t n = std::min(chunk, ticks_per_stream - at);
        for (size_t s = static_cast<size_t>(c); s < w.streams.size();
             s += static_cast<size_t>(connections)) {
          if (!client
                   .TickBatch(ids[s], std::span<const double>(
                                          w.streams[s].data() + at,
                                          static_cast<size_t>(n)))
                   .ok()) {
            return;
          }
          sent += n;
        }
      }
      auto drained = client.Drain();
      if (!drained.ok() || sent == 0) return;
      ok[static_cast<size_t>(c)] = true;
    });
  }
  // order: acquire — pairs with the feeders' release increments.
  while (ready.load(std::memory_order_acquire) < connections) {
    std::this_thread::yield();
  }
  util::Stopwatch stopwatch;
  // order: release — the clock is running before any feeder proceeds.
  go.store(true, std::memory_order_release);
  for (auto& feeder : feeders) feeder.join();
  const double seconds = stopwatch.ElapsedSeconds();
  for (int64_t c = 0; c < connections; ++c) {
    if (!ok[static_cast<size_t>(c)]) {
      std::fprintf(stderr, "feeder %lld failed\n", static_cast<long long>(c));
      std::exit(1);
    }
  }
  *slow_disconnects += server.slow_disconnects();
  server.Stop();
  monitor.Stop();
  return seconds > 0.0 ? static_cast<double>(TotalTicks(w)) / seconds : 0.0;
}

/// Best of `repeats` runs — throughput benches want the least-disturbed
/// run, not the mean.
template <typename Fn>
double BestOf(int64_t repeats, Fn measure) {
  double best = 0.0;
  for (int64_t r = 0; r < repeats; ++r) {
    best = std::max(best, measure());
  }
  return best;
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t num_streams = flags.GetInt64("streams", 8);
  const int64_t m = flags.GetInt64("m", 32);
  // Smoke keeps the full default window: the WAL overhead gate is a
  // differential measurement, and a short window drowns it in scheduler
  // noise (a 4k-tick run is ~6 ms of wall clock).
  const int64_t ticks_per_stream = flags.GetInt64("ticks_per_stream", 20000);
  const int64_t chunk = std::max<int64_t>(1, flags.GetInt64("chunk", 256));
  const int64_t workers = std::max<int64_t>(1, flags.GetInt64("workers", 2));
  const int64_t repeats = std::max<int64_t>(1, flags.GetInt64("repeats", 3));

  const Workload w = MakeWorkload(num_streams, m, ticks_per_stream);
  const unsigned cores = std::thread::hardware_concurrency();

  bench::PrintHeader("Network ingest — direct vs loopback wire (" +
                     std::to_string(num_streams) + " streams, m = " +
                     std::to_string(m) + ", " + std::to_string(workers) +
                     " workers, " + std::to_string(cores) +
                     " hardware threads)");

  bench::MetricsEmitter emitter("net_ingest");

  const double direct = BestOf(
      repeats, [&] { return MeasureDirect(w, workers, chunk); });
  std::printf("%-28s %12.0f ticks/sec\n", "direct PushBatch", direct);
  emitter.SetGauge("bench_net_ingest_ticks_per_sec",
                   "monitor ingest throughput", direct,
                   {obs::Label{"path", "direct"}});

  // Single connection, untraced vs traced (end-to-end spans + cost
  // accounting at the 1-in-64 deployment default). The two runs are
  // interleaved pairwise so machine drift over the bench's lifetime hits
  // both sides equally — the overhead percentage is a differential metric
  // and sequential blocks would bake the drift into it.
  int64_t slow_disconnects = 0;
  double net_1 = 0.0;
  double net_traced = 0.0;
  for (int64_t r = 0; r < repeats; ++r) {
    net_1 = std::max(net_1,
                     MeasureNet(w, workers, chunk, /*connections=*/1,
                                /*traced=*/false, /*timeline=*/false, "",
                                &slow_disconnects));
    net_traced = std::max(
        net_traced, MeasureNet(w, workers, chunk, /*connections=*/1,
                               /*traced=*/true, /*timeline=*/false, "",
                               &slow_disconnects));
  }
  std::printf("%-28s %12.0f ticks/sec  (%.2fx vs direct)\n", "loopback 1 conn",
              net_1, direct > 0.0 ? net_1 / direct : 0.0);
  emitter.SetGauge("bench_net_ingest_ticks_per_sec",
                   "monitor ingest throughput", net_1,
                   {obs::Label{"path", "net"}, obs::Label{"connections", "1"}});

  const double net_8 = BestOf(repeats, [&] {
    return MeasureNet(w, workers, chunk, /*connections=*/8, /*traced=*/false,
                      /*timeline=*/false, "", &slow_disconnects);
  });
  std::printf("%-28s %12.0f ticks/sec  (%.2fx vs direct)\n", "loopback 8 conn",
              net_8, direct > 0.0 ? net_8 / direct : 0.0);
  emitter.SetGauge("bench_net_ingest_ticks_per_sec",
                   "monitor ingest throughput", net_8,
                   {obs::Label{"path", "net"}, obs::Label{"connections", "8"}});

  // WAL on (fsync=os, the default durability tier) vs off, same pairwise
  // interleave as the tracing pair and with its own plain baseline so the
  // differential sees identical machine conditions. Fresh log directory
  // per run: segment rotation and reopen costs are part of the price.
  char wal_root_template[] = "/tmp/bench_net_ingest_wal.XXXXXX";
  if (mkdtemp(wal_root_template) == nullptr) {
    std::printf("cannot create WAL bench directory\n");
    return 1;
  }
  const std::string wal_root = wal_root_template;
  double net_wal = 0.0;
  double wal_best_ratio = 0.0;
  for (int64_t r = 0; r < repeats; ++r) {
    const double base =
        MeasureNet(w, workers, chunk, /*connections=*/1,
                   /*traced=*/false, /*timeline=*/false, "",
                   &slow_disconnects);
    const double with_wal =
        MeasureNet(w, workers, chunk, /*connections=*/1, /*traced=*/false,
                   /*timeline=*/false, wal_root + "/r" + std::to_string(r),
                   &slow_disconnects);
    net_wal = std::max(net_wal, with_wal);
    // The overhead comes from the best adjacent-in-time pairing, not from
    // a ratio of global bests: each pair ran under (nearly) the same
    // machine conditions, so per-pair ratios cancel drift that a
    // cross-pair ratio would book as WAL cost.
    if (base > 0.0) {
      wal_best_ratio = std::max(wal_best_ratio, with_wal / base);
    }
  }
  std::error_code wal_cleanup_ec;
  std::filesystem::remove_all(wal_root, wal_cleanup_ec);
  // On a single hardware thread the two sides of a differential pair
  // time-slice against each other and the "overhead" swings tens of
  // percent either way — a negative number is pure scheduler noise, not a
  // speedup. Clamp it to zero, tag the gauge unreliable, and downgrade the
  // smoke gates to warnings below.
  const bool single_thread = cores <= 1;
  const double wal_overhead_raw =
      wal_best_ratio > 0.0 ? (1.0 - wal_best_ratio) * 100.0 : 100.0;
  const double wal_overhead_pct =
      single_thread ? std::max(0.0, wal_overhead_raw) : wal_overhead_raw;
  std::printf("%-28s %12.0f ticks/sec  (%+.2f%% vs no WAL)%s\n",
              "loopback 1 conn wal=os", net_wal, -wal_overhead_pct,
              single_thread ? "  [unreliable: single thread]" : "");
  emitter.SetGauge(
      "bench_net_ingest_ticks_per_sec", "monitor ingest throughput", net_wal,
      {obs::Label{"path", "net"}, obs::Label{"connections", "1"},
       obs::Label{"wal", "os"}});
  if (single_thread) {
    emitter.SetGauge(
        "bench_net_ingest_wal_overhead_pct",
        "throughput lost to fsync=os write-ahead logging, percent",
        wal_overhead_pct, {obs::Label{"unreliable", "single_thread"}});
  } else {
    emitter.SetGauge(
        "bench_net_ingest_wal_overhead_pct",
        "throughput lost to fsync=os write-ahead logging, percent",
        wal_overhead_pct);
  }

  const double tracing_overhead_pct =
      net_1 > 0.0 ? (net_1 - net_traced) / net_1 * 100.0 : 0.0;
  std::printf("%-28s %12.0f ticks/sec  (%+.2f%% vs untraced)\n",
              "loopback 1 conn traced", net_traced, -tracing_overhead_pct);
  emitter.SetGauge(
      "bench_net_ingest_ticks_per_sec", "monitor ingest throughput",
      net_traced,
      {obs::Label{"path", "net"}, obs::Label{"connections", "1"},
       obs::Label{"tracing", "on"}});
  emitter.SetGauge("bench_net_ingest_tracing_overhead_pct",
                   "throughput lost to 1-in-64 span/cost sampling, percent",
                   tracing_overhead_pct);

  // Timeline + alerting on top of tracing (the full observability stack a
  // dashboarded deployment runs): every published snapshot folds into the
  // multi-resolution timeline and the alert rules evaluate on the publish
  // cadence. Pairwise-interleaved against a traced-only baseline, same
  // drift-cancelling scheme as the WAL pair.
  double net_timeline = 0.0;
  double timeline_best_ratio = 0.0;
  for (int64_t r = 0; r < repeats; ++r) {
    const double base =
        MeasureNet(w, workers, chunk, /*connections=*/1,
                   /*traced=*/true, /*timeline=*/false, "",
                   &slow_disconnects);
    const double with_timeline =
        MeasureNet(w, workers, chunk, /*connections=*/1,
                   /*traced=*/true, /*timeline=*/true, "",
                   &slow_disconnects);
    net_timeline = std::max(net_timeline, with_timeline);
    if (base > 0.0) {
      timeline_best_ratio =
          std::max(timeline_best_ratio, with_timeline / base);
    }
  }
  const double timeline_overhead_raw =
      timeline_best_ratio > 0.0 ? (1.0 - timeline_best_ratio) * 100.0 : 100.0;
  const double timeline_overhead_pct =
      single_thread ? std::max(0.0, timeline_overhead_raw)
                    : timeline_overhead_raw;
  std::printf("%-28s %12.0f ticks/sec  (%+.2f%% vs traced)%s\n",
              "loopback 1 conn timeline", net_timeline, -timeline_overhead_pct,
              single_thread ? "  [unreliable: single thread]" : "");
  emitter.SetGauge(
      "bench_net_ingest_ticks_per_sec", "monitor ingest throughput",
      net_timeline,
      {obs::Label{"path", "net"}, obs::Label{"connections", "1"},
       obs::Label{"timeline", "on"}});
  if (single_thread) {
    emitter.SetGauge(
        "bench_net_ingest_timeline_overhead_pct",
        "throughput lost to metrics timeline + alert evaluation, percent",
        timeline_overhead_pct, {obs::Label{"unreliable", "single_thread"}});
  } else {
    emitter.SetGauge(
        "bench_net_ingest_timeline_overhead_pct",
        "throughput lost to metrics timeline + alert evaluation, percent",
        timeline_overhead_pct);
  }

  emitter.SetGauge("bench_net_ingest_hardware_threads",
                   "std::thread::hardware_concurrency at bench time",
                   static_cast<double>(cores));
  emitter.SetGauge("bench_net_ingest_wire_overhead",
                   "direct ticks/sec over single-connection ticks/sec",
                   net_1 > 0.0 ? direct / net_1 : 0.0);
  emitter.Emit();
  const std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty() && !emitter.WriteJsonFile(json_out)) {
    std::printf("cannot write --json_out=%s\n", json_out.c_str());
    return 1;
  }

  if (smoke) {
    // Liveness gates only — ratios are hardware-bound.
    if (direct <= 0.0 || net_1 <= 0.0 || net_8 <= 0.0 || net_traced <= 0.0) {
      std::printf("SMOKE FAIL: a path moved no ticks\n");
      return 1;
    }
    if (slow_disconnects != 0) {
      std::printf("SMOKE FAIL: drain-paced feeders were disconnected\n");
      return 1;
    }
    if (net_wal <= 0.0) {
      std::printf("SMOKE FAIL: WAL path moved no ticks\n");
      return 1;
    }
    if (net_timeline <= 0.0) {
      std::printf("SMOKE FAIL: timeline path moved no ticks\n");
      return 1;
    }
    // Durability is supposed to be nearly free at the fsync=os tier: the
    // append is a frame encode plus a page-cache write. Best-of repeats on
    // both sides of the pair damp scheduler noise. On a single hardware
    // thread the differential is dominated by time-slicing, so the bounds
    // only warn there.
    if (wal_overhead_pct >= 10.0) {
      if (single_thread) {
        std::printf("SMOKE WARN: fsync=os WAL overhead %.2f%% >= 10%% "
                    "(single hardware thread, not gated)\n",
                    wal_overhead_pct);
      } else {
        std::printf("SMOKE FAIL: fsync=os WAL overhead %.2f%% >= 10%%\n",
                    wal_overhead_pct);
        return 1;
      }
    }
    // The timeline folds ~10 snapshots/sec of pre-aggregated metrics on
    // the router thread — bounded work regardless of ingest rate, so it
    // must stay under 5% of traced throughput.
    if (timeline_overhead_pct >= 5.0) {
      if (single_thread) {
        std::printf("SMOKE WARN: timeline overhead %.2f%% >= 5%% "
                    "(single hardware thread, not gated)\n",
                    timeline_overhead_pct);
      } else {
        std::printf("SMOKE FAIL: timeline overhead %.2f%% >= 5%%\n",
                    timeline_overhead_pct);
        return 1;
      }
    }
  }
  std::printf("\nnote: net/direct is the protocol overhead factor; it is "
              "reported, not gated\n(loopback throughput is "
              "hardware-bound).\n");
  return 0;
}
