// Ablation A7: effect of the match-length-constraint extension
// (SpringOptions::max_match_length). The per-cell span check adds a bounded
// per-tick cost; tighter caps trade recall of strongly-stretched episodes
// for match compactness.
//
//   ./bench_ablation_constraints [--length=50000]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/spring.h"
#include "eval/detection.h"
#include "gen/masked_chirp.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  gen::MaskedChirpOptions data_options;
  data_options.length = flags.GetInt64("length", 50000);
  data_options.num_episodes = 8;
  data_options.min_episode_length = 1500;
  data_options.max_episode_length = 4000;
  const auto data = GenerateMaskedChirp(data_options, 2048);

  bench::PrintHeader(
      "Ablation A7 — match-length constraints (query m = 2048, episodes "
      "1500..4000 ticks)");
  std::printf("%-16s %-12s %-10s %-12s %-14s\n", "max_match_len",
              "us_per_tick", "matches", "recall", "longest_match");

  for (const int64_t cap : {0LL, 8192LL, 4096LL, 2048LL, 1024LL}) {
    core::SpringOptions options;
    options.epsilon = 100.0;
    options.max_match_length = cap;
    core::SpringMatcher matcher(data.query.values(), options);

    std::vector<core::Match> matches;
    core::Match match;
    util::Stopwatch stopwatch;
    for (int64_t t = 0; t < data.stream.size(); ++t) {
      if (matcher.Update(data.stream[t], &match)) matches.push_back(match);
    }
    const double us_per_tick =
        stopwatch.ElapsedMicros() / static_cast<double>(data.stream.size());
    if (matcher.Flush(&match)) matches.push_back(match);

    int64_t longest = 0;
    for (const core::Match& m : matches) {
      longest = std::max(longest, m.length());
    }
    const eval::DetectionScore score =
        eval::ScoreMatches(data.events, matches);
    std::printf("%-16lld %-12.3f %-10zu %-12.2f %-14lld\n",
                static_cast<long long>(cap), us_per_tick, matches.size(),
                score.recall(), static_cast<long long>(longest));
  }
  std::printf(
      "\n0 = unlimited (the paper's semantics). Caps below the episode\n"
      "lengths fragment or drop the long matches (recall falls); the span\n"
      "check itself costs little.\n");
  return 0;
}
