// Ablation A8: the paper remarks (Table 2 discussion) that "the output
// time does not depend on threshold epsilon" — a match is committed as soon
// as no live path can beat it, which is a property of the data, not of the
// threshold. This bench sweeps epsilon across an order of magnitude and
// reports the mean output delay (report_time - end) of the planted
// episodes' matches.
//
//   ./bench_ablation_outputdelay [--length=30000]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/spring.h"
#include "core/subsequence_scan.h"
#include "eval/detection.h"
#include "gen/masked_chirp.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  gen::MaskedChirpOptions data_options;
  data_options.length = flags.GetInt64("length", 30000);
  data_options.num_episodes = 5;
  const auto data = GenerateMaskedChirp(data_options, 2048);

  // Baseline epsilon: just admits every planted episode.
  const double base = core::CalibrateEpsilon(
      data.stream, data.query,
      bench::EventRegions(data.events, data.stream.size(), 100), 1.05);

  bench::PrintHeader(
      "Ablation A8 — output delay vs epsilon (paper: output time does not "
      "depend on epsilon)");
  std::printf("%-12s %-10s %-10s %-18s %-18s\n", "epsilon", "matches",
              "recall", "mean_delay_ticks", "max_delay_ticks");

  for (const double scale : {1.0, 1.5, 2.0, 4.0, 8.0}) {
    const double epsilon = base * scale;
    const std::vector<core::Match> matches =
        core::DisjointMatches(data.stream, data.query, epsilon);
    const eval::DetectionScore score =
        eval::ScoreMatches(data.events, matches);
    double max_delay = 0.0;
    for (const core::Match& m : matches) {
      max_delay = std::max(
          max_delay, static_cast<double>(m.report_time - m.end));
    }
    std::printf("%-12.4g %-10zu %-10.2f %-18.0f %-18.0f\n", epsilon,
                matches.size(), score.recall(),
                score.output_delay.mean(), max_delay);
  }
  std::printf(
      "\nlarger epsilons admit extra (weaker) matches, but the delay with\n"
      "which each episode's optimum is committed stays in the same range —\n"
      "it is governed by when competing paths die out, not by epsilon.\n");
  return 0;
}
