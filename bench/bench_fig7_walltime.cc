// Reproduces the paper's Figure 7 (experiment E5): wall-clock time per
// time-tick for disjoint queries as a function of the sequence length n,
// for the Naive method and SPRING. Query length m = 256 (as in the paper),
// MaskedChirp data.
//
// The paper's shape to check: the naive curve grows linearly with n (its
// per-tick cost is O(n*m)) while SPRING is flat (O(m)); at n = 10^6 the
// ratio reaches the order of 10^5..10^6 ("up to 650,000 times faster").
//
// Methodology note: the naive method's state at length n is fabricated via
// PrewarmForBenchmark (columns full of finite values) — the per-tick work
// is identical to having replayed n ticks, which would cost O(n^2 m) to do
// honestly. SPRING is measured by honestly streaming n ticks.
//
//   ./bench_fig7_walltime [--max_n=1000000] [--m=256] [--naive_ticks=5]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/naive.h"
#include "core/spring.h"
#include "gen/masked_chirp.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace springdtw {
namespace {

// Average per-tick microseconds of SPRING over an n-tick stream.
double MeasureSpringMicros(const ts::Series& stream, int64_t n,
                           const std::vector<double>& query,
                           double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  core::SpringMatcher matcher(query, options);
  core::Match match;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < n; ++t) {
    matcher.Update(stream[t % stream.size()], &match);
  }
  return stopwatch.ElapsedMicros() / static_cast<double>(n);
}

// Per-tick microseconds of the naive method once the stream has length n,
// averaged over `ticks` consecutive updates.
double MeasureNaiveMicros(const ts::Series& stream, int64_t n,
                          const std::vector<double>& query, double epsilon,
                          int64_t ticks) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  core::NaiveMatcher matcher(query, options);
  matcher.PrewarmForBenchmark(n, 1.0);
  core::Match match;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < ticks; ++t) {
    matcher.Update(stream[t % stream.size()], &match);
  }
  return stopwatch.ElapsedMicros() / static_cast<double>(ticks);
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  const int64_t max_n = flags.GetInt64("max_n", 1000000);
  const int64_t m = flags.GetInt64("m", 256);
  const int64_t naive_ticks = flags.GetInt64("naive_ticks", 5);

  gen::MaskedChirpOptions data_options;
  data_options.length = 100000;  // Cycled for longer streams.
  const auto data =
      GenerateMaskedChirp(data_options, /*query_length=*/m);
  const double epsilon = 100.0;

  bench::PrintHeader(
      "Figure 7 — wall clock time per tick vs sequence length "
      "(disjoint queries, m = " +
      std::to_string(m) + ")");
  std::printf("%-10s %-16s %-16s %-12s\n", "n", "naive_ms_tick",
              "spring_ms_tick", "speedup");

  for (int64_t n = 1000; n <= max_n; n *= 10) {
    const double spring_us =
        MeasureSpringMicros(data.stream, n, data.query.values(), epsilon);
    const double naive_us = MeasureNaiveMicros(
        data.stream, n, data.query.values(), epsilon, naive_ticks);
    std::printf("%-10lld %-16.4f %-16.6f %-12.0f\n",
                static_cast<long long>(n), naive_us / 1e3, spring_us / 1e3,
                naive_us / spring_us);
  }
  std::printf(
      "\npaper shape: naive grows ~linearly in n; SPRING is constant;\n"
      "speedup at n=10^6 on the order of 10^5..10^6 (paper: 650,000x).\n");
  return 0;
}
