// Reproduces the paper's Figure 7 (experiment E5): wall-clock time per
// time-tick for disjoint queries as a function of the sequence length n,
// for the Naive method and SPRING. Query length m = 256 (as in the paper),
// MaskedChirp data.
//
// The paper's shape to check: the naive curve grows linearly with n (its
// per-tick cost is O(n*m)) while SPRING is flat (O(m)); at n = 10^6 the
// ratio reaches the order of 10^5..10^6 ("up to 650,000 times faster").
//
// Methodology note: the naive method's state at length n is fabricated via
// PrewarmForBenchmark (columns full of finite values) — the per-tick work
// is identical to having replayed n ticks, which would cost O(n^2 m) to do
// honestly. SPRING is measured by honestly streaming n ticks.
//
//   ./bench_fig7_walltime [--max_n=1000000] [--m=256] [--naive_ticks=5]
//       [--overhead_n=200000] [--json_out=FILE]
//
// Besides the paper table, the bench measures the MonitorEngine's
// metrics-collection overhead (engine with observability attached vs
// plain) over --overhead_n ticks, and emits every measurement as a
// machine-readable BENCH_METRICS_JSON line.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/naive.h"
#include "core/spring.h"
#include "gen/masked_chirp.h"
#include "monitor/engine.h"
#include "obs/observability.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace springdtw {
namespace {

// Average per-tick microseconds of SPRING over an n-tick stream.
double MeasureSpringMicros(const ts::Series& stream, int64_t n,
                           const std::vector<double>& query,
                           double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  core::SpringMatcher matcher(query, options);
  core::Match match;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < n; ++t) {
    matcher.Update(stream[t % stream.size()], &match);
  }
  return stopwatch.ElapsedMicros() / static_cast<double>(n);
}

// Per-tick microseconds of the naive method once the stream has length n,
// averaged over `ticks` consecutive updates.
double MeasureNaiveMicros(const ts::Series& stream, int64_t n,
                          const std::vector<double>& query, double epsilon,
                          int64_t ticks) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  core::NaiveMatcher matcher(query, options);
  matcher.PrewarmForBenchmark(n, 1.0);
  core::Match match;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < ticks; ++t) {
    matcher.Update(stream[t % stream.size()], &match);
  }
  return stopwatch.ElapsedMicros() / static_cast<double>(ticks);
}

// Per-tick microseconds of SPRING driven through the MonitorEngine, with
// or without an observability bundle attached. Used to check the
// metrics-enabled overhead stays small (<5% is the budget).
double MeasureEngineMicros(const ts::Series& stream, int64_t n,
                           const std::vector<double>& query, double epsilon,
                           obs::Observability* observability) {
  monitor::MonitorEngine engine;
  if (observability != nullptr) engine.AttachObservability(observability);
  const int64_t stream_id = engine.AddStream("bench", false);
  core::SpringOptions options;
  options.epsilon = epsilon;
  if (!engine.AddQuery(stream_id, "fig7", query, options).ok()) return 0.0;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < n; ++t) {
    (void)engine.Push(stream_id, stream[t % stream.size()]);
  }
  const double micros = stopwatch.ElapsedMicros();
  if (observability != nullptr) engine.RefreshObservabilityGauges();
  return micros / static_cast<double>(n);
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  const int64_t max_n = flags.GetInt64("max_n", 1000000);
  const int64_t m = flags.GetInt64("m", 256);
  const int64_t naive_ticks = flags.GetInt64("naive_ticks", 5);

  gen::MaskedChirpOptions data_options;
  data_options.length = 100000;  // Cycled for longer streams.
  const auto data =
      GenerateMaskedChirp(data_options, /*query_length=*/m);
  const double epsilon = 100.0;

  bench::PrintHeader(
      "Figure 7 — wall clock time per tick vs sequence length "
      "(disjoint queries, m = " +
      std::to_string(m) + ")");
  std::printf("%-10s %-16s %-16s %-12s\n", "n", "naive_ms_tick",
              "spring_ms_tick", "speedup");

  bench::MetricsEmitter emitter("fig7_walltime");
  for (int64_t n = 1000; n <= max_n; n *= 10) {
    const double spring_us =
        MeasureSpringMicros(data.stream, n, data.query.values(), epsilon);
    const double naive_us = MeasureNaiveMicros(
        data.stream, n, data.query.values(), epsilon, naive_ticks);
    std::printf("%-10lld %-16.4f %-16.6f %-12.0f\n",
                static_cast<long long>(n), naive_us / 1e3, spring_us / 1e3,
                naive_us / spring_us);
    const obs::Labels by_n = {obs::Label{"n", std::to_string(n)}};
    emitter.SetGauge("bench_spring_us_per_tick",
                     "SPRING per-tick wall time (microseconds)", spring_us,
                     by_n);
    emitter.SetGauge("bench_naive_us_per_tick",
                     "naive per-tick wall time (microseconds)", naive_us,
                     by_n);
  }

  // Metrics-collection overhead: the same SPRING workload driven through
  // the MonitorEngine, observability off vs on.
  const int64_t overhead_n =
      std::max<int64_t>(1, flags.GetInt64("overhead_n", 200000));
  const double plain_us = MeasureEngineMicros(
      data.stream, overhead_n, data.query.values(), epsilon, nullptr);
  obs::Observability observability;
  const double observed_us =
      MeasureEngineMicros(data.stream, overhead_n, data.query.values(),
                          epsilon, &observability);
  const double overhead_pct =
      plain_us > 0.0 ? (observed_us / plain_us - 1.0) * 100.0 : 0.0;
  std::printf(
      "\nengine overhead over %lld ticks: plain %.4f us/tick, "
      "with metrics %.4f us/tick (%+.2f%%, budget <5%%)\n",
      static_cast<long long>(overhead_n), plain_us, observed_us,
      overhead_pct);
  emitter.SetGauge("bench_engine_plain_us_per_tick",
                   "MonitorEngine per-tick wall time, observability off",
                   plain_us);
  emitter.SetGauge("bench_engine_observed_us_per_tick",
                   "MonitorEngine per-tick wall time, observability on",
                   observed_us);
  emitter.SetGauge("bench_engine_metrics_overhead_pct",
                   "metrics-enabled engine overhead vs plain, percent",
                   overhead_pct);

  const obs::MetricsSnapshot engine_snapshot =
      observability.registry().Snapshot();
  emitter.Emit(&engine_snapshot);
  const std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty() &&
      !emitter.WriteJsonFile(json_out, &engine_snapshot)) {
    std::printf("cannot write --json_out=%s\n", json_out.c_str());
    return 1;
  }

  std::printf(
      "\npaper shape: naive grows ~linearly in n; SPRING is constant;\n"
      "speedup at n=10^6 on the order of 10^5..10^6 (paper: 650,000x).\n");
  return 0;
}
