// Scale-out throughput for the monitoring layer: ticks/sec of the scalar
// per-matcher engine vs the SoA batched engine (by ingest chunk size), and
// of the ShardedMonitor shell at 1, 2, and 4 workers.
//
//   ./bench_scaleout [--streams=8] [--queries_per_stream=8] [--m=64]
//       [--ticks_per_stream=40000] [--chunk=256] [--repeats=3] [--smoke]
//       [--json_out=FILE]
//
// Two very different claims are measured, and they gate differently:
//
//   * The batched single-thread path must not lose to the scalar path —
//     that is a pure software property, so --smoke (a small workload run
//     by scripts/check.sh) FAILS the process when batched ticks/sec drops
//     below 0.9x scalar.
//   * Worker scaling (the ISSUE's >= 3x at 4 workers) is a hardware
//     property: on a single-core container every extra worker is pure
//     overhead. The bench reports the measured ratio and the core count
//     honestly and never gates on it.
//
// All measurements are emitted as a BENCH_METRICS_JSON line.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/spring.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace springdtw {
namespace {

struct Workload {
  std::vector<std::vector<double>> streams;
  std::vector<std::vector<double>> queries;  // queries_per_stream each.
  int64_t queries_per_stream = 0;
  core::SpringOptions options;
};

Workload MakeWorkload(int64_t num_streams, int64_t queries_per_stream,
                      int64_t m, int64_t ticks_per_stream) {
  Workload w;
  w.queries_per_stream = queries_per_stream;
  w.options.epsilon = 0.25;  // Random walks rarely match: measures the DP.
  util::Rng rng(20070415);
  for (int64_t s = 0; s < num_streams; ++s) {
    std::vector<double> stream(static_cast<size_t>(ticks_per_stream));
    double x = 0.0;
    for (double& v : stream) {
      x += rng.Gaussian(0.0, 0.2);
      v = x;
    }
    w.streams.push_back(std::move(stream));
    for (int64_t q = 0; q < queries_per_stream; ++q) {
      std::vector<double> query(static_cast<size_t>(m));
      double y = 0.0;
      for (double& v : query) {
        y += rng.Gaussian(0.0, 0.2);
        v = y;
      }
      w.queries.push_back(std::move(query));
    }
  }
  return w;
}

int64_t TotalTicks(const Workload& w) {
  int64_t total = 0;
  for (const auto& stream : w.streams) {
    total += static_cast<int64_t>(stream.size());
  }
  return total;
}

/// Ticks/sec of a single MonitorEngine, scalar or batched, fed
/// round-robin across streams in `chunk`-value runs (chunk 1 = per-value
/// Push, the scalar baseline's natural shape).
double MeasureEngine(const Workload& w, bool batch_queries, int64_t chunk) {
  monitor::EngineOptions options;
  options.batch_queries = batch_queries;
  monitor::MonitorEngine engine(options);
  monitor::CollectSink sink;
  engine.AddSink(&sink);
  for (size_t s = 0; s < w.streams.size(); ++s) {
    const int64_t stream_id =
        engine.AddStream("s" + std::to_string(s), /*repair_missing=*/false);
    for (int64_t q = 0; q < w.queries_per_stream; ++q) {
      engine
          .AddQuery(stream_id, "q",
                    w.queries[static_cast<size_t>(
                        static_cast<int64_t>(s) * w.queries_per_stream + q)],
                    w.options)
          .ok();
    }
  }
  const int64_t ticks_per_stream =
      static_cast<int64_t>(w.streams[0].size());
  util::Stopwatch stopwatch;
  for (int64_t at = 0; at < ticks_per_stream; at += chunk) {
    const int64_t n = std::min(chunk, ticks_per_stream - at);
    for (size_t s = 0; s < w.streams.size(); ++s) {
      if (chunk == 1) {
        engine.Push(static_cast<int64_t>(s),
                    w.streams[s][static_cast<size_t>(at)])
            .ok();
      } else {
        engine
            .PushBatch(static_cast<int64_t>(s),
                       std::span<const double>(
                           w.streams[s].data() + at,
                           static_cast<size_t>(n)))
            .ok();
      }
    }
  }
  const double seconds = stopwatch.ElapsedSeconds();
  return seconds > 0.0 ? static_cast<double>(TotalTicks(w)) / seconds : 0.0;
}

/// Ticks/sec of the ShardedMonitor at `num_workers`, same feed shape.
double MeasureSharded(const Workload& w, int64_t num_workers,
                      int64_t chunk) {
  monitor::ShardedMonitorOptions options;
  options.num_workers = num_workers;
  monitor::ShardedMonitor monitor(options);
  monitor::CollectSink sink;
  monitor.AddSink(&sink);
  for (size_t s = 0; s < w.streams.size(); ++s) {
    const int64_t stream_id =
        monitor.AddStream("s" + std::to_string(s), /*repair_missing=*/false);
    for (int64_t q = 0; q < w.queries_per_stream; ++q) {
      monitor
          .AddQuery(stream_id, "q",
                    w.queries[static_cast<size_t>(
                        static_cast<int64_t>(s) * w.queries_per_stream + q)],
                    w.options)
          .ok();
    }
  }
  monitor.Start();
  const int64_t ticks_per_stream =
      static_cast<int64_t>(w.streams[0].size());
  util::Stopwatch stopwatch;
  for (int64_t at = 0; at < ticks_per_stream; at += chunk) {
    const int64_t n = std::min(chunk, ticks_per_stream - at);
    for (size_t s = 0; s < w.streams.size(); ++s) {
      monitor
          .PushBatch(static_cast<int64_t>(s),
                     std::span<const double>(w.streams[s].data() + at,
                                             static_cast<size_t>(n)))
          .ok();
    }
  }
  monitor.Drain();
  const double seconds = stopwatch.ElapsedSeconds();
  monitor.Stop();
  return seconds > 0.0 ? static_cast<double>(TotalTicks(w)) / seconds : 0.0;
}

/// Best of `repeats` runs — throughput benches want the least-disturbed
/// run, not the mean.
template <typename Fn>
double BestOf(int64_t repeats, Fn measure) {
  double best = 0.0;
  for (int64_t r = 0; r < repeats; ++r) {
    best = std::max(best, measure());
  }
  return best;
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t num_streams = flags.GetInt64("streams", smoke ? 4 : 8);
  const int64_t queries_per_stream =
      flags.GetInt64("queries_per_stream", 8);
  const int64_t m = flags.GetInt64("m", smoke ? 32 : 64);
  const int64_t ticks_per_stream =
      flags.GetInt64("ticks_per_stream", smoke ? 6000 : 40000);
  const int64_t chunk = std::max<int64_t>(1, flags.GetInt64("chunk", 256));
  const int64_t repeats = std::max<int64_t>(1, flags.GetInt64("repeats", 3));

  const Workload w =
      MakeWorkload(num_streams, queries_per_stream, m, ticks_per_stream);
  const unsigned cores = std::thread::hardware_concurrency();

  bench::PrintHeader(
      "Scale-out throughput — scalar vs batched vs sharded (" +
      std::to_string(num_streams) + " streams x " +
      std::to_string(queries_per_stream) + " queries, m = " +
      std::to_string(m) + ", " + std::to_string(cores) +
      " hardware threads)");

  bench::MetricsEmitter emitter("scaleout");

  const double scalar = BestOf(
      repeats, [&] { return MeasureEngine(w, /*batch_queries=*/false, 1); });
  std::printf("%-28s %12.0f ticks/sec\n", "engine scalar (chunk 1)", scalar);
  emitter.SetGauge("bench_scaleout_ticks_per_sec",
                   "monitoring ingest throughput",
                   scalar, {obs::Label{"path", "scalar"}});

  double batched_best = 0.0;
  for (const int64_t c : {int64_t{1}, int64_t{16}, chunk}) {
    const double batched = BestOf(
        repeats, [&] { return MeasureEngine(w, /*batch_queries=*/true, c); });
    batched_best = std::max(batched_best, batched);
    std::printf("%-28s %12.0f ticks/sec\n",
                ("engine batched (chunk " + std::to_string(c) + ")").c_str(),
                batched);
    emitter.SetGauge("bench_scaleout_ticks_per_sec",
                     "monitoring ingest throughput", batched,
                     {obs::Label{"path", "batch"},
                      obs::Label{"chunk", std::to_string(c)}});
  }

  double sharded_1 = 0.0;
  for (const int64_t workers : {int64_t{1}, int64_t{2}, int64_t{4}}) {
    // Worker-scaling rows are only meaningful when the extra workers run
    // on real hardware threads: on a 1-thread container a "4 workers" row
    // measures context-switch overhead, and publishing it as a scaling
    // result misleads anyone diffing BENCH_scaleout.json across machines.
    if (workers > 1 && cores <= 1) {
      std::printf("%-28s      skipped  (1 hardware thread)\n",
                  ("sharded " + std::to_string(workers) + " workers")
                      .c_str());
      continue;
    }
    // Feeder thread + `workers` shard threads actually scheduled.
    const int64_t threads_used = workers + 1;
    const char* placement =
        threads_used <= static_cast<int64_t>(cores) ? "dedicated"
                                                    : "oversubscribed";
    const double sharded =
        BestOf(repeats, [&] { return MeasureSharded(w, workers, chunk); });
    if (workers == 1) sharded_1 = sharded;
    std::printf("%-28s %12.0f ticks/sec  (%.2fx vs 1 worker, %s)\n",
                ("sharded " + std::to_string(workers) + " workers").c_str(),
                sharded, sharded_1 > 0.0 ? sharded / sharded_1 : 0.0,
                placement);
    emitter.SetGauge("bench_scaleout_ticks_per_sec",
                     "monitoring ingest throughput", sharded,
                     {obs::Label{"path", "sharded"},
                      obs::Label{"workers", std::to_string(workers)},
                      obs::Label{"threads_used",
                                 std::to_string(threads_used)},
                      obs::Label{"placement", placement}});
  }

  emitter.SetGauge("bench_scaleout_hardware_threads",
                   "std::thread::hardware_concurrency at bench time",
                   static_cast<double>(cores));
  emitter.SetGauge("bench_scaleout_batch_speedup",
                   "best batched ticks/sec over scalar ticks/sec",
                   scalar > 0.0 ? batched_best / scalar : 0.0);
  emitter.Emit();
  const std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty() && !emitter.WriteJsonFile(json_out)) {
    std::printf("cannot write --json_out=%s\n", json_out.c_str());
    return 1;
  }

  std::printf(
      "\nnote: worker scaling is hardware-gated (%u hardware threads "
      "here);\nthe batched-vs-scalar ratio is the software property this "
      "bench gates on.\n",
      cores);

  if (smoke) {
    // check.sh bench-smoke leg: the batched path losing >10%% to the
    // scalar path is a regression in the SoA pool, not noise.
    const double floor = 0.9 * scalar;
    if (batched_best < floor) {
      std::printf(
          "SMOKE FAIL: batched best %.0f ticks/sec < 0.9x scalar "
          "(%.0f)\n",
          batched_best, floor);
      return 1;
    }
    std::printf("SMOKE PASS: batched best %.0f >= 0.9x scalar (%.0f)\n",
                batched_best, floor);
  }
  return 0;
}
