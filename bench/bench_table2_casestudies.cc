// Reproduces the paper's Figure 6 + Table 2 (experiments E1-E4 in
// DESIGN.md): disjoint-query pattern discovery on the four case-study
// workloads — MaskedChirp, Temperature (Critter surrogate), Kursk seismic
// surrogate, and Sunspots surrogate. For each dataset it prints the
// Table-2-style rows: starting position, length, DTW distance, and output
// time of every reported subsequence, plus the detection score against the
// generator's ground truth.
//
// Absolute distances differ from the paper's (different concrete data); the
// shape to check is: every planted episode produces exactly one disjoint
// match, and the output time trails the match end by a small fraction of
// the query length.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/subsequence_scan.h"
#include "eval/detection.h"
#include "gen/masked_chirp.h"
#include "gen/seismic.h"
#include "gen/sunspots.h"
#include "gen/temperature.h"
#include "ts/repair.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace springdtw {
namespace {

struct CaseResult {
  std::string name;
  int64_t stream_length = 0;
  int64_t events = 0;
  int64_t detected = 0;
  int64_t matches = 0;
  double ticks_per_second = 0.0;
  double mean_output_delay = 0.0;
};

CaseResult RunCase(const std::string& name, const ts::Series& raw_stream,
                   const ts::Series& query,
                   const std::vector<gen::PlantedEvent>& events,
                   double slack) {
  const ts::Series stream =
      RepairMissing(raw_stream, ts::RepairPolicy::kHoldLast);
  const double epsilon = core::CalibrateEpsilon(
      stream, query, bench::EventRegions(events, stream.size(), 200), slack);

  core::SpringOptions options;
  options.epsilon = epsilon;
  core::SpringMatcher matcher(query.values(), options);

  std::vector<core::Match> matches;
  core::Match match;
  util::Stopwatch stopwatch;
  for (int64_t t = 0; t < stream.size(); ++t) {
    if (matcher.Update(stream[t], &match)) matches.push_back(match);
  }
  const double seconds = stopwatch.ElapsedSeconds();
  if (matcher.Flush(&match)) matches.push_back(match);

  bench::PrintTable2Block(name, epsilon, query.size(), matches);
  const eval::DetectionScore detection =
      eval::ScoreMatches(events, matches);
  std::printf("  detection: %s\n", detection.ToString().c_str());

  CaseResult result;
  result.name = name;
  result.stream_length = stream.size();
  result.events = static_cast<int64_t>(events.size());
  result.detected = bench::CountDetected(events, matches);
  result.matches = static_cast<int64_t>(matches.size());
  result.ticks_per_second =
      static_cast<double>(stream.size()) / (seconds > 0 ? seconds : 1e-12);
  double delay = 0.0;
  for (const core::Match& m : matches) {
    delay += static_cast<double>(m.report_time - m.end);
  }
  result.mean_output_delay =
      matches.empty() ? 0.0 : delay / static_cast<double>(matches.size());
  std::printf("  -> %lld/%lld planted episodes detected; mean output delay "
              "%.0f ticks; %.2fM ticks/s\n\n",
              static_cast<long long>(result.detected),
              static_cast<long long>(result.events),
              result.mean_output_delay, result.ticks_per_second / 1e6);
  return result;
}

}  // namespace
}  // namespace springdtw

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  const auto seed = static_cast<uint64_t>(flags.GetInt64("seed", 1));

  bench::PrintHeader(
      "Table 2 / Figure 6 — disjoint queries on the four case studies");

  std::vector<CaseResult> results;

  {
    // E1: MaskedChirp, paper parameters n=20000, m=2048.
    gen::MaskedChirpOptions options;
    options.length = flags.GetInt64("chirp_length", 20000);
    options.seed = seed;
    const auto data = GenerateMaskedChirp(options, 2048);
    results.push_back(
        RunCase("MaskedChirp", data.stream, data.query, data.events, 1.2));
  }
  {
    // E2: Temperature, n=30000, m=3000, many missing values.
    gen::TemperatureOptions options;
    options.length = flags.GetInt64("temp_length", 30000);
    options.seed = seed + 1;
    const auto data = GenerateTemperature(options, 3000);
    std::printf("  (stream has %lld missing readings, repaired hold-last)\n",
                static_cast<long long>(data.stream.CountMissing()));
    results.push_back(
        RunCase("Temperature", data.stream, data.query, data.events, 1.2));
  }
  {
    // E3: Kursk seismic surrogate, n=50000, m=4000.
    gen::SeismicOptions options;
    options.length = flags.GetInt64("kursk_length", 50000);
    options.event_length = 4000;
    options.seed = seed + 2;
    const auto data = GenerateSeismic(options);
    results.push_back(
        RunCase("Kursk", data.stream, data.query, data.events, 1.3));
  }
  {
    // E4: Sunspots surrogate, n=15000, m=2000.
    gen::SunspotOptions options;
    options.length = flags.GetInt64("sunspot_length", 15000);
    options.seed = seed + 3;
    const auto data = GenerateSunspots(options, 2000);
    results.push_back(
        RunCase("Sunspots", data.stream, data.query, data.events, 1.25));
  }

  bench::PrintHeader("Summary (paper: all episodes found on all datasets)");
  std::printf("%-13s %-9s %-9s %-9s %-11s %-12s\n", "dataset", "length",
              "events", "detected", "matches", "Mticks/s");
  bool all_detected = true;
  for (const CaseResult& r : results) {
    std::printf("%-13s %-9lld %-9lld %-9lld %-11lld %-12.2f\n",
                r.name.c_str(), static_cast<long long>(r.stream_length),
                static_cast<long long>(r.events),
                static_cast<long long>(r.detected),
                static_cast<long long>(r.matches),
                r.ticks_per_second / 1e6);
    all_detected = all_detected && r.detected == r.events;
  }
  bench::MetricsEmitter emitter("table2_casestudies");
  for (const CaseResult& r : results) {
    const obs::Labels by_case = {obs::Label{"dataset", r.name}};
    emitter.SetGauge("bench_events_detected", "planted episodes detected",
                     static_cast<double>(r.detected), by_case);
    emitter.SetGauge("bench_events_planted", "planted episodes in stream",
                     static_cast<double>(r.events), by_case);
    emitter.SetGauge("bench_matches_reported", "disjoint matches reported",
                     static_cast<double>(r.matches), by_case);
    emitter.SetGauge("bench_ticks_per_second", "ingest throughput",
                     r.ticks_per_second, by_case);
    emitter.SetGauge("bench_mean_output_delay_ticks",
                     "mean report delay past match end",
                     r.mean_output_delay, by_case);
  }
  emitter.Emit();

  std::printf("\nresult: %s\n",
              all_detected ? "PASS — every planted episode detected"
                           : "FAIL — some planted episode missed");
  return all_detected ? 0 : 1;
}
