// Ablation A5: overhead of warping-path tracking. SPRING(path) pays a
// ref-counted arena node per cell per tick on top of SPRING's O(m) update
// (DESIGN.md design-choice: path tracking is opt-in via a separate class
// precisely because of this cost).

#include <benchmark/benchmark.h>

#include "core/spring.h"
#include "core/spring_path.h"
#include "gen/masked_chirp.h"

namespace springdtw {
namespace {

const gen::MaskedChirpData& Data() {
  static const gen::MaskedChirpData* data = [] {
    gen::MaskedChirpOptions options;
    options.length = 50000;
    return new gen::MaskedChirpData(GenerateMaskedChirp(options, 256));
  }();
  return *data;
}

void BM_SpringTickNoPath(benchmark::State& state) {
  const auto& data = Data();
  core::SpringOptions options;
  options.epsilon = 100.0;
  core::SpringMatcher matcher(data.query.values(), options);
  core::Match match;
  int64_t t = 0;
  for (auto _ : state) {
    matcher.Update(data.stream[t % data.stream.size()], &match);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpringTickWithPath(benchmark::State& state) {
  const auto& data = Data();
  core::SpringOptions options;
  options.epsilon = 100.0;
  core::SpringPathMatcher matcher(data.query.values(), options);
  core::PathMatch match;
  int64_t t = 0;
  for (auto _ : state) {
    matcher.Update(data.stream[t % data.stream.size()], &match);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["live_nodes"] =
      static_cast<double>(matcher.live_nodes());
}

BENCHMARK(BM_SpringTickNoPath);
BENCHMARK(BM_SpringTickWithPath);

}  // namespace
}  // namespace springdtw
