#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/exposition.h"

namespace springdtw {
namespace bench {

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

std::vector<std::pair<int64_t, int64_t>> EventRegions(
    const std::vector<gen::PlantedEvent>& events, int64_t stream_size,
    int64_t margin) {
  std::vector<std::pair<int64_t, int64_t>> regions;
  regions.reserve(events.size());
  for (const gen::PlantedEvent& e : events) {
    regions.emplace_back(std::max<int64_t>(0, e.start - margin),
                         std::min<int64_t>(stream_size - 1, e.end() + margin));
  }
  return regions;
}

void PrintTable2Block(const std::string& dataset, double epsilon,
                      int64_t query_length,
                      const std::vector<core::Match>& matches) {
  std::printf("%-13s query_len=%-6lld epsilon=%-10.4g\n", dataset.c_str(),
              static_cast<long long>(query_length), epsilon);
  std::printf("  %-12s %-9s %-12s %-11s\n", "start_pos", "length",
              "distance", "output_time");
  for (const core::Match& m : matches) {
    std::printf("  %-12lld %-9lld %-12.6g %-11lld\n",
                static_cast<long long>(m.start),
                static_cast<long long>(m.length()), m.distance,
                static_cast<long long>(m.report_time));
  }
  if (matches.empty()) std::printf("  (no matches)\n");
}

int64_t CountDetected(const std::vector<gen::PlantedEvent>& events,
                      const std::vector<core::Match>& matches) {
  int64_t detected = 0;
  for (const gen::PlantedEvent& e : events) {
    for (const core::Match& m : matches) {
      if (gen::IntervalsOverlap(e.start, e.end(), m.start, m.end)) {
        ++detected;
        break;
      }
    }
  }
  return detected;
}

MetricsEmitter::MetricsEmitter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

obs::Labels MetricsEmitter::WithBenchLabel(obs::Labels extra) const {
  obs::Labels labels;
  labels.reserve(extra.size() + 1);
  labels.push_back(obs::Label{"bench", bench_name_});
  for (obs::Label& label : extra) labels.push_back(std::move(label));
  return labels;
}

void MetricsEmitter::SetGauge(const std::string& name,
                              const std::string& help, double value,
                              obs::Labels extra) {
  registry_.GetGauge(name, help, WithBenchLabel(std::move(extra)))
      ->Set(value);
}

void MetricsEmitter::Observe(const std::string& name, const std::string& help,
                             double value, obs::Labels extra) {
  registry_.GetHistogram(name, help, WithBenchLabel(std::move(extra)))
      ->Observe(value);
}

obs::MetricsSnapshot MetricsEmitter::MergedSnapshot(
    const obs::MetricsSnapshot* engine_snapshot) const {
  obs::MetricsSnapshot merged = registry_.Snapshot();
  if (engine_snapshot != nullptr) {
    merged.families.insert(merged.families.end(),
                           engine_snapshot->families.begin(),
                           engine_snapshot->families.end());
  }
  return merged;
}

void MetricsEmitter::Emit(const obs::MetricsSnapshot* engine_snapshot) const {
  // One line so log scrapers can grep the prefix and json-parse the rest.
  std::printf("BENCH_METRICS_JSON %s\n",
              obs::RenderJson(MergedSnapshot(engine_snapshot)).c_str());
}

bool MetricsEmitter::WriteJsonFile(
    const std::string& path,
    const obs::MetricsSnapshot* engine_snapshot) const {
  std::ofstream out(path);
  if (!out) return false;
  out << obs::RenderJson(MergedSnapshot(engine_snapshot)) << '\n';
  return out.good();
}

}  // namespace bench
}  // namespace springdtw
