// Ablation A3: monitor-engine scaling with the number of simultaneous
// queries per stream. Matchers are independent, so cost per Push should be
// linear in the query count (and in each query's m).

#include <vector>

#include <benchmark/benchmark.h>

#include "gen/masked_chirp.h"
#include "monitor/engine.h"
#include "util/string_util.h"

namespace springdtw {
namespace {

void BM_MonitorPushVsQueryCount(benchmark::State& state) {
  const auto num_queries = static_cast<int64_t>(state.range(0));
  gen::MaskedChirpOptions options;
  options.length = 50000;
  const auto data = GenerateMaskedChirp(options, 128);

  monitor::MonitorEngine engine;
  const int64_t stream = engine.AddStream("s");
  for (int64_t q = 0; q < num_queries; ++q) {
    // Slightly perturbed copies so matchers do real, distinct work.
    std::vector<double> query = data.query.values();
    for (double& y : query) y += 1e-3 * static_cast<double>(q);
    core::SpringOptions spring_options;
    spring_options.epsilon = 100.0;
    const auto added =
        engine.AddQuery(stream,
                        util::StrFormat("q%lld", static_cast<long long>(q)),
                        std::move(query), spring_options);
    if (!added.ok()) {
      state.SkipWithError("AddQuery failed");
      return;
    }
  }

  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Push(stream, data.stream[t % data.stream.size()]));
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * num_queries);
  state.counters["queries"] = static_cast<double>(num_queries);
}

BENCHMARK(BM_MonitorPushVsQueryCount)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace springdtw
