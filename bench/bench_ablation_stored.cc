// Ablation A4: SPRING on *stored* sequences (the paper's Section 6 remark
// that SPRING complements the stored-data-set indexing literature). Three
// ways to find the best DTW subsequence match in a stored sequence:
//
//   1. SPRING single pass                      — O(n*m) total;
//   2. sliding fixed-length windows + full DTW — O(n*m*w) total
//      (the pre-SPRING practice; cannot even represent variable-length
//      matches, so it also loses accuracy);
//   3. sliding windows with LB_Kim/LB_Yi pruning of the full-DTW calls.
//
//   ./bench_ablation_stored [--n=20000] [--m=128]

#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "core/subsequence_scan.h"
#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "gen/masked_chirp.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace springdtw;
  util::FlagParser flags(argc, argv);
  const int64_t n = flags.GetInt64("n", 20000);
  const int64_t m = flags.GetInt64("m", 128);

  gen::MaskedChirpOptions options;
  options.length = n;
  options.min_episode_length = 2 * m;
  options.max_episode_length = 4 * m;
  const auto data = GenerateMaskedChirp(options, m);

  bench::PrintHeader(
      "Ablation A4 — best subsequence match in a stored sequence "
      "(n = " +
      std::to_string(n) + ", m = " + std::to_string(m) + ")");

  // 1. SPRING pass.
  util::Stopwatch stopwatch;
  const core::Match spring_best =
      core::BestSubsequence(data.stream, data.query);
  const double spring_ms = stopwatch.ElapsedMillis();
  std::printf("SPRING pass:          best X[%lld:%lld] dist=%.4g   %10.1f ms\n",
              static_cast<long long>(spring_best.start),
              static_cast<long long>(spring_best.end), spring_best.distance,
              spring_ms);

  // 2. Sliding window of length m, step 1, full DTW per window.
  stopwatch.Restart();
  double window_best = std::numeric_limits<double>::infinity();
  int64_t window_best_start = 0;
  for (int64_t a = 0; a + m <= data.stream.size(); ++a) {
    const ts::Series window = data.stream.Slice(a, m);
    const double d = dtw::DtwDistance(window.values(), data.query.values());
    if (d < window_best) {
      window_best = d;
      window_best_start = a;
    }
  }
  const double window_ms = stopwatch.ElapsedMillis();
  std::printf("sliding windows:      best X[%lld:%lld] dist=%.4g   %10.1f ms\n",
              static_cast<long long>(window_best_start),
              static_cast<long long>(window_best_start + m - 1), window_best,
              window_ms);

  // 3. Sliding windows with cascading lower-bound pruning.
  stopwatch.Restart();
  double pruned_best = std::numeric_limits<double>::infinity();
  int64_t pruned_best_start = 0;
  int64_t pruned = 0;
  int64_t full = 0;
  for (int64_t a = 0; a + m <= data.stream.size(); ++a) {
    const ts::Series window = data.stream.Slice(a, m);
    if (dtw::LbKim(window.values(), data.query.values()) >= pruned_best ||
        dtw::LbYi(window.values(), data.query.values()) >= pruned_best) {
      ++pruned;
      continue;
    }
    ++full;
    const double d = dtw::DtwDistance(window.values(), data.query.values());
    if (d < pruned_best) {
      pruned_best = d;
      pruned_best_start = a;
    }
  }
  const double pruned_ms = stopwatch.ElapsedMillis();
  std::printf(
      "windows + LB pruning: best X[%lld:%lld] dist=%.4g   %10.1f ms  "
      "(%lld pruned, %lld full DTW)\n",
      static_cast<long long>(pruned_best_start),
      static_cast<long long>(pruned_best_start + m - 1), pruned_best,
      pruned_ms, static_cast<long long>(pruned),
      static_cast<long long>(full));

  std::printf(
      "\nSPRING speedup vs sliding windows: %.0fx; vs pruned windows: "
      "%.0fx.\nNote the window methods are fixed-length: their 'best' "
      "cannot stretch,\nso their distance is also worse (>= SPRING's).\n",
      window_ms / spring_ms, pruned_ms / spring_ms);
  return 0;
}
