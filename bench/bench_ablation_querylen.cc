// Ablation A1: per-tick cost of SPRING versus query length m. Lemma 4 says
// O(m) per tick — the series should be linear in m, independent of how much
// stream has already been consumed.

#include <benchmark/benchmark.h>

#include "core/spring.h"
#include "gen/masked_chirp.h"

namespace springdtw {
namespace {

void BM_SpringTickVsQueryLength(benchmark::State& state) {
  const auto m = static_cast<int64_t>(state.range(0));
  gen::MaskedChirpOptions options;
  options.length = 50000;
  const auto data = GenerateMaskedChirp(options, m);

  core::SpringOptions spring_options;
  spring_options.epsilon = 100.0;
  core::SpringMatcher matcher(data.query.values(), spring_options);
  core::Match match;

  int64_t t = 0;
  for (auto _ : state) {
    matcher.Update(data.stream[t % data.stream.size()], &match);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["m"] = static_cast<double>(m);
  state.counters["ns_per_query_elem"] = benchmark::Counter(
      static_cast<double>(m) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_SpringTickVsQueryLength)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096);

}  // namespace
}  // namespace springdtw
