// springdtw_top: live terminal dashboard for a running springdtw_serve.
//
//   springdtw_top --port=N [--host=127.0.0.1] [--interval_ms=1000]
//       [--frames=0] [--plain]
//
// Polls the daemon's introspection port (springdtw_serve
// --introspect_port=N) and renders an ANSI dashboard: ingest rate with a
// sparkline, per-stage p99 latency sparklines, per-worker ring occupancy
// bars, the top-K most expensive queries from /queryz, and the alert rule
// table from /alertz. Timeline panels need the daemon started with
// --timeline (or alert rules); without it the dashboard degrades to the
// /statusz + /queryz sections and says so.
//
// --frames=N exits after N refreshes (0 = run until SIGINT), and --plain
// suppresses ANSI escapes — together they make the dashboard scriptable:
//
//   springdtw_top --port=$INTROSPECT_PORT --frames=1 --plain
//
// prints one frame of plain text and exits 0, which is how the serve-smoke
// check leg asserts the dashboard renders against a live daemon.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/json.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

using namespace springdtw;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

// One-shot HTTP/1.1 GET against the introspection server (Connection:
// close, so the body is simply everything after the header terminator).
util::StatusOr<std::string> HttpGet(const std::string& host, int port,
                                    const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::IoError("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::InvalidArgumentError("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return util::IoError(util::StrFormat("connect to %s:%d failed: %s",
                                         host.c_str(), port,
                                         std::strerror(errno)));
  }
  const std::string request = util::StrFormat(
      "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n",
      path.c_str(), host.c_str());
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) {
      ::close(fd);
      return util::IoError("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      ::close(fd);
      return util::IoError("recv failed");
    }
    if (n == 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return util::IoError("malformed HTTP response");
  }
  const size_t status_end = response.find("\r\n");
  const std::string status_line = response.substr(0, status_end);
  // "HTTP/1.1 200 OK" — the dashboard tolerates 503 (alerting /healthz)
  // because the body is still the JSON payload it wants.
  if (status_line.find(" 200 ") == std::string::npos &&
      status_line.find(" 503 ") == std::string::npos) {
    return util::IoError("HTTP error: " + status_line);
  }
  return response.substr(header_end + 4);
}

util::StatusOr<util::JsonValue> FetchJson(const std::string& host, int port,
                                          const std::string& path) {
  auto body = HttpGet(host, port, path);
  if (!body.ok()) return body.status();
  return util::ParseJson(*body);
}

// --- rendering helpers ----------------------------------------------------

constexpr const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇",
                                   "█"};

std::string Sparkline(const std::vector<double>& values, size_t width) {
  std::string out;
  if (values.empty()) return out;
  const size_t start = values.size() > width ? values.size() - width : 0;
  double hi = 0.0;
  for (size_t i = start; i < values.size(); ++i) {
    hi = std::max(hi, values[i]);
  }
  for (size_t i = start; i < values.size(); ++i) {
    const double v = std::max(0.0, values[i]);
    int level = hi > 0.0 ? static_cast<int>(std::lround(v / hi * 8.0)) : 0;
    if (v > 0.0 && level == 0) level = 1;  // nonzero stays visible
    out += kBlocks[std::clamp(level, 0, 8)];
  }
  return out;
}

std::string Bar(double fraction, size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const size_t filled =
      static_cast<size_t>(std::lround(fraction * static_cast<double>(width)));
  std::string out;
  for (size_t i = 0; i < width; ++i) out += i < filled ? "█" : "·";
  return out;
}

std::string HumanCount(double v) {
  if (v >= 1e9) return util::StrFormat("%.2fG", v / 1e9);
  if (v >= 1e6) return util::StrFormat("%.2fM", v / 1e6);
  if (v >= 1e3) return util::StrFormat("%.1fk", v / 1e3);
  return util::StrFormat("%.0f", v);
}

std::string HumanNanos(double nanos) {
  if (nanos >= 1e9) return util::StrFormat("%.2fs", nanos / 1e9);
  if (nanos >= 1e6) return util::StrFormat("%.2fms", nanos / 1e6);
  if (nanos >= 1e3) return util::StrFormat("%.1fus", nanos / 1e3);
  return util::StrFormat("%.0fns", nanos);
}

struct Palette {
  const char* reset = "";
  const char* bold = "";
  const char* dim = "";
  const char* red = "";
  const char* yellow = "";
  const char* green = "";
  const char* cyan = "";
};

Palette AnsiPalette() {
  Palette p;
  p.reset = "\x1b[0m";
  p.bold = "\x1b[1m";
  p.dim = "\x1b[2m";
  p.red = "\x1b[31m";
  p.yellow = "\x1b[33m";
  p.green = "\x1b[32m";
  p.cyan = "\x1b[36m";
  return p;
}

// Extracts one numeric series (one point list) from a /timez?metric=...
// document. `use_rate` reads the per-second rate instead of the bucket
// value (the natural reading for counter deltas). When the document has
// several labeled series (e.g. per-stage histograms) the caller iterates
// them via TimezSeries().
std::vector<double> PointValues(const util::JsonValue& series, bool use_rate) {
  std::vector<double> out;
  const util::JsonValue* points = series.Find("points");
  if (points == nullptr || !points->is_array()) return out;
  for (const util::JsonValue& point : points->array()) {
    out.push_back(point.NumberOr(use_rate ? "rate" : "value", 0.0));
  }
  return out;
}

const std::vector<util::JsonValue>* TimezSeries(const util::JsonValue& doc) {
  const util::JsonValue* series = doc.Find("series");
  if (series == nullptr || !series->is_array()) return nullptr;
  return &series->array();
}

std::string SeriesLabel(const util::JsonValue& series) {
  const util::JsonValue* labels = series.Find("labels");
  if (labels == nullptr || !labels->is_object() || labels->size() == 0) {
    return "";
  }
  std::string out;
  for (const auto& member : labels->members()) {
    if (!out.empty()) out += ',';
    out += member.second.is_string() ? member.second.string_value() : "?";
  }
  return out;
}

struct Frame {
  std::string text;

  void Line(const std::string& line) {
    text += line;
    text += '\n';
  }
};

void RenderHeader(const util::JsonValue& statusz, const util::JsonValue& healthz,
                  const Palette& p, Frame* frame) {
  const std::string health_state = healthz.StringOr("state", "unknown");
  const bool healthy = healthz.BoolOr("healthy", false);
  const char* health_color =
      healthy ? p.green : (health_state == "alerting" ? p.red : p.yellow);
  frame->Line(util::StrFormat(
      "%sspringdtw_top%s  role=%s workers=%lld streams=%lld queries=%lld  "
      "uptime=%.0fs  health=%s%s%s",
      p.bold, p.reset, statusz.StringOr("role", "?").c_str(),
      static_cast<long long>(statusz.IntOr("num_workers", 0)),
      static_cast<long long>(statusz.IntOr("num_streams", 0)),
      static_cast<long long>(statusz.IntOr("num_queries", 0)),
      statusz.NumberOr("uptime_seconds", 0.0), health_color,
      health_state.c_str(), p.reset));
  frame->Line(util::StrFormat(
      "ticks_ingested=%s  matches_delivered=%s  checkpoint_age=%.0fs",
      HumanCount(
          static_cast<double>(statusz.IntOr("ticks_ingested", 0)))
          .c_str(),
      HumanCount(
          static_cast<double>(statusz.IntOr("matches_delivered", 0)))
          .c_str(),
      statusz.NumberOr("checkpoint_age_seconds", -1.0)));
}

void RenderIngestRate(const util::JsonValue& timez, const Palette& p,
                      Frame* frame) {
  const std::vector<util::JsonValue>* series = TimezSeries(timez);
  if (series == nullptr || series->empty()) {
    frame->Line(util::StrFormat(
        "%singest%s   (no timeline — start serve with --timeline)", p.bold,
        p.reset));
    return;
  }
  // Ticks counters are per-shard; sum the labeled series point-wise.
  std::vector<double> rates;
  for (const util::JsonValue& s : *series) {
    const std::vector<double> values = PointValues(s, /*use_rate=*/true);
    if (values.size() > rates.size()) rates.resize(values.size(), 0.0);
    for (size_t i = 0; i < values.size(); ++i) {
      rates[rates.size() - values.size() + i] += values[i];
    }
  }
  const double now_rate = rates.empty() ? 0.0 : rates.back();
  frame->Line(util::StrFormat("%singest%s   %s/s %s%s%s", p.bold, p.reset,
                              HumanCount(now_rate).c_str(), p.cyan,
                              Sparkline(rates, 60).c_str(), p.reset));
}

void RenderStageLatency(const util::JsonValue& timez, const Palette& p,
                        Frame* frame) {
  const std::vector<util::JsonValue>* series = TimezSeries(timez);
  if (series == nullptr || series->empty()) return;
  frame->Line(util::StrFormat("%sstage p99%s", p.bold, p.reset));
  for (const util::JsonValue& s : *series) {
    const std::vector<double> values = PointValues(s, /*use_rate=*/false);
    double latest = 0.0;
    for (auto it = values.rbegin(); it != values.rend(); ++it) {
      if (*it > 0.0) {
        latest = *it;
        break;
      }
    }
    frame->Line(util::StrFormat(
        "  %-16s %9s %s%s%s", SeriesLabel(s).c_str(),
        HumanNanos(latest).c_str(), p.cyan, Sparkline(values, 48).c_str(),
        p.reset));
  }
}

void RenderRings(const util::JsonValue& statusz, const Palette& p,
                 Frame* frame) {
  const util::JsonValue* workers = statusz.Find("workers");
  if (workers == nullptr || !workers->is_array() || workers->size() == 0) {
    return;
  }
  frame->Line(util::StrFormat("%srings%s", p.bold, p.reset));
  for (const util::JsonValue& worker : workers->array()) {
    const double occupancy =
        static_cast<double>(worker.IntOr("ring_occupancy", 0));
    const double capacity =
        static_cast<double>(worker.IntOr("ring_capacity", 0));
    const double fraction = capacity > 0.0 ? occupancy / capacity : 0.0;
    const char* color =
        fraction > 0.9 ? p.red : (fraction > 0.6 ? p.yellow : p.green);
    frame->Line(util::StrFormat(
        "  w%lld %-7s %s%s%s %4.0f%%  ticks=%s blocked=%lld",
        static_cast<long long>(worker.IntOr("worker", 0)),
        worker.StringOr("state", "?").c_str(), color,
        Bar(fraction, 24).c_str(), p.reset, fraction * 100.0,
        HumanCount(static_cast<double>(worker.IntOr("ticks", 0))).c_str(),
        static_cast<long long>(worker.IntOr("ring_blocked_pushes", 0))));
  }
}

void RenderTopQueries(const util::JsonValue& queryz, const Palette& p,
                      Frame* frame) {
  const util::JsonValue* queries = queryz.Find("queries");
  frame->Line(util::StrFormat(
      "%stop queries%s (of %lld, by est cpu)", p.bold, p.reset,
      static_cast<long long>(queryz.IntOr("total", 0))));
  if (queries == nullptr || !queries->is_array() || queries->size() == 0) {
    frame->Line("  (no cost samples yet)");
    return;
  }
  size_t shown = 0;
  for (const util::JsonValue& row : queries->array()) {
    if (++shown > 5) break;
    frame->Line(util::StrFormat(
        "  #%-4lld %-16s %-12s cpu=%8s cells=%s matches=%lld",
        static_cast<long long>(row.IntOr("id", -1)),
        row.StringOr("name", "?").c_str(),
        row.StringOr("stream", "?").c_str(),
        HumanNanos(static_cast<double>(row.IntOr("est_cpu_nanos", 0)))
            .c_str(),
        HumanCount(static_cast<double>(row.IntOr("cells", 0))).c_str(),
        static_cast<long long>(row.IntOr("matches", 0))));
  }
}

void RenderAlerts(const util::JsonValue& alertz, const Palette& p,
                  Frame* frame) {
  const util::JsonValue* rules = alertz.Find("rules");
  const long long firing =
      static_cast<long long>(alertz.IntOr("firing", 0));
  frame->Line(util::StrFormat("%salerts%s (%lld firing)", p.bold, p.reset,
                              firing));
  if (rules == nullptr || !rules->is_array() || rules->size() == 0) {
    frame->Line("  (no rules loaded — start serve with --alert_rules)");
    return;
  }
  for (const util::JsonValue& rule : rules->array()) {
    const std::string state = rule.StringOr("state", "?");
    const char* color = state == "firing"
                            ? p.red
                            : (state == "pending"
                                   ? p.yellow
                                   : (state == "resolved" ? p.green : p.dim));
    frame->Line(util::StrFormat(
        "  %s%-8s%s %-5s %-24s %s  value=%.3g fired=%lld",
        color, state.c_str(), p.reset,
        rule.StringOr("severity", "?").c_str(),
        rule.StringOr("name", "?").c_str(),
        rule.StringOr("expr", "").c_str(), rule.NumberOr("value", 0.0),
        static_cast<long long>(rule.IntOr("firing_count", 0))));
  }
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const int port = static_cast<int>(flags.GetInt64("port", -1));
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int64_t interval_ms = flags.GetInt64("interval_ms", 1000);
  const int64_t max_frames = flags.GetInt64("frames", 0);
  const bool plain = flags.GetBool("plain", false);
  if (port <= 0) {
    std::fprintf(stderr,
                 "usage: springdtw_top --port=N [--host=127.0.0.1] "
                 "[--interval_ms=1000] [--frames=0] [--plain]\n");
    return 2;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const Palette palette = plain ? Palette{} : AnsiPalette();
  int64_t frames = 0;
  int consecutive_failures = 0;
  while (g_stop == 0) {
    auto statusz = FetchJson(host, port, "/statusz");
    if (!statusz.ok()) {
      if (++consecutive_failures >= 3) {
        std::fprintf(stderr, "springdtw_top: %s\n",
                     statusz.status().ToString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    consecutive_failures = 0;
    auto healthz = FetchJson(host, port, "/healthz");
    auto queryz = FetchJson(host, port, "/queryz");
    auto alertz = FetchJson(host, port, "/alertz");
    auto ticks = FetchJson(host, port,
                           "/timez?metric=spring_ticks_total&window=60");
    auto stages = FetchJson(
        host, port,
        "/timez?metric=spring_stage_latency_nanos&field=p99&window=60");

    Frame frame;
    RenderHeader(*statusz,
                 healthz.ok() ? *healthz : util::JsonValue(), palette,
                 &frame);
    frame.Line("");
    RenderIngestRate(ticks.ok() ? *ticks : util::JsonValue(), palette,
                     &frame);
    if (stages.ok()) RenderStageLatency(*stages, palette, &frame);
    frame.Line("");
    RenderRings(*statusz, palette, &frame);
    frame.Line("");
    RenderTopQueries(queryz.ok() ? *queryz : util::JsonValue(), palette,
                     &frame);
    frame.Line("");
    RenderAlerts(alertz.ok() ? *alertz : util::JsonValue(), palette, &frame);

    if (!plain) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    std::fputs(frame.text.c_str(), stdout);
    std::fflush(stdout);

    if (max_frames > 0 && ++frames >= max_frames) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
