// springdtw_metrics_check: validate a metrics JSON blob produced by
// `springdtw_match --metrics=json` (or bench MetricsEmitter output).
//
//   springdtw_metrics_check --in=metrics.json
//       [--require=spring_ticks_total,spring_matches_total]
//       [--require_histogram=spring_stage_latency_nanos]
//
// Exit 0 iff the file is syntactically valid JSON, has a top-level
// "metrics" array of family objects, every --require name appears as a
// family "name", every --require_histogram name appears as a family of
// type "histogram" with at least one series, and every histogram series in
// the file is well-formed: count >= 0 and — whenever count > 0 — finite
// (non-null) sum/min/max/mean and non-negative, finite p50/p90/p99
// quantile bounds. Used by the ctest smoke tests so CI catches a broken
// exposition path without external JSON tooling.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/flags.h"
#include "util/string_util.h"

namespace {

// Minimal recursive-descent JSON syntax checker. It does not build a
// document tree; it validates syntax and invokes a callback for every
// "name":"<value>" string pair so the caller can collect family names.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipWhitespace();
    if (!ParseValue()) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters";
      return false;
    }
    return true;
  }

  const std::string& error() const { return error_; }
  const std::vector<std::string>& names() const { return names_; }
  /// Family name -> declared "type" string ("counter", "gauge",
  /// "histogram"), in the order the "type" keys were seen.
  const std::vector<std::pair<std::string, std::string>>& family_types()
      const {
    return family_types_;
  }
  /// Histogram-series validation problems (negative/NaN quantile bounds,
  /// null stats with a nonzero count, ...). Syntactically valid files with
  /// such problems still Validate() == true; the caller decides.
  const std::vector<std::string>& series_errors() const {
    return series_errors_;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + springdtw::util::StrFormat(
                             " at byte %zu", pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  /// What a scalar value parse saw, for histogram-series validation.
  /// Non-finite doubles render as JSON null, so `is_null` doubles as the
  /// NaN/Inf signal.
  struct ScalarValue {
    bool is_number = false;
    bool is_null = false;
    double number = 0.0;
  };

  bool ParseValue(ScalarValue* scalar = nullptr) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string ignored;
        return ParseString(&ignored);
      }
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        if (scalar != nullptr) scalar->is_null = true;
        return ParseLiteral("null");
      default:
        return ParseNumber(scalar);
    }
  }

  bool ParseLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(ScalarValue* scalar = nullptr) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    double parsed = 0.0;
    if (!springdtw::util::ParseDouble(text_.substr(start, pos_ - start),
                                      &parsed)) {
      return Fail("malformed number");
    }
    if (scalar != nullptr) {
      scalar->is_number = true;
      scalar->number = parsed;
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
          out->push_back('?');  // Names we match against are ASCII.
        } else if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' ||
                   esc == 'f' || esc == 'n' || esc == 'r' || esc == 't') {
          out->push_back(esc);
        } else {
          return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    // Histogram-stat keys seen directly in THIS object (nested objects
    // recurse and collect their own). An object carrying both "count" and
    // "p50" is a histogram series; it gets validated on close.
    static constexpr const char* kStatKeys[] = {
        "count", "sum", "min", "max", "mean", "p50", "p90", "p99"};
    static constexpr size_t kNumStatKeys =
        sizeof(kStatKeys) / sizeof(kStatKeys[0]);
    bool stat_seen[kNumStatKeys] = {};
    ScalarValue stat_values[kNumStatKeys];
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      if (key == "name" && pos_ < text_.size() && text_[pos_] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        names_.push_back(value);
        last_family_ = value;
      } else if (key == "type" && pos_ < text_.size() &&
                 text_[pos_] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        if (!last_family_.empty()) {
          family_types_.emplace_back(last_family_, value);
        }
      } else {
        size_t stat = kNumStatKeys;
        for (size_t i = 0; i < kNumStatKeys; ++i) {
          if (key == kStatKeys[i]) {
            stat = i;
            break;
          }
        }
        if (stat < kNumStatKeys) {
          if (!ParseValue(&stat_values[stat])) return false;
          stat_seen[stat] = true;
        } else {
          if (!ParseValue()) return false;
        }
      }
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) return false;
      if (stat_seen[0] && stat_seen[5]) {  // "count" and "p50"
        ValidateHistogramSeries(kStatKeys, kNumStatKeys, stat_seen,
                                stat_values);
      }
      return true;
    }
  }

  void SeriesError(const std::string& message) {
    series_errors_.push_back(springdtw::util::StrFormat(
        "histogram family '%s': %s", last_family_.c_str(), message.c_str()));
  }

  void ValidateHistogramSeries(const char* const* keys, size_t num_keys,
                               const bool* seen, const ScalarValue* values) {
    const ScalarValue& count = values[0];
    if (!count.is_number || count.number < 0.0) {
      SeriesError("series count is missing, null, or negative");
      return;
    }
    if (count.number == 0.0) return;  // empty series render stats as null
    for (size_t i = 1; i < num_keys; ++i) {
      if (!seen[i]) continue;
      const bool is_quantile = keys[i][0] == 'p';
      if (!values[i].is_number) {
        SeriesError(springdtw::util::StrFormat(
            "series %s is %s with count > 0 (NaN/Inf leak?)", keys[i],
            values[i].is_null ? "null" : "not a number"));
      } else if (is_quantile && values[i].number < 0.0) {
        SeriesError(springdtw::util::StrFormat(
            "series %s bucket bound is negative (%g)", keys[i],
            values[i].number));
      }
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
  std::vector<std::string> names_;
  std::string last_family_;
  std::vector<std::pair<std::string, std::string>> family_types_;
  std::vector<std::string> series_errors_;
};

}  // namespace

int main(int argc, char** argv) {
  springdtw::util::FlagParser flags(argc, argv);
  std::string path = flags.GetString("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional()[0];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --in=metrics.json [--require=name1,name2]\n",
                 flags.program_name().c_str());
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    std::fprintf(stderr, "%s is empty\n", path.c_str());
    return 1;
  }

  JsonChecker checker(text);
  if (!checker.Validate()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 checker.error().c_str());
    return 1;
  }
  if (text.find("\"metrics\"") == std::string::npos) {
    std::fprintf(stderr, "%s: no top-level \"metrics\" key\n", path.c_str());
    return 1;
  }
  for (const std::string& problem : checker.series_errors()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), problem.c_str());
  }

  int missing = 0;
  const std::string require = flags.GetString("require", "");
  if (!require.empty()) {
    for (const std::string& name : springdtw::util::Split(require, ',')) {
      bool found = false;
      for (const std::string& have : checker.names()) {
        if (have == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "%s: missing required metric family '%s'\n",
                     path.c_str(), name.c_str());
        ++missing;
      }
    }
  }
  const std::string require_histogram =
      flags.GetString("require_histogram", "");
  if (!require_histogram.empty()) {
    for (const std::string& name :
         springdtw::util::Split(require_histogram, ',')) {
      bool found = false;
      for (const auto& [family, type] : checker.family_types()) {
        if (family == name && type == "histogram") {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr,
                     "%s: missing required histogram family '%s'\n",
                     path.c_str(), name.c_str());
        ++missing;
      }
    }
  }
  if (missing > 0 || !checker.series_errors().empty()) return 1;
  std::printf("%s: ok (%zu metric families)\n", path.c_str(),
              checker.names().size());
  return 0;
}
