// springdtw_metrics_check: validate a metrics JSON blob produced by
// `springdtw_match --metrics=json` (or bench MetricsEmitter output).
//
//   springdtw_metrics_check --in=metrics.json
//       [--require=spring_ticks_total,spring_matches_total]
//
// Exit 0 iff the file is syntactically valid JSON, has a top-level
// "metrics" array of family objects, and every --require name appears as a
// family "name". Used by the ctest smoke test so CI catches a broken
// exposition path without external JSON tooling.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/string_util.h"

namespace {

// Minimal recursive-descent JSON syntax checker. It does not build a
// document tree; it validates syntax and invokes a callback for every
// "name":"<value>" string pair so the caller can collect family names.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipWhitespace();
    if (!ParseValue()) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters";
      return false;
    }
    return true;
  }

  const std::string& error() const { return error_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + springdtw::util::StrFormat(
                             " at byte %zu", pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseValue() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string ignored;
        return ParseString(&ignored);
      }
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    double parsed = 0.0;
    if (!springdtw::util::ParseDouble(text_.substr(start, pos_ - start),
                                      &parsed)) {
      return Fail("malformed number");
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
          out->push_back('?');  // Names we match against are ASCII.
        } else if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' ||
                   esc == 'f' || esc == 'n' || esc == 'r' || esc == 't') {
          out->push_back(esc);
        } else {
          return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      if (key == "name" && pos_ < text_.size() && text_[pos_] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        names_.push_back(value);
      } else {
        if (!ParseValue()) return false;
      }
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
  std::vector<std::string> names_;
};

}  // namespace

int main(int argc, char** argv) {
  springdtw::util::FlagParser flags(argc, argv);
  std::string path = flags.GetString("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional()[0];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --in=metrics.json [--require=name1,name2]\n",
                 flags.program_name().c_str());
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    std::fprintf(stderr, "%s is empty\n", path.c_str());
    return 1;
  }

  JsonChecker checker(text);
  if (!checker.Validate()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 checker.error().c_str());
    return 1;
  }
  if (text.find("\"metrics\"") == std::string::npos) {
    std::fprintf(stderr, "%s: no top-level \"metrics\" key\n", path.c_str());
    return 1;
  }

  int missing = 0;
  const std::string require = flags.GetString("require", "");
  if (!require.empty()) {
    for (const std::string& name : springdtw::util::Split(require, ',')) {
      bool found = false;
      for (const std::string& have : checker.names()) {
        if (have == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "%s: missing required metric family '%s'\n",
                     path.c_str(), name.c_str());
        ++missing;
      }
    }
  }
  if (missing > 0) return 1;
  std::printf("%s: ok (%zu metric families)\n", path.c_str(),
              checker.names().size());
  return 0;
}
