// springdtw_metrics_check: validate a metrics JSON blob produced by
// `springdtw_match --metrics=json` (or bench MetricsEmitter output).
//
//   springdtw_metrics_check --in=metrics.json
//       [--require=spring_ticks_total,spring_matches_total]
//       [--require_histogram=spring_stage_latency_nanos]
//       [--require_gauge=spring_ring_occupancy]
//       [--timez=timez.json] [--alertz=alertz.json]
//
// Exit 0 iff the file is syntactically valid JSON, has a top-level
// "metrics" array of family objects, every --require name appears as a
// family "name", every --require_histogram name appears as a family of
// type "histogram" with at least one series, every --require_gauge name
// appears as a family of type "gauge", and every histogram series in
// the file is well-formed: count >= 0 and — whenever count > 0 — finite
// (non-null) sum/min/max/mean and non-negative, finite p50/p90/p99
// quantile bounds. Used by the ctest smoke tests so CI catches a broken
// exposition path without external JSON tooling.
//
// --timez=FILE validates a /timez response (either the catalog document or
// a ?metric= series document): positive tier widths/slots, coarser tier
// widths integer multiples of the finest, strictly increasing point
// timestamps, at most `slots` points per series, and agg strings the
// timeline actually emits. --alertz=FILE validates a /alertz response:
// known state/severity/kind strings, non-negative transition counters, and
// firing_page <= firing. Both may be given alongside or instead of --in;
// any failed validation exits 1.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/flags.h"
#include "util/json.h"
#include "util/string_util.h"

namespace {

// Minimal recursive-descent JSON syntax checker. It does not build a
// document tree; it validates syntax and invokes a callback for every
// "name":"<value>" string pair so the caller can collect family names.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipWhitespace();
    if (!ParseValue()) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters";
      return false;
    }
    return true;
  }

  const std::string& error() const { return error_; }
  const std::vector<std::string>& names() const { return names_; }
  /// Family name -> declared "type" string ("counter", "gauge",
  /// "histogram"), in the order the "type" keys were seen.
  const std::vector<std::pair<std::string, std::string>>& family_types()
      const {
    return family_types_;
  }
  /// Histogram-series validation problems (negative/NaN quantile bounds,
  /// null stats with a nonzero count, ...). Syntactically valid files with
  /// such problems still Validate() == true; the caller decides.
  const std::vector<std::string>& series_errors() const {
    return series_errors_;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + springdtw::util::StrFormat(
                             " at byte %zu", pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  /// What a scalar value parse saw, for histogram-series validation.
  /// Non-finite doubles render as JSON null, so `is_null` doubles as the
  /// NaN/Inf signal.
  struct ScalarValue {
    bool is_number = false;
    bool is_null = false;
    double number = 0.0;
  };

  bool ParseValue(ScalarValue* scalar = nullptr) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string ignored;
        return ParseString(&ignored);
      }
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        if (scalar != nullptr) scalar->is_null = true;
        return ParseLiteral("null");
      default:
        return ParseNumber(scalar);
    }
  }

  bool ParseLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(ScalarValue* scalar = nullptr) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    double parsed = 0.0;
    if (!springdtw::util::ParseDouble(text_.substr(start, pos_ - start),
                                      &parsed)) {
      return Fail("malformed number");
    }
    if (scalar != nullptr) {
      scalar->is_number = true;
      scalar->number = parsed;
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
          out->push_back('?');  // Names we match against are ASCII.
        } else if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' ||
                   esc == 'f' || esc == 'n' || esc == 'r' || esc == 't') {
          out->push_back(esc);
        } else {
          return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    // Histogram-stat keys seen directly in THIS object (nested objects
    // recurse and collect their own). An object carrying both "count" and
    // "p50" is a histogram series; it gets validated on close.
    static constexpr const char* kStatKeys[] = {
        "count", "sum", "min", "max", "mean", "p50", "p90", "p99"};
    static constexpr size_t kNumStatKeys =
        sizeof(kStatKeys) / sizeof(kStatKeys[0]);
    bool stat_seen[kNumStatKeys] = {};
    ScalarValue stat_values[kNumStatKeys];
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      if (key == "name" && pos_ < text_.size() && text_[pos_] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        names_.push_back(value);
        last_family_ = value;
      } else if (key == "type" && pos_ < text_.size() &&
                 text_[pos_] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        if (!last_family_.empty()) {
          family_types_.emplace_back(last_family_, value);
        }
      } else {
        size_t stat = kNumStatKeys;
        for (size_t i = 0; i < kNumStatKeys; ++i) {
          if (key == kStatKeys[i]) {
            stat = i;
            break;
          }
        }
        if (stat < kNumStatKeys) {
          if (!ParseValue(&stat_values[stat])) return false;
          stat_seen[stat] = true;
        } else {
          if (!ParseValue()) return false;
        }
      }
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) return false;
      if (stat_seen[0] && stat_seen[5]) {  // "count" and "p50"
        ValidateHistogramSeries(kStatKeys, kNumStatKeys, stat_seen,
                                stat_values);
      }
      return true;
    }
  }

  void SeriesError(const std::string& message) {
    series_errors_.push_back(springdtw::util::StrFormat(
        "histogram family '%s': %s", last_family_.c_str(), message.c_str()));
  }

  void ValidateHistogramSeries(const char* const* keys, size_t num_keys,
                               const bool* seen, const ScalarValue* values) {
    const ScalarValue& count = values[0];
    if (!count.is_number || count.number < 0.0) {
      SeriesError("series count is missing, null, or negative");
      return;
    }
    if (count.number == 0.0) return;  // empty series render stats as null
    for (size_t i = 1; i < num_keys; ++i) {
      if (!seen[i]) continue;
      const bool is_quantile = keys[i][0] == 'p';
      if (!values[i].is_number) {
        SeriesError(springdtw::util::StrFormat(
            "series %s is %s with count > 0 (NaN/Inf leak?)", keys[i],
            values[i].is_null ? "null" : "not a number"));
      } else if (is_quantile && values[i].number < 0.0) {
        SeriesError(springdtw::util::StrFormat(
            "series %s bucket bound is negative (%g)", keys[i],
            values[i].number));
      }
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
  std::vector<std::string> names_;
  std::string last_family_;
  std::vector<std::pair<std::string, std::string>> family_types_;
  std::vector<std::string> series_errors_;
};

bool ReadFileText(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int CheckedAgg(const std::string& path, const springdtw::util::JsonValue& v,
               const char* where) {
  const std::string agg = v.StringOr("agg", "");
  if (agg != "delta" && agg != "gauge") {
    std::fprintf(stderr, "%s: %s has unknown agg '%s'\n", path.c_str(),
                 where, agg.c_str());
    return 1;
  }
  return 0;
}

/// One tier object {"width_seconds","slots"}; returns the width through
/// `width` (0 on failure) and the number of problems found.
int CheckTier(const std::string& path, const springdtw::util::JsonValue& tier,
              double* width) {
  *width = tier.NumberOr("width_seconds", 0.0);
  const int64_t slots = tier.IntOr("slots", 0);
  int problems = 0;
  if (*width <= 0.0) {
    std::fprintf(stderr, "%s: tier width_seconds %g is not positive\n",
                 path.c_str(), *width);
    ++problems;
  }
  if (slots <= 0) {
    std::fprintf(stderr, "%s: tier slots %lld is not positive\n",
                 path.c_str(), static_cast<long long>(slots));
    ++problems;
  }
  return problems;
}

/// Validates a /timez response document; returns the number of problems.
int CheckTimez(const std::string& path) {
  std::string text;
  if (!ReadFileText(path, &text)) return 1;
  auto parsed = springdtw::util::ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const springdtw::util::JsonValue& doc = *parsed;
  int problems = 0;
  if (doc.Find("metric") == nullptr) {
    // Catalog document: {"tiers":[...],"records":N,"channels":[...]}.
    const springdtw::util::JsonValue* tiers = doc.Find("tiers");
    if (tiers == nullptr || !tiers->is_array()) {
      std::fprintf(stderr, "%s: catalog has no \"tiers\" array\n",
                   path.c_str());
      return 1;
    }
    double finest = 0.0;
    double previous = 0.0;
    for (const auto& tier : tiers->array()) {
      double width = 0.0;
      problems += CheckTier(path, tier, &width);
      if (width <= 0.0) continue;
      if (finest == 0.0) finest = width;
      // Tier contract (obs/timeline.h): ascending widths, every coarser
      // width an integer multiple of the finest so the fold is exact.
      if (width < previous) {
        std::fprintf(stderr, "%s: tier widths not ascending (%g after %g)\n",
                     path.c_str(), width, previous);
        ++problems;
      }
      const double ratio = width / finest;
      if (std::abs(ratio - std::round(ratio)) > 1e-9) {
        std::fprintf(stderr,
                     "%s: tier width %g is not a multiple of finest %g\n",
                     path.c_str(), width, finest);
        ++problems;
      }
      previous = width;
    }
    if (doc.IntOr("records", -1) < 0) {
      std::fprintf(stderr, "%s: catalog \"records\" missing or negative\n",
                   path.c_str());
      ++problems;
    }
    const springdtw::util::JsonValue* channels = doc.Find("channels");
    if (channels == nullptr || !channels->is_array()) {
      std::fprintf(stderr, "%s: catalog has no \"channels\" array\n",
                   path.c_str());
      ++problems;
    } else {
      for (const auto& channel : channels->array()) {
        problems += CheckedAgg(path, channel, "channel");
        if (channel.StringOr("metric", "").empty()) {
          std::fprintf(stderr, "%s: channel with empty metric name\n",
                       path.c_str());
          ++problems;
        }
      }
    }
    return problems;
  }
  // Series document: {"metric","tier":{...},"series":[{"points":[...]}]}.
  const springdtw::util::JsonValue* tier = doc.Find("tier");
  double width = 0.0;
  int64_t slots = 0;
  if (tier == nullptr || !tier->is_object()) {
    std::fprintf(stderr, "%s: series document has no \"tier\" object\n",
                 path.c_str());
    ++problems;
  } else {
    problems += CheckTier(path, *tier, &width);
    slots = tier->IntOr("slots", 0);
  }
  const springdtw::util::JsonValue* series = doc.Find("series");
  if (series == nullptr || !series->is_array()) {
    std::fprintf(stderr, "%s: series document has no \"series\" array\n",
                 path.c_str());
    return problems + 1;
  }
  for (const auto& entry : series->array()) {
    problems += CheckedAgg(path, entry, "series");
    const springdtw::util::JsonValue* points = entry.Find("points");
    if (points == nullptr || !points->is_array()) {
      std::fprintf(stderr, "%s: series entry has no \"points\" array\n",
                   path.c_str());
      ++problems;
      continue;
    }
    if (slots > 0 && static_cast<int64_t>(points->size()) > slots) {
      std::fprintf(stderr,
                   "%s: series has %zu points but the tier holds %lld\n",
                   path.c_str(), points->size(),
                   static_cast<long long>(slots));
      ++problems;
    }
    double last_t = 0.0;
    bool have_last = false;
    for (const auto& point : points->array()) {
      const double t = point.NumberOr("t", -1.0);
      if (t < 0.0) {
        std::fprintf(stderr, "%s: point with missing/negative t\n",
                     path.c_str());
        ++problems;
        continue;
      }
      if (have_last && t <= last_t) {
        std::fprintf(stderr,
                     "%s: point timestamps not strictly increasing "
                     "(%g after %g)\n",
                     path.c_str(), t, last_t);
        ++problems;
      }
      last_t = t;
      have_last = true;
      if (point.IntOr("samples", -1) < 1) {
        std::fprintf(stderr, "%s: emitted point with samples < 1 at t=%g\n",
                     path.c_str(), t);
        ++problems;
      }
      const double lo = point.NumberOr("min", 0.0);
      const double hi = point.NumberOr("max", 0.0);
      if (lo > hi) {
        std::fprintf(stderr, "%s: point min %g > max %g at t=%g\n",
                     path.c_str(), lo, hi, t);
        ++problems;
      }
    }
  }
  return problems;
}

/// Validates a /alertz response document; returns the number of problems.
int CheckAlertz(const std::string& path) {
  std::string text;
  if (!ReadFileText(path, &text)) return 1;
  auto parsed = springdtw::util::ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const springdtw::util::JsonValue& doc = *parsed;
  int problems = 0;
  const springdtw::util::JsonValue* rules = doc.Find("rules");
  if (rules == nullptr || !rules->is_array()) {
    std::fprintf(stderr, "%s: no \"rules\" array\n", path.c_str());
    return 1;
  }
  int64_t firing_observed = 0;
  for (const auto& rule : rules->array()) {
    const std::string name = rule.StringOr("name", "");
    if (name.empty()) {
      std::fprintf(stderr, "%s: rule with empty name\n", path.c_str());
      ++problems;
    }
    const std::string state = rule.StringOr("state", "");
    if (state != "inactive" && state != "pending" && state != "firing" &&
        state != "resolved") {
      std::fprintf(stderr, "%s: rule '%s' has unknown state '%s'\n",
                   path.c_str(), name.c_str(), state.c_str());
      ++problems;
    }
    if (state == "firing") ++firing_observed;
    const std::string severity = rule.StringOr("severity", "");
    if (severity != "warn" && severity != "page") {
      std::fprintf(stderr, "%s: rule '%s' has unknown severity '%s'\n",
                   path.c_str(), name.c_str(), severity.c_str());
      ++problems;
    }
    const std::string kind = rule.StringOr("kind", "");
    if (kind != "value" && kind != "ratio" && kind != "rate" &&
        kind != "absent" && kind != "burn") {
      std::fprintf(stderr, "%s: rule '%s' has unknown kind '%s'\n",
                   path.c_str(), name.c_str(), kind.c_str());
      ++problems;
    }
    for (const char* counter :
         {"pending_count", "firing_count", "resolved_count"}) {
      if (rule.IntOr(counter, -1) < 0) {
        std::fprintf(stderr, "%s: rule '%s' %s missing or negative\n",
                     path.c_str(), name.c_str(), counter);
        ++problems;
      }
    }
  }
  const int64_t firing = doc.IntOr("firing", -1);
  const int64_t firing_page = doc.IntOr("firing_page", -1);
  if (firing < 0 || firing_page < 0 || firing_page > firing) {
    std::fprintf(stderr,
                 "%s: bad firing counts (firing=%lld firing_page=%lld)\n",
                 path.c_str(), static_cast<long long>(firing),
                 static_cast<long long>(firing_page));
    ++problems;
  }
  if (firing != firing_observed) {
    std::fprintf(stderr,
                 "%s: \"firing\" says %lld but %lld rules are firing\n",
                 path.c_str(), static_cast<long long>(firing),
                 static_cast<long long>(firing_observed));
    ++problems;
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  springdtw::util::FlagParser flags(argc, argv);
  std::string path = flags.GetString("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional()[0];
  }
  const std::string timez_path = flags.GetString("timez", "");
  const std::string alertz_path = flags.GetString("alertz", "");
  int endpoint_problems = 0;
  if (!timez_path.empty()) endpoint_problems += CheckTimez(timez_path);
  if (!alertz_path.empty()) endpoint_problems += CheckAlertz(alertz_path);
  if (path.empty()) {
    // Endpoint-only invocation: --timez/--alertz without a metrics blob.
    if (!timez_path.empty() || !alertz_path.empty()) {
      if (endpoint_problems > 0) return 1;
      std::printf("ok (endpoint documents only)\n");
      return 0;
    }
    std::fprintf(stderr,
                 "usage: %s --in=metrics.json [--require=name1,name2]\n"
                 "  [--require_histogram=...] [--require_gauge=...]\n"
                 "  [--timez=timez.json] [--alertz=alertz.json]\n",
                 flags.program_name().c_str());
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    std::fprintf(stderr, "%s is empty\n", path.c_str());
    return 1;
  }

  JsonChecker checker(text);
  if (!checker.Validate()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 checker.error().c_str());
    return 1;
  }
  if (text.find("\"metrics\"") == std::string::npos) {
    std::fprintf(stderr, "%s: no top-level \"metrics\" key\n", path.c_str());
    return 1;
  }
  for (const std::string& problem : checker.series_errors()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), problem.c_str());
  }

  int missing = 0;
  const std::string require = flags.GetString("require", "");
  if (!require.empty()) {
    for (const std::string& name : springdtw::util::Split(require, ',')) {
      bool found = false;
      for (const std::string& have : checker.names()) {
        if (have == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "%s: missing required metric family '%s'\n",
                     path.c_str(), name.c_str());
        ++missing;
      }
    }
  }
  const std::string require_histogram =
      flags.GetString("require_histogram", "");
  if (!require_histogram.empty()) {
    for (const std::string& name :
         springdtw::util::Split(require_histogram, ',')) {
      bool found = false;
      for (const auto& [family, type] : checker.family_types()) {
        if (family == name && type == "histogram") {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr,
                     "%s: missing required histogram family '%s'\n",
                     path.c_str(), name.c_str());
        ++missing;
      }
    }
  }
  const std::string require_gauge = flags.GetString("require_gauge", "");
  if (!require_gauge.empty()) {
    for (const std::string& name :
         springdtw::util::Split(require_gauge, ',')) {
      bool found = false;
      for (const auto& [family, type] : checker.family_types()) {
        if (family == name && type == "gauge") {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "%s: missing required gauge family '%s'\n",
                     path.c_str(), name.c_str());
        ++missing;
      }
    }
  }
  if (missing > 0 || !checker.series_errors().empty() ||
      endpoint_problems > 0) {
    return 1;
  }
  std::printf("%s: ok (%zu metric families)\n", path.c_str(),
              checker.names().size());
  return 0;
}
