// springdtw_feed: replay a stored series into a running springdtw_serve.
//
//   springdtw_feed --port=PORT [--host=127.0.0.1]
//       --stream=FILE [--stream_name=stream] [--resume]
//       [--query=FILE --epsilon=EPS [--query_name=query]
//        [--distance=squared|absolute] [--max_length=0] [--min_length=0]]
//       [--rate=0] [--batch=256] [--subscribe] [--checkpoint]
//       [--remove_query] [--list] [--stats]
//   springdtw_feed --replay_wal=DIR [--dump]
//
// Files may be CSV (one value per line, "nan" = missing) or binary .sdtw.
// The feeder opens (or joins, by name) the stream, optionally registers a
// query, optionally subscribes to match fan-out, then replays the series
// in --batch-value TICK_BATCH frames, paced to --rate ticks/second (0 =
// full speed). It finishes with a DRAIN barrier, so every match the
// replay caused has been printed before exit:
//
//   MATCH stream=<name> query=<name> start=<s> end=<e> dist=<d> report=<t>
//
// When a v3 server assigned the match a global sequence number, the line
// additionally carries " seq=<n>" — the (seq, query) pair is the stable
// identity consumers dedup re-deliveries by after a crash recovery
// (docs/DURABILITY.md).
//
// --resume skips the prefix of --stream the server already holds (the v3
// STREAM_OPENED ticks trailer), so re-running the same feed against a
// recovered server continues the series instead of re-ingesting it.
//
// --checkpoint requests a server-side checkpoint after the drain.
// --remove_query retires the query after the drain (printing any match the
// removal flushed); --list prints the server's live query table, and
// --stats (implies --list) adds per-query cost columns (DTW cells, last
// match seq, estimated CPU nanos) when the server speaks protocol v2.
//
// --replay_wal=DIR is an offline mode: no server, no --stream. It restores
// DIR/checkpoint.ckpt (if present) to learn the covered sequence range,
// scans DIR's write-ahead log exactly as server recovery would, and prints
// one "WAL ..." summary line — replayable records/values, torn-tail flag,
// delivery watermark. --dump additionally prints every replayable tick as
// "WAL_TICK seq=<n> stream=<id> value=<v>" for diffing against the
// original series.

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "monitor/sharded_monitor.h"
#include "net/client.h"
#include "ts/binary_io.h"
#include "ts/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "wal/env.h"
#include "wal/wal.h"

namespace {

using namespace springdtw;

util::StatusOr<ts::Series> LoadSeries(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".sdtw") {
    return ts::ReadSeriesBinary(path);
  }
  return ts::ReadSeriesCsv(path);
}

void PrintMatch(const net::MatchEventPayload& event) {
  std::printf(
      "MATCH stream=%s query=%s start=%lld end=%lld dist=%.17g report=%lld",
      event.stream_name.c_str(), event.query_name.c_str(),
      static_cast<long long>(event.match.start),
      static_cast<long long>(event.match.end), event.match.distance,
      static_cast<long long>(event.match.report_time));
  if (event.match_seq >= 0) {
    std::printf(" seq=%lld", static_cast<long long>(event.match_seq));
  }
  std::printf("\n");
  std::fflush(stdout);
}

int Fail(const char* what, const util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

/// --replay_wal: offline scan of a WAL directory, printed for humans and
/// for byte-level diffing (--dump) against the originally fed series.
int ReplayWal(const std::string& dir, bool dump) {
  wal::Env* const env = wal::Env::Default();
  uint64_t start_seq = 0;
  const std::string checkpoint_path = dir + "/checkpoint.ckpt";
  std::ifstream probe(checkpoint_path, std::ios::binary);
  if (probe.good()) {
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(probe)),
                               std::istreambuf_iterator<char>());
    if (probe.bad()) {
      return Fail("checkpoint read", util::IoError(checkpoint_path));
    }
    // Restore into a throwaway monitor purely to learn where the
    // checkpoint's coverage ends; checkpoints are reshard-safe, so one
    // worker always suffices.
    monitor::ShardedMonitorOptions options;
    options.num_workers = 1;
    monitor::ShardedMonitor monitor(options);
    const util::Status restored = monitor.RestoreState(bytes);
    if (!restored.ok()) return Fail("checkpoint restore", restored);
    start_seq = monitor.next_seq();
  }
  auto recovered = wal::RecoverWal(env, dir, start_seq);
  if (!recovered.ok()) return Fail("WAL scan", recovered.status());
  std::printf(
      "WAL dir=%s start_seq=%llu chunks=%zu values=%lld "
      "records_replayed=%lld records_scanned=%lld segments=%lld "
      "torn_tail=%d",
      dir.c_str(), static_cast<unsigned long long>(start_seq),
      recovered->chunks.size(), static_cast<long long>(recovered->values),
      static_cast<long long>(recovered->records_replayed),
      static_cast<long long>(recovered->records_scanned),
      static_cast<long long>(recovered->segments),
      recovered->torn_tail ? 1 : 0);
  if (recovered->has_watermark) {
    std::printf(" watermark_seq=%llu watermark_query=%lld",
                static_cast<unsigned long long>(recovered->watermark_seq),
                static_cast<long long>(recovered->watermark_query_id));
  }
  std::printf("\n");
  if (dump) {
    for (const auto& chunk : recovered->chunks) {
      uint64_t seq = chunk.seq0;
      for (const double value : chunk.values) {
        std::printf("WAL_TICK seq=%llu stream=%lld value=%.17g\n",
                    static_cast<unsigned long long>(seq++),
                    static_cast<long long>(chunk.stream_id), value);
      }
    }
  }
  std::fflush(stdout);
  return 0;
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const std::string replay_wal = flags.GetString("replay_wal", "");
  if (!replay_wal.empty()) {
    return ReplayWal(replay_wal, flags.GetBool("dump", false));
  }
  const std::string stream_path = flags.GetString("stream", "");
  if (stream_path.empty()) {
    std::fprintf(stderr, "--stream is required\n");
    return 1;
  }
  auto series = LoadSeries(stream_path);
  if (!series.ok()) return Fail("load stream", series.status());

  net::StreamClientOptions client_options;
  client_options.host = flags.GetString("host", "127.0.0.1");
  client_options.port = static_cast<int>(flags.GetInt64("port", 0));
  client_options.peer_name = "springdtw_feed";
  net::StreamClient client(client_options);

  int64_t matches = 0;
  client.SetMatchCallback([&matches](const net::MatchEventPayload& event) {
    ++matches;
    PrintMatch(event);
  });

  util::Status status = client.Connect();
  if (!status.ok()) return Fail("connect", status);

  const std::string stream_name = flags.GetString("stream_name", "stream");
  auto stream_id = client.OpenStream(stream_name);
  if (!stream_id.ok()) return Fail("open stream", stream_id.status());

  const std::string query_path = flags.GetString("query", "");
  int64_t query_id = -1;
  if (!query_path.empty()) {
    auto query = LoadSeries(query_path);
    if (!query.ok()) return Fail("load query", query.status());
    core::SpringOptions options;
    options.epsilon = flags.GetDouble("epsilon", 0.0);
    options.local_distance =
        flags.GetString("distance", "squared") == "absolute"
            ? dtw::LocalDistance::kAbsolute
            : dtw::LocalDistance::kSquared;
    options.max_match_length = flags.GetInt64("max_length", 0);
    options.min_match_length = flags.GetInt64("min_length", 0);
    auto added = client.AddQuery(*stream_id,
                                 flags.GetString("query_name", "query"),
                                 query->values(), options);
    if (!added.ok()) return Fail("add query", added.status());
    query_id = *added;
  }

  if (flags.GetBool("subscribe", false)) {
    status = client.SubscribeMatches();
    if (!status.ok()) return Fail("subscribe", status);
  }

  const double rate = flags.GetDouble("rate", 0.0);
  const int64_t batch = std::max<int64_t>(1, flags.GetInt64("batch", 256));
  const std::vector<double>& values = series->values();
  const int64_t start_nanos = util::Stopwatch::NowNanos();
  int64_t sent = 0;
  if (flags.GetBool("resume", false)) {
    // The server already holds this many ticks of the stream (v3
    // STREAM_OPENED trailer): skip that prefix so the combined ingest is
    // the series exactly once.
    const int64_t held = std::max<int64_t>(0, client.last_stream_ticks());
    sent = std::min<int64_t>(held, static_cast<int64_t>(values.size()));
    std::printf("RESUME skipped=%lld\n", static_cast<long long>(sent));
  }
  while (sent < static_cast<int64_t>(values.size())) {
    const int64_t count = std::min<int64_t>(
        batch, static_cast<int64_t>(values.size()) - sent);
    status = client.TickBatch(
        *stream_id, std::span<const double>(values)
                        .subspan(static_cast<size_t>(sent),
                                 static_cast<size_t>(count)));
    if (!status.ok()) return Fail("tick", status);
    sent += count;
    if (rate > 0) {
      // Paced feeding is about what the SERVER sees per second, so force
      // the client's pipelining buffer (tick_flush_bytes) onto the wire
      // each batch — otherwise a sub-64KB replay arrives as one burst at
      // the final drain and the server's rate metrics read zero all feed.
      status = client.Flush();
      if (!status.ok()) return Fail("flush", status);
      // Pace against the wall clock: sleep until `sent` ticks worth of
      // time has elapsed.
      const double due_nanos = static_cast<double>(sent) / rate * 1e9;
      while (static_cast<double>(util::Stopwatch::NowNanos() - start_nanos) <
             due_nanos) {
        timespec ts{0, 1 * 1000 * 1000};
        nanosleep(&ts, nullptr);
      }
    }
  }

  auto drained = client.Drain();
  if (!drained.ok()) return Fail("drain", drained.status());

  if (flags.GetBool("checkpoint", false)) {
    auto bytes = client.Checkpoint();
    if (!bytes.ok()) return Fail("checkpoint", bytes.status());
    std::printf("CHECKPOINT_BYTES=%llu\n",
                static_cast<unsigned long long>(*bytes));
  }

  if (flags.GetBool("remove_query", false) && query_id >= 0) {
    auto flushed = client.RemoveQuery(query_id);
    if (!flushed.ok()) return Fail("remove query", flushed.status());
    std::printf("REMOVED query=%lld flushed=%lld\n",
                static_cast<long long>(query_id),
                static_cast<long long>(*flushed));
  }

  const bool want_stats = flags.GetBool("stats", false);
  if (flags.GetBool("list", false) || want_stats) {
    auto entries = client.ListQueries(want_stats);
    if (!entries.ok()) return Fail("list queries", entries.status());
    for (const auto& entry : *entries) {
      std::printf("QUERY id=%lld stream=%s name=%s ticks=%lld matches=%lld",
                  static_cast<long long>(entry.query_id),
                  entry.stream_name.c_str(), entry.name.c_str(),
                  static_cast<long long>(entry.ticks),
                  static_cast<long long>(entry.matches));
      if (want_stats) {
        std::printf(" cells=%lld last_match_seq=%lld est_cpu_nanos=%lld",
                    static_cast<long long>(entry.cells),
                    static_cast<long long>(entry.last_match_seq),
                    static_cast<long long>(entry.est_cpu_nanos));
      }
      std::printf("\n");
    }
  }

  std::printf("FED ticks=%lld matches=%lld\n", static_cast<long long>(sent),
              static_cast<long long>(matches));
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
