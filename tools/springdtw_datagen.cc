// springdtw_datagen: render any of the library's workload generators to
// files, so external tools (or the springdtw_match CLI) can consume them.
//
//   springdtw_datagen --dataset=chirp --out=chirp  [--length=20000]
//       [--seed=1] [--format=csv|bin]
//
// Writes <out>_stream.<ext>, <out>_query.<ext> and <out>_events.txt
// (one "start length label" line per planted event). Datasets: chirp,
// temperature, seismic, sunspots.

#include <cstdio>
#include <string>

#include "gen/ecg.h"
#include "gen/masked_chirp.h"
#include "gen/seismic.h"
#include "gen/sunspots.h"
#include "gen/temperature.h"
#include "ts/binary_io.h"
#include "ts/csv.h"
#include "util/flags.h"

namespace {

using namespace springdtw;

util::Status WriteOne(const std::string& path, const ts::Series& series,
                      bool binary) {
  return binary ? ts::WriteSeriesBinary(path, series)
                : ts::WriteSeriesCsv(path, series);
}

util::Status WriteEvents(const std::string& path,
                         const std::vector<gen::PlantedEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return util::IoError("cannot open " + path);
  for (const gen::PlantedEvent& e : events) {
    std::fprintf(f, "%lld %lld %s\n", static_cast<long long>(e.start),
                 static_cast<long long>(e.length), e.label.c_str());
  }
  std::fclose(f);
  return util::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "chirp");
  const std::string out = flags.GetString("out", dataset);
  const bool binary = flags.GetString("format", "csv") == "bin";
  const std::string ext = binary ? ".sdtw" : ".csv";
  const auto seed = static_cast<uint64_t>(flags.GetInt64("seed", 1));

  ts::Series stream;
  ts::Series query;
  std::vector<gen::PlantedEvent> events;

  if (dataset == "chirp") {
    gen::MaskedChirpOptions options;
    options.length = flags.GetInt64("length", 20000);
    options.seed = seed;
    auto data = GenerateMaskedChirp(options,
                                    flags.GetInt64("query_length", 2048));
    stream = std::move(data.stream);
    query = std::move(data.query);
    events = std::move(data.events);
  } else if (dataset == "temperature") {
    gen::TemperatureOptions options;
    options.length = flags.GetInt64("length", 30000);
    options.seed = seed;
    auto data = GenerateTemperature(options,
                                    flags.GetInt64("query_length", 3000));
    stream = std::move(data.stream);
    query = std::move(data.query);
    events = std::move(data.events);
  } else if (dataset == "seismic") {
    gen::SeismicOptions options;
    options.length = flags.GetInt64("length", 50000);
    options.event_length = flags.GetInt64("query_length", 4000);
    options.seed = seed;
    auto data = GenerateSeismic(options);
    stream = std::move(data.stream);
    query = std::move(data.query);
    events = std::move(data.events);
  } else if (dataset == "sunspots") {
    gen::SunspotOptions options;
    options.length = flags.GetInt64("length", 15000);
    options.seed = seed;
    auto data = GenerateSunspots(options,
                                 flags.GetInt64("query_length", 2000));
    stream = std::move(data.stream);
    query = std::move(data.query);
    events = std::move(data.events);
  } else if (dataset == "ecg") {
    gen::EcgOptions options;
    options.length = flags.GetInt64("length", 30000);
    options.seed = seed;
    auto data = GenerateEcg(options);
    stream = std::move(data.stream);
    // The ectopic beat is the interesting query; the normal beat can be
    // regenerated from the same seed if needed.
    query = std::move(data.anomalous_beat);
    events = std::move(data.anomalies);
  } else {
    std::fprintf(stderr,
                 "unknown --dataset=%s (chirp|temperature|seismic|"
                 "sunspots|ecg)\n",
                 dataset.c_str());
    return 2;
  }

  for (const auto& [path, series] :
       {std::pair<std::string, const ts::Series*>{out + "_stream" + ext,
                                                  &stream},
        {out + "_query" + ext, &query}}) {
    const util::Status status = WriteOne(path, *series, binary);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld ticks)\n", path.c_str(),
                static_cast<long long>(series->size()));
  }
  const util::Status status = WriteEvents(out + "_events.txt", events);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s_events.txt (%zu events)\n", out.c_str(),
              events.size());
  return 0;
}
